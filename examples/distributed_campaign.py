"""Distributed campaigns: leased workers, injected faults, byte-identity.

A :class:`~repro.distrib.CampaignRunner` farms an exploration campaign out
to N supervised worker processes through a leased work queue on top of the
campaign store.  Workers that die or hang lose their leases; the chunks are
reclaimed, retried with backoff, and — because records are a pure function
of the campaign config — the finished store is byte-identical to a serial
run no matter which workers were lost when.  This walkthrough runs the same
small campaign three times: clean, under a worker kill, and under a hang,
then byte-diffs each against the serial control.

Run with:  PYTHONPATH=src python examples/distributed_campaign.py
"""

from __future__ import annotations

import os
import tempfile

from repro.distrib import CampaignRunner, FaultPlan
from repro.distrib.faults import serial_reference
from repro.persist import SqliteStore, fingerprint_from_store
from repro.workloads.program_sets import ProgramSetSpec


def main() -> None:
    spec = ProgramSetSpec.make("increments")
    kwargs = dict(max_schedules=96, seed=3, chunk_size=16)
    tmp = tempfile.mkdtemp()

    # The serial control every distributed run must reproduce exactly.
    _, control = serial_reference(spec, None, **kwargs)
    print(f"serial control fingerprint: {control[:16]}…\n")

    legs = [
        ("fault-free", FaultPlan()),
        ("worker 0 SIGKILLed mid-campaign",
         FaultPlan.parse(["kill:worker=0:ordinal=1"])),
        ("worker 1 hangs past its lease",
         FaultPlan.parse(["hang:worker=1:ordinal=0:duration=0.6"])),
    ]
    for index, (name, plan) in enumerate(legs):
        store = SqliteStore(os.path.join(tmp, f"leg{index}.sqlite"))
        try:
            result = CampaignRunner(
                store, spec, workers=2, faults=plan,
                lease_duration=0.4, heartbeat_interval=0.1,
                deadline_s=90.0, **kwargs).run()
            fingerprint = fingerprint_from_store(store, result.campaign_id)
            print(f"{name}:")
            print(f"  complete={result.success} in {result.duration:.2f}s — "
                  f"{result.committed_chunks} chunks, "
                  f"{result.committed_records} records")
            if result.respawns:
                print(f"  workers respawned: {result.respawns}")
            if result.recovery_latency_s is not None:
                print(f"  worst recovery latency: "
                      f"{result.recovery_latency_s * 1000:.0f} ms")
            print(f"  byte-identical to serial: {fingerprint == control}\n")
        finally:
            store.close()

    print("the same machinery from the command line:")
    print("  PYTHONPATH=src python -m repro.distrib.cli verify \\")
    print("      --store campaigns.sqlite --program-set increments \\")
    print("      --max-schedules 96 --chunk-size 16 --seed 3 \\")
    print("      --workers 2 --fault-seed 7")


if __name__ == "__main__":
    main()
