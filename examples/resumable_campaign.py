"""Persistent campaigns: survive a kill, dedupe across runs, query anomalies.

An ``explore()`` call with a :class:`~repro.persist.SqliteStore` attached is
a *campaign*: every chunk of records is committed atomically as it arrives,
so the process can die at any moment and a re-run of the same call loads the
durable prefix and executes only the remainder — producing a result
byte-identical to an uninterrupted run.  This walkthrough stages exactly
that (a simulated mid-campaign crash), then shows the cross-run dedupe tiers
and the SQL anomaly analytics the stored rows make possible.

Run with:  PYTHONPATH=src python examples/resumable_campaign.py
"""

from __future__ import annotations

import os
import tempfile

from repro.analysis.coverage import build_coverage_report, coverage_report_from_store
from repro.explorer import ExploreOptions, ProgramSetSpec, explore
from repro.persist import SqliteStore
from repro.persist.analytics import campaign_summary, persist_result


class SimulatedCrash(RuntimeError):
    """Stands in for a SIGKILL landing mid-campaign."""


class CrashingStore:
    """Store proxy that dies after N chunk commits have gone durable."""

    def __init__(self, inner, survive_commits):
        self._inner = inner
        self._left = survive_commits

    def __getattr__(self, name):
        attr = getattr(self._inner, name)
        if name != "commit_chunk":
            return attr

        def commit_chunk(*args, **kwargs):
            if self._left <= 0:
                raise SimulatedCrash()
            self._left -= 1
            return attr(*args, **kwargs)

        return commit_chunk


def main() -> None:
    path = os.path.join(tempfile.mkdtemp(), "campaigns.sqlite")
    spec = ProgramSetSpec.make("increments")
    base = ExploreOptions(max_schedules=200, chunk_size=8)

    # 1. The control: an ordinary, store-less run to compare against.
    control = explore(spec, base)

    # 2. A campaign that "crashes" after three chunk commits.
    store = SqliteStore(path)
    try:
        explore(spec, base.replace(store=CrashingStore(store, 3),
                                   campaign_id="demo"))
    except SimulatedCrash:
        print("campaign killed mid-stream; 3 chunks are durable\n")

    # 3. Resume: same call, same store.  The durable prefix is loaded, the
    #    remainder executed; the result is byte-identical to the control.
    resumed = explore(spec, base.replace(store=store, campaign_id="demo"))
    print(f"resume matches uninterrupted run: "
          f"{resumed.fingerprint() == control.fingerprint()}")
    stats = next(iter(resumed.levels.values())).cache_stats
    print(f"first level reused {stats.get('store_chunks_loaded', 0)} stored "
          f"chunks, committed {stats.get('store_chunks_committed', 0)} new\n")

    # 4. Cross-run dedupe: a re-run of the completed campaign executes nothing.
    rerun = explore(spec, base.replace(store=store, campaign_id="demo"))
    print(f"re-run of the finished campaign executed "
          f"{rerun.executed_schedules()} schedules\n")

    # 5. The stored rows rebuild the coverage report without executing —
    #    byte-equal to the live one.
    live = build_coverage_report(control).render()
    stored = coverage_report_from_store(store, "demo").render()
    print(f"store-rebuilt coverage report is byte-equal: {stored == live}\n")

    # 6. SQL analytics: persist the derived coverage cells and witness edges,
    #    then query anomaly frequency over logical time, first witnesses,
    #    and ranked conflict-edge kinds.
    persist_result(store, "demo", rerun)
    print(campaign_summary(store, "demo"))
    store.close()

    print(f"\nthe campaign file is plain SQLite — inspect it with any client:")
    print(f"  sqlite3 {path} 'SELECT scope, COUNT(*) FROM records GROUP BY scope'")


if __name__ == "__main__":
    main()
