#!/usr/bin/env python3
"""Write skew (A5B) at a bank that allows jointly-backed overdrafts — history H5.

The constraint: a couple's two account balances may individually go negative
as long as their *sum* stays non-negative.  Each withdrawal transaction checks
the sum before writing — yet under Snapshot Isolation both withdrawals can
commit and leave the couple at -80 overall.  REPEATABLE READ and SERIALIZABLE
prevent it (at the cost of a deadlock-resolving abort); Snapshot Isolation
does not, because the two transactions write different items and
First-Committer-Wins never fires.

    python examples/write_skew_bank.py
"""

from __future__ import annotations

from repro import Database, IsolationLevelName
from repro.core.phenomena import A5B_WRITE_SKEW
from repro.engine.programs import Commit, ReadItem, TransactionProgram, WriteItem
from repro.engine.scheduler import ScheduleRunner
from repro.storage.constraints import items_sum_at_least
from repro.testbed import make_engine

LEVELS = (
    IsolationLevelName.READ_COMMITTED,
    IsolationLevelName.REPEATABLE_READ,
    IsolationLevelName.SNAPSHOT_ISOLATION,
    IsolationLevelName.SERIALIZABLE,
)


def joint_accounts() -> Database:
    database = Database()
    database.set_item("x", 50)
    database.set_item("y", 50)
    database.add_constraint(items_sum_at_least(("x", "y"), 0))
    return database


def withdrawal(txn: int, target: str) -> TransactionProgram:
    """Withdraw 90 from ``target`` if the joint balance allows it.

    The program encodes the application's decision: it reads both balances
    (sees 100 total, so a 90 withdrawal is fine) and writes the new balance of
    its own account.  The check is implicit in the value written: 50 - 90 = -40,
    acceptable only because the *other* account still holds 50 — or so each
    transaction believes.
    """
    return TransactionProgram(txn, [
        ReadItem("x"),
        ReadItem("y"),
        WriteItem(target, lambda ctx: ctx[target] - 90),
        Commit(),
    ], label=f"withdraw-90-from-{target}")


def run(level: IsolationLevelName) -> None:
    database = joint_accounts()
    engine = make_engine(database, level)
    programs = [withdrawal(1, "y"), withdrawal(2, "x")]
    interleaving = [1, 1, 2, 2, 1, 2, 1, 2]
    outcome = ScheduleRunner(engine, programs, interleaving).run()
    x, y = database.get_item("x"), database.get_item("y")
    constraint_ok = database.constraints_hold()
    skew = A5B_WRITE_SKEW.occurs_in(outcome.history.committed_projection())
    print(f"\n--- {level.value} ---")
    print(f"  committed: {sorted(t for t in outcome.statuses if outcome.committed(t))}, "
          f"aborted: {sorted(t for t in outcome.statuses if outcome.aborted(t))}"
          f"{' (deadlock victim)' if outcome.deadlocked() else ''}")
    print(f"  final balances: x={x}, y={y}, sum={x + y} "
          f"-> constraint {'holds' if constraint_ok else 'VIOLATED'}")
    print(f"  write-skew pattern in committed history: {skew}")


def main() -> None:
    print("Write skew (history H5): x + y must stay >= 0.")
    for level in LEVELS:
        run(level)
    print("\nSnapshot Isolation admits the violation; the paper's Remark 9 is why "
          "REPEATABLE READ and Snapshot Isolation are incomparable.")


if __name__ == "__main__":
    main()
