"""Explore the schedule space of a contended workload across isolation levels.

The paper argues each isolation level by exhibiting ONE adversarial
interleaving per anomaly.  The explorer turns that into a measurement: it
enumerates (or samples) the whole interleaving space, executes every schedule
under every level, and reports how often each phenomenon was actually
witnessed — with a concrete witness interleaving for each cell.

Run with:  PYTHONPATH=src python examples/schedule_explorer.py
"""

from __future__ import annotations

from repro.analysis.coverage import build_coverage_report
from repro.core.isolation import IsolationLevelName
from repro.explorer import ExploreOptions, ProgramSetSpec, explore

LEVELS = (
    IsolationLevelName.READ_COMMITTED,
    IsolationLevelName.REPEATABLE_READ,
    IsolationLevelName.SNAPSHOT_ISOLATION,
    IsolationLevelName.SERIALIZABLE,
)


def main() -> None:
    # 1. Lost update: two increments of the same counter, all 20 interleavings.
    spec = ProgramSetSpec.make("increments", transactions=2)
    result = explore(spec, ExploreOptions(levels=LEVELS, mode="exhaustive",
                                      max_schedules=100))
    report = build_coverage_report(result, codes=("P0", "P1", "P2", "P4"))
    print(report.render("Lost update (P4): two read-modify-write increments"))
    witness = report.witness(IsolationLevelName.READ_COMMITTED, "P4")
    if witness:
        interleaving, history = witness
        print(f"\n  witness interleaving: {interleaving}")
        print(f"  realized history:     {history}\n")

    # 2. Write skew: the A5B scenario SI admits but REPEATABLE READ prevents.
    result = explore(ProgramSetSpec.make("write-skew"),
                 ExploreOptions(levels=LEVELS, mode="exhaustive",
                                max_schedules=100))
    print(build_coverage_report(result, codes=("P4", "A5A", "A5B")).render(
        "Write skew (A5B): disjoint writes after overlapping reads"))
    print()

    # 3. Partial-order reduction: a sharded workload where most interleavings
    #    differ only by commuting steps of disjoint transactions — one
    #    representative per equivalence class is executed, coverage unchanged.
    result = explore(ProgramSetSpec.make("sharded-increments"),
                 ExploreOptions(levels=LEVELS, mode="exhaustive",
                                max_schedules=100, reduction="sleep-set"))
    print(build_coverage_report(result, codes=("P0", "P1", "P4")).render(
        "Sharded increments under sleep-set reduction"))
    print(f"\n  executed {result.executed_schedules() // len(LEVELS)} of "
          f"{result.space.total} schedules per level "
          f"({result.reduction_ratio():.0f}x reduction)\n")

    # 4. A large sampled space: seeded, deterministic, streamed chunk by
    #    chunk across every usable core (workers="auto").
    spec = ProgramSetSpec.make("contention", transactions=4, items=4,
                               hot_items=2, operations_per_transaction=2)
    result = explore(spec, ExploreOptions(
        levels=(IsolationLevelName.READ_COMMITTED,), mode="sample",
        max_schedules=2_000, seed=7, workers="auto"))
    report = build_coverage_report(result, codes=("P1", "P2", "P4", "A5A", "A5B"))
    print(report.render(
        f"Sampled contention: 2,000 of {result.space.total:,} interleavings "
        f"({result.workers} worker{'s' if result.workers > 1 else ''})"))
    print(f"\n  deterministic fingerprint: {result.fingerprint()[:16]}…")


if __name__ == "__main__":
    main()
