"""The online isolation certifier: live streams, anomaly certificates, TCP.

The offline :class:`~repro.explorer.memo.BatchClassifier` needs the whole
history up front; the online classifier in :mod:`repro.service` certifies a
*stream* — every fed operation updates the conflict and serialization-graph
state incrementally, and each ANSI phenomenon emits an anomaly certificate
at the exact operation that completes it, byte-equal to what the offline
classifier would have concluded over the same ops.  This walkthrough:

1. feeds the paper's dirty-read and lost-update shapes op by op and shows
   the certificates firing mid-stream;
2. demonstrates the byte-equality contract against the offline classifier;
3. boots the real asyncio certifier server in-process, drives the seeded
   zipfian load generator's TCP client fleet against it, and persists the
   resulting certificates to a campaign store queried back out.

Run with:  PYTHONPATH=src python examples/online_certifier.py
"""

from __future__ import annotations

import asyncio
import os
import tempfile

from repro.core.history import History, parse_history
from repro.explorer.memo import BatchClassifier
from repro.persist import SqliteStore
from repro.service import CertifierServer, LoadConfig, OnlineClassifier
from repro.service.loadgen import drain_offline, generate_stream, run_load_tcp


def live_certificates() -> None:
    print("== certificates fire at the completing operation ==")
    cls = OnlineClassifier("demo")
    # P1 (dirty read): T2 reads x while writer T1 is still active.  The
    # certificate fires at r2[x] — T1 has not even terminated yet.
    for token in "w1[x] r2[x] a1 c2".split():
        for certificate in cls.feed_shorthand(token):
            print(f"  after {token!r}: {certificate.code} "
                  f"txns={certificate.txns} items={certificate.items} "
                  f"witness={certificate.witness!r}")
    verdict = cls.verdict()
    print(f"  final verdict: serializable={verdict.serializable} "
          f"phenomena={verdict.phenomena}")
    assert verdict.phenomena == ("A1", "P1")


def byte_equality() -> None:
    print("== online verdicts are byte-equal to the offline classifier ==")
    config = LoadConfig(clients=4, transactions_per_client=8, seed=3)
    classifier = BatchClassifier()
    for client in range(config.clients):
        online = OnlineClassifier(f"client-{client}")
        for token in generate_stream(config, client):
            online.feed_shorthand(token)
        ops = [op for token in generate_stream(config, client)
               for op in parse_history(token)]
        offline = classifier.classify(History(ops, validate=False))
        verdict = online.verdict()
        assert verdict.serializable == offline.serializable
        assert verdict.phenomena == offline.phenomena
        assert drain_offline(config, client).committed == verdict.committed
        print(f"  client-{client}: serializable={verdict.serializable} "
              f"phenomena={verdict.phenomena} — matches offline")


async def tcp_fleet(store: SqliteStore) -> int:
    server = CertifierServer(store=store, campaign_id="demo")
    await server.start()
    print(f"== server on 127.0.0.1:{server.port}, driving 6 TCP clients ==")
    try:
        config = LoadConfig(clients=6, transactions_per_client=10, seed=1)
        report = await run_load_tcp(server.host, server.port, config)
        print(f"  {report.ops} ops -> {report.certificates} certificates, "
              f"p99 classify {report.p99_classify_us:.0f} us")
        return report.certificates
    finally:
        await server.stop()


def main() -> None:
    live_certificates()
    byte_equality()
    with tempfile.TemporaryDirectory() as tmpdir:
        store = SqliteStore(os.path.join(tmpdir, "certs.sqlite"))
        try:
            emitted = asyncio.run(tcp_fleet(store))
            persisted = store.load_certificates("demo")
            by_code: dict = {}
            for certificate in persisted:
                by_code[certificate.code] = by_code.get(certificate.code, 0) + 1
            print(f"== store holds {len(persisted)} certificates: "
                  + ", ".join(f"{code}x{count}"
                              for code, count in sorted(by_code.items()))
                  + " ==")
            assert len(persisted) == emitted and emitted > 0
        finally:
            store.close()
    print("online certifier walkthrough OK")


if __name__ == "__main__":
    main()
