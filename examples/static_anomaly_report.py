"""Static anomaly analysis: Table 4 verdicts from program structure alone.

Before running a single schedule, the level-aware static dependency graph
(``repro.static_analysis``) can already decide a large slice of Table 4: it
enumerates the ww/wr/rw conflict edges among a scenario's transaction
programs, applies the level's Table 2 lock scopes (or multiversion
semantics), and returns a per-(scenario, level) verdict — ``IMPOSSIBLE``
with a proof sketch, ``POSSIBLE`` with the witnessing edges, or ``UNKNOWN``
when opaque footprints (predicate selects, cursor operations) leave the
question undecidable.

This walkthrough prints the static verdict grid next to the paper's
expectations, shows the explaining edge sets, and then lets the explorer
confirm the headline: with ``static_pruning=True`` the explored Table 4 is
identical, while the statically-impossible scopes are skipped unexecuted.

Run with:  PYTHONPATH=src python examples/static_anomaly_report.py
"""

from __future__ import annotations

from repro.analysis.matrix import (
    EXPECTED_TABLE_4,
    TABLE_4_COLUMNS,
    TABLE_4_LEVELS,
    compute_table4_explored,
)
from repro.core.isolation import IsolationLevelName
from repro.static_analysis import Verdict, analyze_scenario_programs
from repro.workloads.scenarios import ALL_SCENARIOS, scenario_by_code

MARKS = {Verdict.IMPOSSIBLE: "--", Verdict.POSSIBLE: "P!", Verdict.UNKNOWN: "??"}


def scenario_verdicts(code, level):
    """The static verdict of every variant of one scenario at one level."""
    scenario = scenario_by_code(code)
    return [
        analyze_scenario_programs(variant.build_programs(), code, level)
        for variant in scenario.variants
    ]


def main() -> None:
    # 1. The static verdict grid.  A cell shows one mark per scenario
    #    variant: "--" statically impossible (sound, CI-gated), "P!" the
    #    defining edge pattern exists, "??" opaque footprints leave it open.
    width = max(len(level.value) for level in TABLE_4_LEVELS) + 2
    print("Static verdicts per variant ('--' impossible, 'P!' possible, "
          "'??' unknown):\n")
    print(" " * width + "  ".join(f"{code:<6}" for code in TABLE_4_COLUMNS))
    for level in TABLE_4_LEVELS:
        cells = []
        for code in TABLE_4_COLUMNS:
            marks = [MARKS[v.verdict] for v in scenario_verdicts(code, level)]
            cells.append(f"{','.join(marks):<6}")
        print(f"{level.value:<{width}}" + "  ".join(cells))

    # 2. The proof sketches.  IMPOSSIBLE verdicts explain which rule fired;
    #    POSSIBLE verdicts carry the witnessing conflict edges.
    print("\nWhy Snapshot Isolation splits the skews (the paper's headline):")
    for code in ("A5A", "A5B"):
        for verdict in scenario_verdicts(code, IsolationLevelName.SNAPSHOT_ISOLATION):
            print(f"  {verdict.describe()}")

    print("\nWhy READ COMMITTED still loses updates:")
    for verdict in scenario_verdicts("P4", IsolationLevelName.READ_COMMITTED):
        print(f"  {verdict.describe()}")

    # 3. Static vs dynamic: the explored Table 4 with pruning enabled must
    #    equal the fully-executed one — statically-impossible scopes count
    #    as non-manifesting, which is exactly what running them measures.
    table = compute_table4_explored(static_pruning=True)
    print("\n" + table.render())
    agrees = table.possibilities() == EXPECTED_TABLE_4
    scopes = sum(len(scenario.variants) for scenario in ALL_SCENARIOS) * \
        len(TABLE_4_LEVELS)
    print(f"\nmatches the paper's Table 4: {agrees}")
    print(f"variant scopes skipped statically: "
          f"{table.total_pruned_variants()} of {scopes}")


if __name__ == "__main__":
    main()
