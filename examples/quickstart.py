#!/usr/bin/env python3
"""Quickstart: open sessions at different isolation levels and watch them differ.

Runs the same two-transaction interaction — a writer transferring money while
a reader audits the accounts — under Locking SERIALIZABLE, Locking READ
UNCOMMITTED, and Snapshot Isolation, using the high-level ``Session`` API.

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import Database, IsolationLevelName, Session
from repro.testbed import WouldBlock


def fresh_bank() -> Database:
    """Two accounts, 50 each; every transfer should preserve the total of 100."""
    database = Database()
    database.set_item("checking", 50)
    database.set_item("savings", 50)
    return database


def audit_during_transfer(level: IsolationLevelName) -> None:
    print(f"\n--- {level.value} ---")
    session = Session(fresh_bank(), level)

    transfer = session.begin()
    audit = session.begin()

    # The transfer withdraws from checking first...
    transfer.write("checking", transfer.read("checking") - 40)

    # ...and while it is still in flight, the audit reads both balances.
    try:
        seen_checking = audit.read("checking")
        seen_savings = audit.read("savings")
        total = seen_checking + seen_savings
        verdict = "consistent" if total == 100 else "INCONSISTENT (dirty read!)"
        print(f"audit sees checking={seen_checking} savings={seen_savings} "
              f"-> total={total} ({verdict})")
        audit.commit()
    except WouldBlock as blocked:
        print(f"audit blocks until the transfer finishes: {blocked}")
        audit.abort()

    # The transfer completes either way.
    transfer.write("savings", transfer.read("savings") + 40)
    transfer.commit()
    print(f"final state: {session.database.items()}")


def main() -> None:
    print("Quickstart: one in-flight transfer, one concurrent audit.")
    audit_during_transfer(IsolationLevelName.READ_UNCOMMITTED)   # sees total 60
    audit_during_transfer(IsolationLevelName.SERIALIZABLE)       # blocks
    audit_during_transfer(IsolationLevelName.SNAPSHOT_ISOLATION)  # sees old snapshot, total 100


if __name__ == "__main__":
    main()
