"""Explorer-driven Table 4: the paper's anomaly matrix as a measurement.

The paper establishes each Table 4 cell with ONE hand-picked adversarial
interleaving.  This walkthrough recomputes the whole table by exhausting the
*entire* interleaving space of every scenario variant under every isolation
level: each cell becomes a measured manifestation frequency backed by a
replayable witness interleaving, and the blocked / deadlocked / stalled
schedules that arbitrary interleavings produce under locking engines are
ordinary non-manifesting results along the way.

Run with:  PYTHONPATH=src python examples/table4_explored.py
"""

from __future__ import annotations

from repro.analysis.matrix import (
    EXPECTED_TABLE_4,
    TABLE_4_COLUMNS,
    compute_table4_explored,
)
from repro.analysis.report import matrix_matches, render_comparison
from repro.core.isolation import IsolationLevelName
from repro.testbed import engine_factory
from repro.workloads.scenarios import run_variant, scenario_by_code


def main() -> None:
    # 1. Explore every variant space under every Table 4 level (the curated
    #    spaces are small — 8202 schedules per full sweep — so the default
    #    budget is exhaustive and the run takes a couple of seconds).
    table = compute_table4_explored()
    print(table.render())

    # 2. Compare against the paper's printed table, cell for cell.
    ok, mismatches = matrix_matches(EXPECTED_TABLE_4, table.possibilities())
    print()
    print(render_comparison(EXPECTED_TABLE_4, table.possibilities(),
                            TABLE_4_COLUMNS,
                            title="Paper vs. explored ('!' marks mismatches)"))
    print(f"\nmatches the paper: {ok}"
          + (f" ({len(mismatches)} mismatches)" if mismatches else ""))

    # 3. Every witnessed cell carries a replayable exhibit.  Replay the
    #    Snapshot Isolation write-skew witness through run_variant to show
    #    the measured claim is independently checkable.
    level = IsolationLevelName.SNAPSHOT_ISOLATION
    variant_name, interleaving, history = table.witness(level, "A5B")
    print(f"\nA5B under {level.value}: witness variant {variant_name!r}")
    print(f"  interleaving: {interleaving}")
    print(f"  history:      {history}")
    replay = run_variant(scenario_by_code("A5B").variant(variant_name),
                         engine_factory(level), "A5B",
                         interleaving=interleaving)
    print(f"  replays to manifestation: {replay.manifested}")

    # 4. The frequencies behind a "Sometimes Possible" cell: Cursor Stability
    #    loses updates through plain reads but protects the cursor path.
    cell = table.cell(IsolationLevelName.CURSOR_STABILITY, "P4")
    print(f"\nP4 under Cursor Stability ({cell.possibility}):")
    for name, frequency in cell.variant_frequencies:
        print(f"  {name:28s} manifests in {frequency * 100:5.1f}% of schedules")


if __name__ == "__main__":
    main()
