#!/usr/bin/env python3
"""The paper's Section 3 argument, end to end: histories H1 and H2.

The example replays the inconsistent-analysis interleavings of histories H1
(dirty read) and H2 (fuzzy read / read skew) against every isolation engine,
shows which engines let the audit see a broken total, and then analyses the
literal paper histories with the phenomenon detectors to demonstrate why the
strict ANSI interpretations (A1/A2) fail to rule them out.

    python examples/bank_transfer_audit.py
"""

from __future__ import annotations

from repro import IsolationLevelName, Database
from repro.core.catalog import by_name
from repro.core.dependency import is_serializable
from repro.core.phenomena import detect_all
from repro.engine.programs import Commit, ReadItem, TransactionProgram, WriteItem
from repro.engine.scheduler import ScheduleRunner
from repro.testbed import make_engine

LEVELS = (
    IsolationLevelName.READ_UNCOMMITTED,
    IsolationLevelName.READ_COMMITTED,
    IsolationLevelName.REPEATABLE_READ,
    IsolationLevelName.SERIALIZABLE,
    IsolationLevelName.SNAPSHOT_ISOLATION,
    IsolationLevelName.ORACLE_READ_CONSISTENCY,
)


def bank() -> Database:
    database = Database()
    database.set_item("x", 50)
    database.set_item("y", 50)
    return database


def h1_programs():
    """T1 transfers 40 from x to y; T2 audits.  Interleaved as in history H1."""
    transfer = TransactionProgram(1, [
        ReadItem("x"),
        WriteItem("x", lambda ctx: ctx["x"] - 40),
        ReadItem("y"),
        WriteItem("y", lambda ctx: ctx["y"] + 40),
        Commit(),
    ], label="transfer")
    audit = TransactionProgram(2, [
        ReadItem("x", into="seen_x"),
        ReadItem("y", into="seen_y"),
        Commit(),
    ], label="audit")
    return [transfer, audit], [1, 1, 2, 2, 2, 1, 1, 1]


def h2_programs():
    """T2 transfers 40 from x to y; T1 audits around it (history H2)."""
    audit = TransactionProgram(1, [
        ReadItem("x", into="seen_x"),
        ReadItem("y", into="seen_y"),
        Commit(),
    ], label="audit")
    transfer = TransactionProgram(2, [
        ReadItem("x"),
        WriteItem("x", lambda ctx: ctx["x"] - 40),
        ReadItem("y"),
        WriteItem("y", lambda ctx: ctx["y"] + 40),
        Commit(),
    ], label="transfer")
    return [audit, transfer], [1, 2, 2, 2, 2, 2, 1, 1]


def replay(name, build):
    print(f"\n=== {name}: what does the audit see under each engine? ===")
    for level in LEVELS:
        programs, interleaving = build()
        engine = make_engine(bank(), level)
        outcome = ScheduleRunner(engine, programs, interleaving).run()
        audit_txn = 2 if name == "H1" else 1
        seen_x = outcome.observed(audit_txn, "seen_x")
        seen_y = outcome.observed(audit_txn, "seen_y")
        total = None if seen_x is None or seen_y is None else seen_x + seen_y
        verdict = "ok" if total == 100 else "INCONSISTENT"
        print(f"  {level.value:28s} audit total = {total!s:5s} ({verdict}); "
              f"blocked={outcome.blocked_events}, "
              f"aborts={sorted(t for t in outcome.statuses if outcome.aborted(t))}")


def analyse_paper_histories():
    print("\n=== The literal paper histories, through the detectors ===")
    for name in ("H1", "H2"):
        entry = by_name(name)
        history = entry.history
        found = sorted(code for code, occ in detect_all(history).items() if occ)
        print(f"  {name}: {history.to_shorthand()}")
        print(f"      serializable: {is_serializable(history)}")
        print(f"      phenomena detected: {', '.join(found)}")
        print(f"      note: none of the strict anomalies A1/A2/A3 occur, yet the "
              f"history is not serializable — the paper's case for the broad "
              f"interpretations.")


def main() -> None:
    replay("H1", h1_programs)
    replay("H2", h2_programs)
    analyse_paper_histories()


if __name__ == "__main__":
    main()
