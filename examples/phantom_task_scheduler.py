#!/usr/bin/env python3
"""Phantoms (P3): the employee-count check of history H3 and the Section 4.2
task-hours constraint, run against REPEATABLE READ, SERIALIZABLE, and
Snapshot Isolation.

Two workloads:

* **H3** — one transaction lists the active employees and cross-checks the
  materialized head-count ``z`` while another hires someone and bumps the
  count.  REPEATABLE READ (item locks only, short predicate locks) lets the
  check see a mismatch; SERIALIZABLE's long predicate locks do not.
* **Task hours** — two transactions each read the job-task table (total 7
  hours), decide there is room for one more 1-hour task, and insert different
  rows.  Snapshot Isolation commits both (First-Committer-Wins never fires on
  disjoint inserts) and the 8-hour constraint breaks — the phantom Snapshot
  Isolation cannot exclude.

    python examples/phantom_task_scheduler.py
"""

from __future__ import annotations

from repro import Database, IsolationLevelName, Row
from repro.engine.programs import (
    Commit,
    InsertRow,
    ReadItem,
    SelectPredicate,
    TransactionProgram,
    WriteItem,
)
from repro.engine.scheduler import ScheduleRunner
from repro.storage.constraints import predicate_count_matches_item, predicate_sum_at_most
from repro.storage.predicates import attribute_equals, whole_table
from repro.testbed import make_engine

ACTIVE = attribute_equals("ActiveEmployees", "employees", "active", True)
TASKS = whole_table("Tasks", "tasks")

LEVELS = (
    IsolationLevelName.REPEATABLE_READ,
    IsolationLevelName.SERIALIZABLE,
    IsolationLevelName.SNAPSHOT_ISOLATION,
)


def employees_database() -> Database:
    database = Database()
    database.create_table("employees", [
        Row("e1", {"name": "Ada", "active": True}),
        Row("e2", {"name": "Grace", "active": True}),
        Row("e3", {"name": "Edsger", "active": False}),
    ])
    database.set_item("z", 2)
    database.add_constraint(predicate_count_matches_item(ACTIVE, "z"))
    return database


def tasks_database() -> Database:
    database = Database()
    database.create_table("tasks", [Row("t1", {"hours": 3}), Row("t2", {"hours": 4})])
    database.add_constraint(predicate_sum_at_most(TASKS, "hours", 8))
    return database


def run_h3(level: IsolationLevelName) -> None:
    auditor = TransactionProgram(1, [
        SelectPredicate(ACTIVE, into="employees"),
        ReadItem("z", into="count"),
        Commit(),
    ], label="headcount-check")
    hiring = TransactionProgram(2, [
        InsertRow("employees", Row("e4", {"name": "Barbara", "active": True})),
        ReadItem("z"),
        WriteItem("z", lambda ctx: ctx["z"] + 1),
        Commit(),
    ], label="hire")
    engine = make_engine(employees_database(), level)
    outcome = ScheduleRunner(engine, [auditor, hiring], [1, 2, 2, 2, 2, 1, 1]).run()
    listed = outcome.observed(1, "employees")
    count = outcome.observed(1, "count")
    listed_count = None if listed is None else len(listed)
    verdict = "consistent" if listed_count == count else "PHANTOM MISMATCH"
    print(f"  {level.value:22s} auditor saw {listed_count} active employees, "
          f"count z = {count} ({verdict}); blocked={outcome.blocked_events}")


def run_task_hours(level: IsolationLevelName) -> None:
    def scheduler(txn: int, key: str) -> TransactionProgram:
        return TransactionProgram(txn, [
            SelectPredicate(TASKS, into="tasks"),
            InsertRow("tasks", Row(key, {"hours": 1})),
            Commit(),
        ], label=f"add-{key}")

    database = tasks_database()
    engine = make_engine(database, level)
    outcome = ScheduleRunner(engine, [scheduler(1, "t3"), scheduler(2, "t4")],
                             [1, 2, 1, 2, 1, 2]).run()
    total = sum(row.get("hours", 0) for row in database.table("tasks"))
    committed = sorted(txn for txn in outcome.statuses if outcome.committed(txn))
    verdict = "within budget" if database.constraints_hold() else "CONSTRAINT VIOLATED"
    print(f"  {level.value:22s} committed={committed}, total hours={total} ({verdict})")


def main() -> None:
    print("History H3: active-employee list vs materialized count")
    for level in LEVELS:
        run_h3(level)
    print("\nSection 4.2: job tasks must not exceed 8 hours in total")
    for level in LEVELS:
        run_task_hours(level)
    print("\nNote the asymmetry the paper highlights: Snapshot Isolation has no "
          "ANSI-style phantoms (the H3 check stays consistent) yet still allows "
          "the predicate-based constraint to break via disjoint inserts.")


if __name__ == "__main__":
    main()
