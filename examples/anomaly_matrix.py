#!/usr/bin/env python3
"""Regenerate the paper's Table 4 (plus the extension rows) and print it.

This is the library's headline reproduction as a standalone script: every
anomaly scenario is executed against every engine and the aggregated
Possible / Not Possible / Sometimes Possible matrix is compared with the
paper's published table.

    python examples/anomaly_matrix.py
"""

from __future__ import annotations

from repro.analysis.matrix import (
    EXPECTED_TABLE_4,
    EXTENSION_EXPECTATIONS,
    TABLE_4_COLUMNS,
    compute_table4,
    compute_table4_row,
)
from repro.analysis.report import matrix_matches, render_comparison, render_possibility_matrix
from repro.testbed import engine_factory


def main() -> None:
    print("Recomputing Table 4 (this runs every anomaly scenario on every engine)...")
    measured = compute_table4()
    print()
    print(render_comparison(EXPECTED_TABLE_4, measured, TABLE_4_COLUMNS,
                            title="Table 4 — paper vs measured (mismatches would be marked '!')"))
    ok, mismatches = matrix_matches(EXPECTED_TABLE_4, measured)
    print()
    if ok:
        print("All cells match the paper.")
    else:
        print("MISMATCHES:")
        for mismatch in mismatches:
            print(f"  - {mismatch}")

    print()
    extension = {
        level: compute_table4_row(engine_factory(level))
        for level in EXTENSION_EXPECTATIONS
    }
    print(render_possibility_matrix(
        extension, TABLE_4_COLUMNS,
        title="Extension rows (not in the paper's table): GLPT Degree 0 and Oracle Read Consistency"))


if __name__ == "__main__":
    main()
