"""Compatibility shim for environments without the ``wheel`` package.

Canonical metadata lives in ``pyproject.toml``.  This file only enables the
legacy editable-install path (``pip install -e . --no-use-pep517``) on minimal
containers where PEP 660 wheel building is unavailable.
"""

from setuptools import setup

setup()
