"""`ExploreOptions` — the consolidated configuration surface of :func:`explore`.

Nine PRs grew :func:`repro.explorer.explore` to twelve loose keyword knobs
plus a handful of ``EXPLORER_*`` environment variables read deep inside the
workers.  This module consolidates them into one frozen dataclass:

* :class:`ExploreOptions` carries every knob, validates them eagerly in
  ``__post_init__`` (same error messages, same order as the historical
  inline checks), and is immutable — pass it around, derive variants with
  :meth:`ExploreOptions.replace`.
* :meth:`ExploreOptions.from_env` builds one from the ``EXPLORER_*``
  environment variables, so scripts and CI jobs configure a run without
  threading a dozen flags.

``explore(spec, options)`` is the preferred call; the legacy
``explore(spec, workers=..., chunk_size=...)`` kwargs remain as a thin shim
that builds an :class:`ExploreOptions` internally (see ``explorer.py``) and
produces byte-identical results — the equivalence tests fingerprint both.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Any, Mapping, Optional, Sequence, Tuple, Union

from ..core.isolation import IsolationLevelName

__all__ = [
    "DEFAULT_LEVELS",
    "REDUCTIONS",
    "ExploreOptions",
]

#: The Table 4 rows the coverage report mirrors by default.
DEFAULT_LEVELS: Tuple[IsolationLevelName, ...] = (
    IsolationLevelName.READ_UNCOMMITTED,
    IsolationLevelName.READ_COMMITTED,
    IsolationLevelName.REPEATABLE_READ,
    IsolationLevelName.SNAPSHOT_ISOLATION,
    IsolationLevelName.SERIALIZABLE,
)

#: Accepted reduction strategies.
REDUCTIONS = ("none", "sleep-set")


def _env_bool(name: str, raw: str) -> bool:
    lowered = raw.strip().lower()
    if lowered in ("1", "true", "yes", "on"):
        return True
    if lowered in ("0", "false", "no", "off"):
        return False
    raise ValueError(f"{name} must be a boolean flag "
                     f"(1/0/true/false/yes/no/on/off), got {raw!r}")


def _env_int(name: str, raw: str) -> int:
    try:
        return int(raw)
    except ValueError:
        raise ValueError(f"{name} must be an integer, got {raw!r}") from None


@dataclass(frozen=True)
class ExploreOptions:
    """Every knob of :func:`repro.explorer.explore`, validated and frozen.

    Field semantics are documented on :func:`repro.explorer.explore` (this
    class is its parameter object).  Validation happens eagerly at
    construction, with the same messages the inline checks historically
    raised, so ``ExploreOptions(workers=0)`` fails exactly like
    ``explore(spec, workers=0)`` always did.
    """

    levels: Tuple[IsolationLevelName, ...] = DEFAULT_LEVELS
    mode: str = "auto"
    max_schedules: int = 1000
    seed: int = 0
    workers: Union[int, str] = 1
    chunk_size: int = 64
    reduction: str = "none"
    shared_cache: bool = True
    outcome_memo: Union[bool, str] = "auto"
    static_pruning: bool = False
    batch_kernel: Optional[str] = None
    store: Any = field(default=None, compare=False)
    campaign_id: Optional[str] = None

    def __post_init__(self) -> None:
        object.__setattr__(self, "levels", tuple(self.levels))
        workers = self.workers
        if workers != "auto":
            if isinstance(workers, bool) or not isinstance(workers, int):
                raise ValueError(
                    f"workers must be an int or 'auto', got {workers!r}")
            if workers < 1:
                raise ValueError("workers must be >= 1")
        if self.chunk_size < 1:
            raise ValueError("chunk_size must be >= 1")
        if self.batch_kernel not in (None, "auto", "on", "off"):
            raise ValueError(
                f"batch_kernel must be None, 'auto', 'on', or 'off', "
                f"got {self.batch_kernel!r}")
        if self.reduction not in REDUCTIONS:
            raise ValueError(
                f"unknown reduction {self.reduction!r}; choose from {REDUCTIONS}")
        if not (self.outcome_memo in (True, False) or self.outcome_memo == "auto"):
            raise ValueError(
                f"outcome_memo must be True, False, or 'auto', "
                f"got {self.outcome_memo!r}")
        if self.campaign_id is not None and self.store is None:
            raise ValueError("campaign_id requires a store")

    def replace(self, **changes: Any) -> "ExploreOptions":
        """A copy with the given fields replaced (re-validated)."""
        return dataclasses.replace(self, **changes)

    @classmethod
    def field_names(cls) -> Tuple[str, ...]:
        """The knob names, in signature order (the legacy kwargs surface)."""
        return tuple(f.name for f in dataclasses.fields(cls))

    @classmethod
    def from_env(cls, environ: Optional[Mapping[str, str]] = None,
                 **overrides: Any) -> "ExploreOptions":
        """Build options from the ``EXPLORER_*`` environment variables.

        Recognized variables (unset ones keep the dataclass default)::

            EXPLORER_LEVELS          comma-separated level names
            EXPLORER_MODE            auto | exhaustive | sample
            EXPLORER_MAX_SCHEDULES   int
            EXPLORER_SEED            int
            EXPLORER_WORKERS         int or "auto"
            EXPLORER_CHUNK_SIZE      int
            EXPLORER_REDUCTION       none | sleep-set
            EXPLORER_SHARED_CACHE    bool flag
            EXPLORER_OUTCOME_MEMO    bool flag or "auto"
            EXPLORER_STATIC_PRUNING  bool flag
            EXPLORER_BATCH_KERNEL    auto | on | off

        Explicit ``overrides`` win over the environment.  Malformed values
        raise :class:`ValueError` naming the offending variable.
        """
        if environ is None:
            import os
            environ = os.environ
        values: dict = {}
        raw = environ.get("EXPLORER_LEVELS")
        if raw is not None:
            values["levels"] = tuple(
                IsolationLevelName(part.strip())
                for part in raw.split(",") if part.strip())
        raw = environ.get("EXPLORER_MODE")
        if raw is not None:
            values["mode"] = raw
        raw = environ.get("EXPLORER_MAX_SCHEDULES")
        if raw is not None:
            values["max_schedules"] = _env_int("EXPLORER_MAX_SCHEDULES", raw)
        raw = environ.get("EXPLORER_SEED")
        if raw is not None:
            values["seed"] = _env_int("EXPLORER_SEED", raw)
        raw = environ.get("EXPLORER_WORKERS")
        if raw is not None:
            values["workers"] = "auto" if raw.strip() == "auto" else _env_int(
                "EXPLORER_WORKERS", raw)
        raw = environ.get("EXPLORER_CHUNK_SIZE")
        if raw is not None:
            values["chunk_size"] = _env_int("EXPLORER_CHUNK_SIZE", raw)
        raw = environ.get("EXPLORER_REDUCTION")
        if raw is not None:
            values["reduction"] = raw
        raw = environ.get("EXPLORER_SHARED_CACHE")
        if raw is not None:
            values["shared_cache"] = _env_bool("EXPLORER_SHARED_CACHE", raw)
        raw = environ.get("EXPLORER_OUTCOME_MEMO")
        if raw is not None:
            values["outcome_memo"] = (
                "auto" if raw.strip() == "auto"
                else _env_bool("EXPLORER_OUTCOME_MEMO", raw))
        raw = environ.get("EXPLORER_STATIC_PRUNING")
        if raw is not None:
            values["static_pruning"] = _env_bool("EXPLORER_STATIC_PRUNING", raw)
        raw = environ.get("EXPLORER_BATCH_KERNEL")
        if raw is not None:
            values["batch_kernel"] = raw
        values.update(overrides)
        return cls(**values)

    def explore_kwargs(self) -> dict:
        """The legacy keyword mapping (for shims and config fingerprints)."""
        return {f.name: getattr(self, f.name) for f in dataclasses.fields(self)}
