"""Process-pool work units for the schedule-space explorer.

Everything that crosses the process boundary lives here and is picklable by
construction: a :class:`ChunkTask` names a registered program set (by spec),
an isolation level (an enum), and a chunk of interleavings; the worker
executes the chunk through a **per-process cached**
:class:`~repro.explorer.trie_executor.TrieExecutor` — the testbed (database +
programs + engine + runner) is built once per ``(spec, level)`` per process
and every subsequent schedule is a checkpoint restore, never a rebuild — and
classifies the realized histories with a chunk-local
:class:`~repro.explorer.memo.BatchClassifier`.

Results come back as :class:`ScheduleRecord` values (shorthand strings and
tuples, no live engine state), tagged with the chunk index so the parent can
reassemble them in schedule order — making output independent of worker
count and chunk scheduling.

Cross-process cache sharing uses an **append-only log** (a manager list of
classification batches) instead of a shared dict: a worker pulls only the
batches it has not consumed yet (one slice read) and publishes its fresh
classifications as one appended batch (one write) — a single batched exchange
per chunk in each direction.  Freshness is keyed on the log length, which
grows monotonically with every publish; the earlier dict-based design keyed
freshness on ``len(dict)`` and went stale whenever a concurrent worker
overwrote existing keys without changing the size.

The logs are bounded: once a log holds ``EXPLORER_SHARED_LOG_CAP`` entries
(default 200,000; ``-1`` disables the cap), further publishes are dropped
instead of appended, so a long campaign cannot grow the manager log without
limit.  True compaction is off the table by design — workers key their
incremental pulls on batch indices, which rewriting the log would invalidate.
Dropped entries are surfaced per chunk in ``cache_stats`` as
``shared_evicted`` / ``outcomes_evicted``; the cap is approximate under
concurrency (each worker checks it against its own snapshot of the log
length).  Dropping a publish is always sound: the log is a pure cache, and a
worker that misses an entry simply recomputes it.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from ..core.isolation import IsolationLevelName
from ..engine.programs import TransactionProgram
from ..storage.database import Database
from ..workloads.program_sets import ProgramSet, ProgramSetSpec, resolve_program_set
from .memo import (
    BatchClassifier,
    HistoryClassification,
    ScheduleOutcome,
    ScheduleOutcomeMemo,
)
from .reduction import terminal_scope_for
from .schedules import Interleaving
from .trie_executor import TrieExecutor

__all__ = ["ChunkTask", "ScheduleRecord", "ChunkResult", "execute_chunk",
           "preload_outcome_entries", "SHARED_LOG_CAP_DEFAULT"]

#: Default entry cap for the append-only shared logs (see module docstring).
SHARED_LOG_CAP_DEFAULT = 200_000

#: Per-process testbeds, one per (spec, level, batch-kernel mode): the trie
#: executor, the workload's initial item set (captured *before* any execution
#: mutates the database), and the programs.  Builders are deterministic by the
#: explorer's contract, so a cached testbed is equivalent to a fresh build.
_TESTBED_CACHE: Dict[Tuple[ProgramSetSpec, IsolationLevelName, Optional[str]],
                     Tuple[TrieExecutor, Tuple[str, ...],
                           Tuple[TransactionProgram, ...]]] = {}

#: Per-process schedule-outcome memos, one per (spec, level) — the canonical
#: form is level-scope-dependent, and outcomes are level-dependent.
_OUTCOME_MEMO_CACHE: Dict[Tuple[ProgramSetSpec, IsolationLevelName],
                          ScheduleOutcomeMemo] = {}

#: Per-process shared-log cursors, keyed by the log proxy's manager token:
#: (batches consumed so far, merged entries, total entries seen across those
#: batches).  The batch count only grows, so freshness checks cannot go
#: stale; the entry total backs the publish-side size cap.
_SHARED_LOG_STATE: Dict[str, Tuple[int, Dict[str, HistoryClassification], int]] = {}


def _shared_log_key(proxy: Any) -> Optional[str]:
    try:
        return str(proxy._token)
    except AttributeError:  # plain list in tests
        return None


def _shared_log_cap() -> int:
    """Entry cap for shared logs; ``-1`` disables (read per publish, cheap)."""
    try:
        return int(os.environ.get("EXPLORER_SHARED_LOG_CAP",
                                  str(SHARED_LOG_CAP_DEFAULT)))
    except ValueError:
        return SHARED_LOG_CAP_DEFAULT


def _shared_snapshot(proxy: Any) -> Dict[str, HistoryClassification]:
    """Merged view of a shared classification log, pulled incrementally.

    One slice read fetches exactly the batches this process has not seen;
    the merged dict is memoized per log so converged steady state costs one
    empty slice per chunk.
    """
    key = _shared_log_key(proxy)
    consumed, merged, total = (_SHARED_LOG_STATE.get(key, (0, {}, 0))
                               if key is not None else (0, {}, 0))
    fresh_batches = list(proxy[consumed:])
    if fresh_batches:
        merged = dict(merged)
        for batch in fresh_batches:
            merged.update(batch)
            total += len(batch)
    if key is not None:
        _SHARED_LOG_STATE[key] = (consumed + len(fresh_batches), merged, total)
    return merged


def _shared_log_total(proxy: Any) -> int:
    """Entries this process knows the log to hold (exact for plain lists)."""
    key = _shared_log_key(proxy)
    if key is None:
        return sum(len(batch) for batch in list(proxy))
    return _SHARED_LOG_STATE.get(key, (0, {}, 0))[2]


def _publish_shared(proxy: Any, fresh: Dict[str, HistoryClassification]) -> bool:
    """Append one batch of locally computed classifications to the log.

    Returns ``False`` (dropping the batch) when the log has reached the
    ``EXPLORER_SHARED_LOG_CAP`` entry cap — see the module docstring.
    """
    cap = _shared_log_cap()
    if cap >= 0 and _shared_log_total(proxy) + len(fresh) > cap:
        return False
    proxy.append(fresh)
    return True


@dataclass(frozen=True)
class ChunkTask:
    """One unit of parallel work: run these schedules under this level.

    ``builder`` is the program-set builder itself, resolved from the registry
    in the parent process and pickled by reference — so specs registered by
    the calling script keep working in workers even under the ``spawn`` start
    method, where a worker's re-imported registry holds only the built-ins.
    ``None`` falls back to a registry lookup in the worker.

    ``shared_cache`` is an optional append-only log (a
    ``multiprocessing.Manager().list()`` proxy) of classification batches
    keyed by shorthand.  A worker pulls the unseen batches once before
    executing the chunk and publishes its fresh classifications as one
    appended batch afterwards — one batched exchange per chunk in each
    direction.
    """

    chunk_index: int
    spec: ProgramSetSpec
    level: IsolationLevelName
    schedules: Tuple[Interleaving, ...]
    builder: Optional[Callable[..., ProgramSet]] = None
    shared_cache: Optional[Any] = None
    #: Route the chunk through the schedule-level outcome memo: schedules are
    #: canonicalized, only one canonical member per commutation-equivalence
    #: class executes, and every member reuses its outcome (see
    #: :class:`repro.explorer.memo.ScheduleOutcomeMemo`).
    outcome_memo: bool = False
    #: Optional append-only log (manager list) of outcome batches shared
    #: across workers, exactly like ``shared_cache`` but for schedule-level
    #: outcomes keyed by canonical interleaving.
    shared_outcomes: Optional[Any] = None
    #: Phenomenon codes the classifier should detect; ``None`` means all.
    #: Set by the static pruning pass, which drops the codes proven
    #: impossible for (spec, level) — sound because a pruned code occurs in
    #: no history realizable at this level, so restricted and full
    #: classifications agree on every history the chunk can produce (and the
    #: cross-level shared cache stays coherent).
    codes: Optional[Tuple[str, ...]] = None
    #: Batch-drain kernel mode for the executor ("auto"/"on"/"off"); ``None``
    #: defers to ``EXPLORER_BATCH_KERNEL`` (default "auto").  Pure
    #: optimization — the kernel is byte-equal to the stepwise trie walk.
    batch_kernel: Optional[str] = None
    #: Return the chunk's freshly executed outcome-memo entries in
    #: ``ChunkResult.fresh_outcomes``.  The serial persistence path needs
    #: them in the result (its shared classifier suppresses the chunk-local
    #: publish path), so the parent can write them to a campaign store.
    export_outcomes: bool = False


@dataclass(frozen=True)
class ScheduleRecord:
    """The outcome of executing and classifying one interleaving."""

    interleaving: Interleaving
    history: str
    serializable: bool
    phenomena: Tuple[str, ...]
    committed: Tuple[int, ...]
    aborted: Tuple[int, ...]
    blocked_events: int
    deadlocks: int
    stalled: bool


@dataclass(frozen=True)
class ChunkResult:
    """Records for one chunk, plus the worker-local cache statistics."""

    chunk_index: int
    records: Tuple[ScheduleRecord, ...]
    cache_stats: Dict[str, int]
    #: Outcome-memo entries executed by this chunk, present only when the
    #: task set ``export_outcomes`` (the serial campaign-store path).
    fresh_outcomes: Optional[Dict[Interleaving, ScheduleOutcome]] = None


def _initial_items(database: Database) -> Tuple[str, ...]:
    """Every item (and ``table/key`` row) name present in the initial database."""
    names = list(database.items())
    for table_name, table in database.tables().items():
        names.extend(f"{table_name}/{row.key}" for row in table)
    return tuple(names)


def _testbed_for(task: ChunkTask) -> Tuple[TrieExecutor, Tuple[str, ...],
                                           Tuple[TransactionProgram, ...], int]:
    """The cached (executor, initial items, programs) for a task.

    Returns the build time in microseconds as the fourth element (0 on a
    cache hit) for the benchmark's phase breakdown.
    """
    key = (task.spec, task.level, task.batch_kernel)
    cached = _TESTBED_CACHE.get(key)
    if cached is not None:
        return cached[0], cached[1], cached[2], 0
    started = time.perf_counter()
    builder = task.builder if task.builder is not None else resolve_program_set(task.spec)
    database, programs = builder(**task.spec.kwargs())
    items = _initial_items(database)
    # EXPLORER_CHECKPOINT_SPACING bounds live checkpoints to roughly
    # total_slots/spacing per testbed, trading re-executed slots for memory
    # (see README "Performance knobs"); 1 checkpoints at every branch point.
    spacing = int(os.environ.get("EXPLORER_CHECKPOINT_SPACING", "1"))
    executor = TrieExecutor(database, programs, task.level,
                            checkpoint_spacing=spacing,
                            batch_kernel=task.batch_kernel)
    build_us = int((time.perf_counter() - started) * 1e6)
    programs = tuple(programs)
    _TESTBED_CACHE[key] = (executor, items, programs)
    return executor, items, programs, build_us


def _outcome_memo_for(task: ChunkTask,
                      programs: Tuple[TransactionProgram, ...]) -> ScheduleOutcomeMemo:
    """The per-process outcome memo for a task, building on first use.

    The oracle's terminal scope is level-aware, exactly like the reduction
    layer's (single-version locking levels take the relaxed ``"footprint"``
    rule, multiversion engines the component-wide one).
    """
    key = (task.spec, task.level)
    memo = _OUTCOME_MEMO_CACHE.get(key)
    if memo is None:
        memo = _OUTCOME_MEMO_CACHE[key] = ScheduleOutcomeMemo(
            programs, terminal_scope=terminal_scope_for(task.level))
    return memo


def preload_outcome_entries(spec: ProgramSetSpec, level: IsolationLevelName,
                            programs: Tuple[TransactionProgram, ...],
                            entries) -> int:
    """Seed this process's outcome memo for (spec, level) with stored entries.

    The campaign store's serial path runs in the parent process, where the
    memo lives in this module's per-process cache; preloading it here lets a
    resumed or repeated campaign answer whole equivalence classes from the
    store without executing them.  Sound for the same reason worker preloads
    are: an entry is a pure function of (programs, level, canonical key).
    """
    key = (spec, level)
    memo = _OUTCOME_MEMO_CACHE.get(key)
    if memo is None:
        memo = _OUTCOME_MEMO_CACHE[key] = ScheduleOutcomeMemo(
            programs, terminal_scope=terminal_scope_for(level))
    memo.preload(entries)
    return len(entries)


def execute_chunk(task: ChunkTask,
                  classifier: Optional[BatchClassifier] = None) -> ChunkResult:
    """Execute every schedule of a chunk through the prefix-sharing executor.

    ``classifier`` lets the serial path share one memoization context across
    chunks; worker processes leave it ``None`` and get a chunk-local one
    (seeded with the workload's initial item set for MV version completion,
    and with a snapshot of ``task.shared_cache`` when one is attached).

    With ``task.outcome_memo`` set, schedules are first canonicalized and the
    per-process :class:`~repro.explorer.memo.ScheduleOutcomeMemo` answers
    every schedule whose equivalence class has already executed; only one
    canonical member per unseen class runs through the engine.  Executing the
    *canonical* member (rather than the first-encountered one) keeps records
    a pure function of the schedule, independent of worker count, chunking,
    and memo warmth.

    Schedules are *executed* in lexicographic order — the DFS order of their
    shared-prefix trie — and the records reassembled in input order; the trie
    executor's byte-equality contract makes the two orders indistinguishable
    in the output.
    """
    chunk_local = classifier is None
    executor, initial_items, programs, build_us = _testbed_for(task)
    if classifier is None:
        classifier = BatchClassifier(codes=task.codes, initial_items=initial_items)
        if task.shared_cache is not None:
            classifier.preload(_shared_snapshot(task.shared_cache))
    memo: Optional[ScheduleOutcomeMemo] = None
    canonical_us = 0
    executed_keys: List[Interleaving] = []
    if task.outcome_memo:
        memo = _outcome_memo_for(task, programs)
        if task.shared_outcomes is not None:
            memo.preload(_shared_snapshot(task.shared_outcomes))
        started = time.perf_counter()
        canonical = memo.canonical
        keys = [canonical(schedule) for schedule in task.schedules]
        seen_misses = set()
        for key in keys:
            if memo.peek(key) is None and key not in seen_misses:
                seen_misses.add(key)
                executed_keys.append(key)
        canonical_us = int((time.perf_counter() - started) * 1e6)
        to_execute: Sequence[Interleaving] = executed_keys
    else:
        keys = None
        to_execute = task.schedules
    trie_before = executor.stats.as_dict()
    batch_before = executor.batch_stats.as_dict()
    records: List[Optional[ScheduleRecord]] = [None] * len(task.schedules)
    execute_us = 0
    classify_us = 0
    batch = executor.run_batch(to_execute)
    while True:
        started = time.perf_counter()
        try:
            index, outcome = next(batch)
        except StopIteration:
            execute_us += int((time.perf_counter() - started) * 1e6)
            break
        mid = time.perf_counter()
        classification = classifier.classify(outcome.history)
        ended = time.perf_counter()
        execute_us += int((mid - started) * 1e6)
        classify_us += int((ended - mid) * 1e6)
        if memo is not None:
            memo.put(executed_keys[index], ScheduleOutcome(
                history=classification.shorthand,
                serializable=classification.serializable,
                phenomena=classification.phenomena,
                committed=classification.committed,
                aborted=classification.aborted,
                blocked_events=outcome.blocked_events,
                deadlocks=len(outcome.deadlocks),
                stalled=outcome.stalled,
            ))
        else:
            records[index] = ScheduleRecord(
                interleaving=tuple(task.schedules[index]),
                history=classification.shorthand,
                serializable=classification.serializable,
                phenomena=classification.phenomena,
                committed=classification.committed,
                aborted=classification.aborted,
                blocked_events=outcome.blocked_events,
                deadlocks=len(outcome.deadlocks),
                stalled=outcome.stalled,
            )
    if memo is not None:
        for position, key in enumerate(keys):
            outcome_record = memo.peek(key)
            records[position] = ScheduleRecord(
                interleaving=tuple(task.schedules[position]),
                history=outcome_record.history,
                serializable=outcome_record.serializable,
                phenomena=outcome_record.phenomena,
                committed=outcome_record.committed,
                aborted=outcome_record.aborted,
                blocked_events=outcome_record.blocked_events,
                deadlocks=outcome_record.deadlocks,
                stalled=outcome_record.stalled,
            )
    stats = dict(classifier.stats)
    stats["us_testbed_build"] = build_us
    stats["us_step_execution"] = execute_us
    stats["us_classification"] = classify_us
    if memo is not None:
        stats["us_canonicalization"] = canonical_us
        stats["outcome_executed"] = len(executed_keys)
        stats["outcome_hits"] = len(task.schedules) - len(executed_keys)
    trie_after = executor.stats.as_dict()
    for name in ("slots_total", "slots_executed", "checkpoints_created", "restores"):
        stats[f"trie_{name}"] = trie_after[name] - trie_before[name]
    batch_after = executor.batch_stats.as_dict()
    for name in ("schedules", "rows_fast", "rows_ejected",
                 "slots_total", "slots_executed"):
        stats[f"batch_{name}"] = batch_after[name] - batch_before[name]
    if chunk_local and task.shared_cache is not None:
        fresh = classifier.exports()
        if fresh and not _publish_shared(task.shared_cache, fresh):
            stats["shared_evicted"] = len(fresh)
            fresh = {}
        stats["shared_published"] = len(fresh)
    exported_outcomes: Optional[Dict[Interleaving, ScheduleOutcome]] = None
    if memo is not None:
        # Drain unconditionally: the memo is per-process and long-lived, and
        # an undrained fresh set would retain every outcome twice forever.
        fresh_outcomes = memo.drain_fresh()
        if task.export_outcomes:
            exported_outcomes = fresh_outcomes
        if chunk_local and task.shared_outcomes is not None:
            if fresh_outcomes and not _publish_shared(task.shared_outcomes,
                                                      fresh_outcomes):
                stats["outcomes_evicted"] = len(fresh_outcomes)
                fresh_outcomes = {}
            stats["outcomes_published"] = len(fresh_outcomes)
    return ChunkResult(task.chunk_index, tuple(records), stats,
                       fresh_outcomes=exported_outcomes)
