"""Process-pool work units for the schedule-space explorer.

Everything that crosses the process boundary lives here and is picklable by
construction: a :class:`ChunkTask` names a registered program set (by spec),
an isolation level (an enum), and a chunk of interleavings; the worker
rebuilds database + programs locally for every schedule, replays them through
a reused :class:`~repro.engine.scheduler.ScheduleRunner`, and classifies the
realized histories with a chunk-local :class:`~repro.explorer.memo.BatchClassifier`.

Results come back as :class:`ScheduleRecord` values (shorthand strings and
tuples, no live engine state), tagged with the chunk index so the parent can
reassemble them in schedule order — making output independent of worker
count and chunk scheduling.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..core.isolation import IsolationLevelName
from ..engine.scheduler import ScheduleRunner
from ..storage.database import Database
from ..testbed import make_engine
from ..workloads.program_sets import ProgramSet, ProgramSetSpec, resolve_program_set
from .memo import BatchClassifier
from .schedules import Interleaving

__all__ = ["ChunkTask", "ScheduleRecord", "ChunkResult", "execute_chunk"]


@dataclass(frozen=True)
class ChunkTask:
    """One unit of parallel work: run these schedules under this level.

    ``builder`` is the program-set builder itself, resolved from the registry
    in the parent process and pickled by reference — so specs registered by
    the calling script keep working in workers even under the ``spawn`` start
    method, where a worker's re-imported registry holds only the built-ins.
    ``None`` falls back to a registry lookup in the worker.
    """

    chunk_index: int
    spec: ProgramSetSpec
    level: IsolationLevelName
    schedules: Tuple[Interleaving, ...]
    builder: Optional[Callable[..., ProgramSet]] = None


@dataclass(frozen=True)
class ScheduleRecord:
    """The outcome of executing and classifying one interleaving."""

    interleaving: Interleaving
    history: str
    serializable: bool
    phenomena: Tuple[str, ...]
    committed: Tuple[int, ...]
    aborted: Tuple[int, ...]
    blocked_events: int
    deadlocks: int
    stalled: bool


@dataclass(frozen=True)
class ChunkResult:
    """Records for one chunk, plus the worker-local cache statistics."""

    chunk_index: int
    records: Tuple[ScheduleRecord, ...]
    cache_stats: Dict[str, int]


def _initial_items(database: Database) -> Tuple[str, ...]:
    """Every item (and ``table/key`` row) name present in the initial database."""
    names = list(database.items())
    for table_name, table in database.tables().items():
        names.extend(f"{table_name}/{row.key}" for row in table)
    return tuple(names)


def execute_chunk(task: ChunkTask,
                  classifier: Optional[BatchClassifier] = None) -> ChunkResult:
    """Execute every schedule of a chunk against fresh engine instances.

    ``classifier`` lets the serial path share one memoization context across
    chunks; worker processes leave it ``None`` and get a chunk-local one
    (seeded with the workload's initial item set for MV version completion).
    """
    builder = task.builder if task.builder is not None else resolve_program_set(task.spec)
    records: List[ScheduleRecord] = []
    runner: Optional[ScheduleRunner] = None
    for interleaving in task.schedules:
        # Each schedule needs a fresh database; the builder hands back fresh
        # programs too, which only the first iteration keeps (the reused
        # runner holds them — equivalent by builder determinism).  Program
        # construction is <2% of the loop, so the builder API stays whole.
        database, programs = builder(**task.spec.kwargs())
        if classifier is None:
            classifier = BatchClassifier(initial_items=_initial_items(database))
        engine = make_engine(database, task.level)
        if runner is None:
            runner = ScheduleRunner(engine, programs, interleaving)
            outcome = runner.run()
        else:
            outcome = runner.replay(engine, interleaving)
        classification = classifier.classify(outcome.history)
        records.append(ScheduleRecord(
            interleaving=tuple(interleaving),
            history=classification.shorthand,
            serializable=classification.serializable,
            phenomena=classification.phenomena,
            committed=classification.committed,
            aborted=classification.aborted,
            blocked_events=outcome.blocked_events,
            deadlocks=len(outcome.deadlocks),
            stalled=outcome.stalled,
        ))
    stats = dict(classifier.stats) if classifier is not None else {}
    return ChunkResult(task.chunk_index, tuple(records), stats)
