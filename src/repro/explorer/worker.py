"""Process-pool work units for the schedule-space explorer.

Everything that crosses the process boundary lives here and is picklable by
construction: a :class:`ChunkTask` names a registered program set (by spec),
an isolation level (an enum), and a chunk of interleavings; the worker
rebuilds database + programs locally for every schedule, replays them through
a reused :class:`~repro.engine.scheduler.ScheduleRunner`, and classifies the
realized histories with a chunk-local :class:`~repro.explorer.memo.BatchClassifier`.

Results come back as :class:`ScheduleRecord` values (shorthand strings and
tuples, no live engine state), tagged with the chunk index so the parent can
reassemble them in schedule order — making output independent of worker
count and chunk scheduling.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from ..core.isolation import IsolationLevelName
from ..engine.scheduler import ScheduleRunner
from ..storage.database import Database
from ..testbed import make_engine
from ..workloads.program_sets import ProgramSet, ProgramSetSpec, resolve_program_set
from .memo import BatchClassifier, HistoryClassification
from .schedules import Interleaving

__all__ = ["ChunkTask", "ScheduleRecord", "ChunkResult", "execute_chunk"]

#: Per-process memo of shared-cache snapshots, keyed by the proxy's manager
#: token: (entry count at snapshot time, the snapshot).  A chunk only re-pulls
#: the dict when its size changed since this process last looked — one cheap
#: ``len()`` round-trip per chunk in the converged steady state, instead of
#: re-copying an ever-growing dict.
_SNAPSHOT_MEMO: Dict[str, Tuple[int, Dict[str, HistoryClassification]]] = {}


def _shared_snapshot(proxy: Any) -> Dict[str, HistoryClassification]:
    """A (possibly memoized) snapshot of a shared classification cache."""
    try:
        key = str(proxy._token)
    except AttributeError:  # pragma: no cover - non-manager mapping in tests
        return dict(proxy.copy())
    size = len(proxy)
    memo = _SNAPSHOT_MEMO.get(key)
    if memo is not None and memo[0] == size:
        return memo[1]
    snapshot = dict(proxy.copy())
    _SNAPSHOT_MEMO[key] = (len(snapshot), snapshot)
    return snapshot


def _publish_shared(proxy: Any, fresh: Dict[str, HistoryClassification]) -> None:
    """Push locally computed classifications and fold them into the memo."""
    proxy.update(fresh)
    try:
        key = str(proxy._token)
    except AttributeError:  # pragma: no cover - non-manager mapping in tests
        return
    memo = _SNAPSHOT_MEMO.get(key)
    merged = dict(memo[1]) if memo is not None else {}
    merged.update(fresh)
    # Record the authoritative size so a concurrent worker's publishes still
    # trigger a re-pull on the next chunk.
    _SNAPSHOT_MEMO[key] = (len(proxy), merged)


@dataclass(frozen=True)
class ChunkTask:
    """One unit of parallel work: run these schedules under this level.

    ``builder`` is the program-set builder itself, resolved from the registry
    in the parent process and pickled by reference — so specs registered by
    the calling script keep working in workers even under the ``spawn`` start
    method, where a worker's re-imported registry holds only the built-ins.
    ``None`` falls back to a registry lookup in the worker.

    ``shared_cache`` is an optional ``multiprocessing.Manager().dict()`` proxy
    holding whole-history classifications keyed by shorthand.  A worker pulls
    one snapshot of it before executing the chunk and publishes its fresh
    classifications in one bulk update afterwards — two IPC round-trips per
    chunk, so parallel runs amortize each other's cold caches instead of each
    rebuilding the memo from scratch.
    """

    chunk_index: int
    spec: ProgramSetSpec
    level: IsolationLevelName
    schedules: Tuple[Interleaving, ...]
    builder: Optional[Callable[..., ProgramSet]] = None
    shared_cache: Optional[Any] = None


@dataclass(frozen=True)
class ScheduleRecord:
    """The outcome of executing and classifying one interleaving."""

    interleaving: Interleaving
    history: str
    serializable: bool
    phenomena: Tuple[str, ...]
    committed: Tuple[int, ...]
    aborted: Tuple[int, ...]
    blocked_events: int
    deadlocks: int
    stalled: bool


@dataclass(frozen=True)
class ChunkResult:
    """Records for one chunk, plus the worker-local cache statistics."""

    chunk_index: int
    records: Tuple[ScheduleRecord, ...]
    cache_stats: Dict[str, int]


def _initial_items(database: Database) -> Tuple[str, ...]:
    """Every item (and ``table/key`` row) name present in the initial database."""
    names = list(database.items())
    for table_name, table in database.tables().items():
        names.extend(f"{table_name}/{row.key}" for row in table)
    return tuple(names)


def execute_chunk(task: ChunkTask,
                  classifier: Optional[BatchClassifier] = None) -> ChunkResult:
    """Execute every schedule of a chunk against fresh engine instances.

    ``classifier`` lets the serial path share one memoization context across
    chunks; worker processes leave it ``None`` and get a chunk-local one
    (seeded with the workload's initial item set for MV version completion,
    and with a snapshot of ``task.shared_cache`` when one is attached).
    """
    builder = task.builder if task.builder is not None else resolve_program_set(task.spec)
    chunk_local = classifier is None
    records: List[ScheduleRecord] = []
    runner: Optional[ScheduleRunner] = None
    for interleaving in task.schedules:
        # Each schedule needs a fresh database; the builder hands back fresh
        # programs too, which only the first iteration keeps (the reused
        # runner holds them — equivalent by builder determinism).  Program
        # construction is <2% of the loop, so the builder API stays whole.
        database, programs = builder(**task.spec.kwargs())
        if classifier is None:
            classifier = BatchClassifier(initial_items=_initial_items(database))
            if task.shared_cache is not None:
                classifier.preload(_shared_snapshot(task.shared_cache))
        engine = make_engine(database, task.level)
        if runner is None:
            runner = ScheduleRunner(engine, programs, interleaving)
            outcome = runner.run()
        else:
            outcome = runner.replay(engine, interleaving)
        classification = classifier.classify(outcome.history)
        records.append(ScheduleRecord(
            interleaving=tuple(interleaving),
            history=classification.shorthand,
            serializable=classification.serializable,
            phenomena=classification.phenomena,
            committed=classification.committed,
            aborted=classification.aborted,
            blocked_events=outcome.blocked_events,
            deadlocks=len(outcome.deadlocks),
            stalled=outcome.stalled,
        ))
    stats = dict(classifier.stats) if classifier is not None else {}
    if chunk_local and classifier is not None and task.shared_cache is not None:
        fresh = classifier.exports()
        stats["shared_published"] = len(fresh)
        if fresh:
            _publish_shared(task.shared_cache, fresh)
    return ChunkResult(task.chunk_index, tuple(records), stats)
