"""The prefix-sharing trie executor: schedules re-execute only their divergent suffix.

Executing every schedule of a chunk from scratch repeats enormous amounts of
work: interleavings that agree on a prefix drive the engine through *exactly*
the same states for that prefix.  Stateless model checkers (and the DPOR
family the explorer's sleep-set reduction borrows from) win their orders of
magnitude by sharing that work, and the explorer's enumeration order exposes
the same structure here.

:class:`TrieExecutor` walks a batch of interleavings as a depth-first search
over their shared-prefix trie:

* One testbed (database + programs + engine + runner) is built per executor —
  never per schedule.  The state right after ``begin_all`` is the *root
  checkpoint*; "rebuilding the testbed" for the next schedule is one
  ``restore``.
* While applying a schedule's slots, checkpoints are pushed onto a stack every
  ``checkpoint_spacing`` slots.  The next schedule pops the stack down to its
  longest common prefix with the previous schedule and re-executes only the
  slots past the deepest surviving checkpoint, then drains phase 2 as usual.
* ``checkpoint_spacing`` bounds live checkpoints to ``total_slots / spacing``
  (+ the root): larger spacing trades re-executed slots for memory.

Determinism contract: a trie-executed schedule produces a byte-identical
:class:`~repro.engine.outcomes.ExecutionOutcome` (history, statuses, abort
reasons, blocked counts, deadlocks, stall flag) to a from-scratch run of the
same schedule, for every engine level — ``tests/explorer/test_trie_executor.py``
gates this.  Execution *order* within a batch is therefore free: sorting a
batch lexicographically before walking it maximizes shared prefixes without
changing any result, which is how :func:`repro.explorer.worker.execute_chunk`
uses it.
"""

from __future__ import annotations

import os
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from ..core.isolation import IsolationLevelName
from ..engine.outcomes import ExecutionOutcome
from ..engine.programs import TransactionProgram
from ..engine.scheduler import RunnerCheckpoint, ScheduleRunner
from ..storage.database import Database
from ..testbed import make_engine
from .batch_kernel import BatchStats, build_batch_kernel
from .schedules import Interleaving

__all__ = ["TrieExecutor", "TrieStats"]

_BATCH_KERNEL_MODES = ("auto", "on", "off")


class TrieStats:
    """Cumulative work counters of one executor (for benchmarks and reports)."""

    __slots__ = ("schedules", "slots_total", "slots_executed",
                 "checkpoints_created", "restores")

    def __init__(self) -> None:
        self.schedules = 0
        #: Slots the schedules contained vs. slots actually re-executed; the
        #: gap is the work the shared-prefix trie saved.
        self.slots_total = 0
        self.slots_executed = 0
        self.checkpoints_created = 0
        self.restores = 0

    @property
    def replayed_ratio(self) -> float:
        """Fraction of slots actually executed (1.0 = no sharing)."""
        if not self.slots_total:
            return 1.0
        return self.slots_executed / self.slots_total

    def as_dict(self) -> Dict[str, int]:
        return {
            "schedules": self.schedules,
            "slots_total": self.slots_total,
            "slots_executed": self.slots_executed,
            "checkpoints_created": self.checkpoints_created,
            "restores": self.restores,
        }


class TrieExecutor:
    """Executes interleavings of one program set with shared-prefix checkpoints.

    Parameters
    ----------
    database, programs:
        A fresh testbed (the executor owns both from here on — callers must
        not mutate the database afterwards).
    level:
        The isolation level whose engine executes the schedules.
    checkpoint_spacing:
        Push a checkpoint every this-many slots (default 1: every slot).
        Larger values bound checkpoint memory at the cost of re-executing up
        to ``spacing - 1`` extra slots per schedule.
    compiled:
        Drive the runner through the compiled slot-program step kernel
        (default: on, unless ``EXPLORER_COMPILED_KERNEL=0`` — see README
        "Performance knobs").  The kernel is byte-equal to stepwise execution
        for every engine level, so this only changes speed, never results.
    batch_kernel:
        Route :meth:`run_batch` through the vectorized flat-array batch-drain
        kernel (:mod:`repro.explorer.batch_kernel`) when one can be built for
        this (level, program set).  ``"auto"`` (the default, or via
        ``EXPLORER_BATCH_KERNEL``) silently falls back to the stepwise trie
        walk when numpy is missing or the workload is unsupported; ``"on"``
        raises instead; ``"off"`` never builds the kernel.  Byte-equal to the
        stepwise path by construction — contended or unsupported rows are
        ejected back to :meth:`run_one`, the source of truth.
    """

    def __init__(self, database: Database, programs: Sequence[TransactionProgram],
                 level: IsolationLevelName, checkpoint_spacing: int = 1,
                 compiled: Optional[bool] = None,
                 batch_kernel: Optional[str] = None,
                 **engine_options):
        if checkpoint_spacing < 1:
            raise ValueError("checkpoint_spacing must be >= 1")
        if compiled is None:
            compiled = os.environ.get("EXPLORER_COMPILED_KERNEL", "1") != "0"
        if batch_kernel is None:
            batch_kernel = os.environ.get("EXPLORER_BATCH_KERNEL", "auto")
        if batch_kernel not in _BATCH_KERNEL_MODES:
            raise ValueError(f"batch_kernel must be one of {_BATCH_KERNEL_MODES},"
                             f" got {batch_kernel!r}")
        self.level = level
        self.spacing = checkpoint_spacing
        self.compiled = bool(compiled)
        self.batch_kernel = batch_kernel
        self.stats = TrieStats()
        self._engine = make_engine(database, level, **engine_options)
        if not self._engine.supports_checkpoints:
            raise ValueError(
                f"engine for {level.value!r} does not support checkpoints")
        self._runner = ScheduleRunner(self._engine, programs, collect_traces=False,
                                      compiled=self.compiled)
        self._runner.begin_all()
        #: (depth, checkpoint) pairs; the root (depth 0, post-begin) never pops.
        self._stack: List[Tuple[int, RunnerCheckpoint]] = [
            (0, self._runner.checkpoint())
        ]
        self.stats.checkpoints_created += 1
        self._previous: Optional[Interleaving] = None
        # Built after the root checkpoint: begin_all never touches item
        # values, so the kernel still captures the pristine seed database.
        self._batch = None
        if batch_kernel != "off":
            self._batch = build_batch_kernel(
                database, programs, level, self._engine.name,
                engine_options=engine_options or None, fallback=self.run_one)
            if self._batch is None and batch_kernel == "on":
                raise ValueError(
                    f"batch_kernel='on' but no batch kernel is available for "
                    f"{level.value!r} (numpy missing, engine options set, or "
                    f"non-item steps in the programs)")

    @property
    def batch_stats(self) -> BatchStats:
        """Fast-path counters of the batch-drain kernel (zeros when unused)."""
        return self._batch.stats if self._batch is not None else BatchStats()

    # -- execution -------------------------------------------------------------------

    @staticmethod
    def _common_prefix(first: Interleaving, second: Interleaving) -> int:
        limit = min(len(first), len(second))
        shared = 0
        while shared < limit and first[shared] == second[shared]:
            shared += 1
        return shared

    def run_one(self, interleaving: Interleaving,
                next_schedule: Optional[Interleaving] = None) -> ExecutionOutcome:
        """Execute one schedule, reusing the deepest checkpoint it shares.

        The outcome is byte-identical to a from-scratch run of the same
        schedule; consecutive calls share whatever prefix consecutive
        schedules share, so callers should feed schedules in an order that
        groups shared prefixes (sorted / enumeration order).

        When the caller knows the schedule that will execute next (the batch
        walk does), passing it as ``next_schedule`` places exactly *one*
        checkpoint — at the branch point the next schedule will restore to —
        instead of one per ``checkpoint_spacing`` slots.  In DFS order every
        shallower restore target is already on the stack, so one is all it
        takes, and checkpoint cost drops from O(slots) to O(1) per schedule.
        """
        runner = self._runner
        previous = self._previous
        shared = 0
        if previous is not None:
            shared = self._common_prefix(previous, interleaving)
        stack = self._stack
        while stack[-1][0] > shared:
            stack.pop()
        depth, token = stack[-1]
        runner.restore(token)
        self.stats.restores += 1

        total = len(interleaving)
        if next_schedule is not None:
            prepare = self._common_prefix(interleaving, next_schedule)
            if self.spacing > 1:
                # Snap the branch-point checkpoint down to the spacing grid:
                # live checkpoints stay bounded by total/spacing (+ root) at
                # the cost of re-executing at most spacing-1 extra slots.
                prepare -= prepare % self.spacing
            # With lookahead, exactly one checkpoint is placed — at the branch
            # point the next schedule restores to — so the suffix splits into
            # (at most) two bulk slot runs around it.
            if depth < prepare < total:
                runner.apply_many(interleaving[depth:prepare])
                stack.append((prepare, runner.checkpoint()))
                self.stats.checkpoints_created += 1
                runner.apply_many(interleaving[prepare:total])
            else:
                runner.apply_many(interleaving[depth:total])
        else:
            for position in range(depth, total):
                runner.apply_slot(interleaving[position])
                applied = position + 1
                if applied < total and applied % self.spacing == 0:
                    stack.append((applied, runner.checkpoint()))
                    self.stats.checkpoints_created += 1

        self.stats.schedules += 1
        self.stats.slots_total += total
        self.stats.slots_executed += total - depth
        self._previous = interleaving
        # drain() mutates past the deepest checkpoint, which is fine: the next
        # schedule restores to a depth <= its shared prefix anyway.
        return runner.drain()

    def run_batch(self, schedules: Sequence[Interleaving],
                  sort: bool = True) -> Iterator[Tuple[int, ExecutionOutcome]]:
        """Execute a batch, yielding ``(original_index, outcome)`` pairs.

        With ``sort=True`` (the default) the batch is walked in lexicographic
        order — the DFS order of its shared-prefix trie — which maximizes
        checkpoint reuse; outcomes are tagged with their original position so
        callers can reassemble input order.  Sorting never changes any
        individual outcome (see the determinism contract above).  The walk
        uses one-schedule lookahead, so each execution places only the single
        checkpoint its successor will restore to.

        When the batch-drain kernel is active (``batch_kernel`` above), the
        whole batch routes through its flat-array emulator instead; rows it
        cannot handle are ejected back to :meth:`run_one`.  Outcomes are
        byte-identical either way.
        """
        if self._batch is not None:
            yield from self._batch.run_batch(schedules, sort=sort)
            return
        if sort:
            order = sorted(range(len(schedules)), key=schedules.__getitem__)
        else:
            order = list(range(len(schedules)))
        for position, index in enumerate(order):
            following = (schedules[order[position + 1]]
                         if position + 1 < len(order) else None)
            yield index, self.run_one(schedules[index], next_schedule=following)
