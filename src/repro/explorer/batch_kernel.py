"""The vectorized batch-drain kernel: flat-array schedule execution.

The trie executor replays schedules through full engine objects — lock lists,
undo logs, OpResult values, deep checkpoint tokens.  For the program shapes
the explorer actually enumerates (item reads/writes + commit/abort, compiled
to :func:`repro.engine.programs.emit_batch_tables` int tables), every engine
rule the runner can observe is a small arithmetic fact over per-item holder
bitmasks and counters.  This module executes whole batches against that flat
representation:

* Schedules are packed into one flat numpy int array, lexsorted, and their
  consecutive common prefixes computed in a single vectorized pass — the
  numpy stage of the kernel.  numpy is optional (the ``repro[fast]`` extra):
  without it :func:`build_batch_kernel` returns None and callers stay on the
  stepwise trie executor.
* Each schedule then advances through a per-level flat emulator
  (:class:`_LockingFlat`, :class:`_ReadConsistencyFlat`) or a static
  per-transaction stream fold (:class:`_SnapshotKernel`), reusing the deepest
  shared checkpoint exactly like the trie executor's DFS.
* Rows the tables cannot express (``OP_GENERIC`` steps, custom engine
  options) never reach the kernel — :func:`build_batch_kernel` refuses to
  build and the caller keeps the stepwise path; a per-row escape hatch
  (``fallback``) ejects any row an emulator declines at runtime.

Determinism contract: kernel outcomes are value-identical to the stepwise
runner's — history, statuses, contexts, abort reasons, blocked counts,
deadlocks, stall flag, and the shared database's items at yield time —
for every supported engine level.  ``tests/explorer/test_batch_kernel.py``
gates this against randomized schedule sweeps, including stalled and
deadlock-aborted prefixes.
"""

from __future__ import annotations

from typing import (
    Any,
    Callable,
    Dict,
    Iterator,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

from ..core.history import History
from ..core.isolation import IsolationLevelName
from ..core.operations import Operation, OperationKind
from ..engine.interface import (
    OP_ABORT,
    OP_COMMIT,
    OP_READ,
    OP_WRITE,
    TransactionState,
)
from ..engine.outcomes import ExecutionOutcome
from ..engine.programs import (
    BatchTableSet,
    CompiledProgramSet,
    TransactionProgram,
    compile_programs,
    emit_batch_tables,
)
from ..locking.deadlock import WaitsForGraph
from ..locking.modes import LockDuration, LockMode
from ..locking.policy import POLICIES, policy_for
from ..storage.database import Database

__all__ = ["BatchStats", "build_batch_kernel", "numpy_available"]

#: Sentinel for "item absent from the database" — mirrors the undo log's
#: missing-item marker so before-image rollback can delete created items.
_ABSENT = object()

#: Lazily imported numpy module (None = not probed yet, False = unavailable).
_NUMPY: Any = None


def _numpy() -> Any:
    """The numpy module, or None when the optional dependency is missing.

    Import is deferred to first use so that ``import repro`` (and every core
    module) never pays for — or requires — the optional ``repro[fast]``
    extra; repolint's ``no-eager-numpy`` check enforces the discipline.
    """
    global _NUMPY
    if _NUMPY is None:
        try:
            import numpy
            _NUMPY = numpy
        except ImportError:
            _NUMPY = False
    return _NUMPY or None


def numpy_available() -> bool:
    """True when the optional numpy dependency can be imported."""
    return _numpy() is not None


class BatchStats:
    """Cumulative work counters of one batch kernel (benchmarks / reports)."""

    __slots__ = ("schedules", "rows_fast", "rows_ejected", "slots_total",
                 "slots_executed", "checkpoints_created", "restores")

    def __init__(self) -> None:
        self.schedules = 0
        #: Rows fully executed on the flat kernel vs. ejected to the
        #: stepwise fallback.
        self.rows_fast = 0
        self.rows_ejected = 0
        self.slots_total = 0
        self.slots_executed = 0
        self.checkpoints_created = 0
        self.restores = 0

    @property
    def occupancy(self) -> float:
        """Fraction of rows that stayed on the flat fast path."""
        if not self.schedules:
            return 1.0
        return self.rows_fast / self.schedules

    def as_dict(self) -> Dict[str, Any]:
        return {
            "schedules": self.schedules,
            "rows_fast": self.rows_fast,
            "rows_ejected": self.rows_ejected,
            "slots_total": self.slots_total,
            "slots_executed": self.slots_executed,
            "checkpoints_created": self.checkpoints_created,
            "restores": self.restores,
            "occupancy": self.occupancy,
        }


def _sorted_order_and_lcps(schedules: Sequence[Sequence[int]],
                           sort: bool) -> Tuple[List[int], List[int]]:
    """DFS order of a batch plus each row's common prefix with its predecessor.

    Uniform-length batches take the vectorized path: one flat ``(R, S)`` int
    array, ``lexsort`` for the ordering, and a single elementwise-compare /
    argmax pass for every consecutive LCP.  Ragged batches (mixed prefix
    lengths) fall back to python sorting with pairwise scans.
    """
    count = len(schedules)
    if count == 0:
        return [], []
    np = _numpy()
    lengths = {len(schedule) for schedule in schedules}
    if np is not None and len(lengths) == 1 and lengths != {0}:
        width = lengths.pop()
        arr = np.asarray([tuple(schedule) for schedule in schedules],
                         dtype=np.int64).reshape(count, width)
        if sort:
            # lexsort keys run least-significant first: reverse the columns.
            order_arr = np.lexsort(arr.T[::-1])
        else:
            order_arr = np.arange(count)
        ranked = arr[order_arr]
        lcps = [0]
        if count > 1:
            neq = ranked[1:] != ranked[:-1]
            any_diff = neq.any(axis=1)
            first_diff = neq.argmax(axis=1)
            shared = np.where(any_diff, first_diff, width)
            lcps.extend(int(value) for value in shared)
        return [int(index) for index in order_arr], lcps
    if sort:
        order = sorted(range(count), key=lambda index: tuple(schedules[index]))
    else:
        order = list(range(count))
    lcps = [0]
    previous = schedules[order[0]]
    for index in order[1:]:
        current = schedules[index]
        limit = min(len(previous), len(current))
        shared = 0
        while shared < limit and previous[shared] == current[shared]:
            shared += 1
        lcps.append(shared)
        previous = current
    return order, lcps


def _intern_step_op(cache: Dict[Any, Operation], kind: OperationKind,
                    txn: int, item: str, value: Any,
                    version: Optional[int]) -> Operation:
    """Per-step operation interning — same policy as the compiled runner."""
    key = (value, version)
    try:
        operation = cache.get(key)
    except TypeError:  # unhashable recorded value
        return Operation(kind, txn, item=item, value=value, version=version)
    if operation is None:
        operation = Operation(kind, txn, item=item, value=value, version=version)
        if len(cache) < 4096:
            cache[key] = operation
    return operation


class _FlatPrograms:
    """The per-transaction step tables every flat emulator dispatches on."""

    __slots__ = ("txns", "tindex", "opcodes", "items", "into", "values",
                 "calls", "kinds", "totals", "commit_ops", "abort_ops",
                 "op_caches", "item_names", "max_attempts", "order", "steps")

    def __init__(self, compiled: CompiledProgramSet, tables: BatchTableSet):
        by_txn = {program.txn: program for program in compiled.programs}
        self.txns: List[int] = [program.txn for program in tables.programs]
        self.order = list(range(len(self.txns)))
        self.tindex: Dict[int, int] = {txn: ti for ti, txn in enumerate(self.txns)}
        self.item_names: Tuple[str, ...] = tables.item_names
        self.opcodes: List[Tuple[int, ...]] = []
        self.items: List[Tuple[int, ...]] = []
        self.into: List[Tuple[Optional[str], ...]] = []
        self.values: List[Tuple[Any, ...]] = []
        self.calls: List[Tuple[bool, ...]] = []
        self.kinds: List[Tuple[OperationKind, ...]] = []
        self.totals: List[int] = []
        self.commit_ops: List[Operation] = []
        self.abort_ops: List[Operation] = []
        #: Shared with the compiled runner's step tables (cstep[8]), so both
        #: kernels realize the same interned Operation instances.
        self.op_caches: List[Tuple[Dict[Any, Operation], ...]] = []
        #: One tuple per step — (opcode, item, value, call, into, kind,
        #: op_cache) — so the emulator hot loop does a single subscript +
        #: unpack per attempt instead of seven double-index lookups.
        self.steps: List[Tuple[Tuple[Any, ...], ...]] = []
        for program in tables.programs:
            csteps = by_txn[program.txn].steps
            self.opcodes.append(program.opcodes)
            self.items.append(program.item_ids)
            self.into.append(tuple(cstep[4] for cstep in csteps))
            self.values.append(tuple(cstep[2] for cstep in csteps))
            self.calls.append(tuple(cstep[3] for cstep in csteps))
            self.kinds.append(tuple(cstep[5] for cstep in csteps))
            self.op_caches.append(tuple(cstep[8] for cstep in csteps))
            self.steps.append(tuple(
                (opcode, item, cstep[2], cstep[3], cstep[4], cstep[5], cstep[8])
                for opcode, item, cstep
                in zip(program.opcodes, program.item_ids, csteps)))
            self.totals.append(len(program.opcodes))
            self.commit_ops.append(Operation(OperationKind.COMMIT, program.txn))
            self.abort_ops.append(Operation(OperationKind.ABORT, program.txn))
        self.max_attempts = sum(self.totals) * 20 + 100


#: Engine lifecycle codes of the flat emulators (index into _STATES).
_ACTIVE, _COMMITTED, _ABORTED = 0, 1, 2
_STATES = (TransactionState.ACTIVE, TransactionState.COMMITTED,
           TransactionState.ABORTED)


class _LockingFlat:
    """Flat emulator of LockingEngine + ScheduleRunner for item-only programs.

    Per-item Share/Exclusive holder bitmasks and version counters reproduce
    the lock manager's arithmetic exactly (transient short locks net to zero,
    own-lock upgrades bump, release-all bumps per held item); a
    first-before-image map reproduces reverse undo (the final restored value
    of an item is its oldest before-image); the waits-for graph, blocked-memo
    parking, deadlock resolution, and attempt budget mirror the runner line
    for line.  Cursor Stability's CURSOR read duration behaves as LONG here:
    item-only programs never move or close a cursor, and release-all drops
    every duration alike.
    """

    #: Immutable configuration plus the blockers interning memo (keyed by
    #: holder bitmask, value-determined), deliberately outside the token.
    _checkpoint_stable = ("flat", "_read_locked", "_read_transient",
                          "_write_transient", "_seed", "_blockers_cache")

    def __init__(self, flat: _FlatPrograms, level: IsolationLevelName,
                 seed: List[Any]):
        self.flat = flat
        policy = policy_for(level)
        exclusive = LockMode.EXCLUSIVE
        short = LockDuration.SHORT
        read_rule = policy.item_read
        #: (has_rule, transient) per action kind; reads are always Share,
        #: writes always Exclusive in Table 2.
        self._read_locked = read_rule is not None
        self._read_transient = (read_rule is not None
                                and read_rule.duration is short)
        write_rule = policy.write
        self._write_transient = write_rule.duration is short
        assert write_rule.mode is exclusive
        self._seed = seed
        item_count = len(flat.item_names)
        txn_count = len(flat.txns)
        self.db: List[Any] = list(seed)
        self.s_mask: List[int] = [0] * item_count
        self.x_mask: List[int] = [0] * item_count
        self.iver: List[int] = [0] * item_count
        self.fb: List[Dict[int, Any]] = [{} for _ in range(txn_count)]
        self.held: List[Set[int]] = [set() for _ in range(txn_count)]
        self.est: List[int] = [_ACTIVE] * txn_count
        self.counter: List[int] = [0] * txn_count
        self.finished: List[bool] = [False] * txn_count
        self.ctx: List[Dict[str, Any]] = [{} for _ in range(txn_count)]
        self.parked: List[Optional[Tuple[int, int, Any, int]]] = [None] * txn_count
        self.waits = WaitsForGraph()
        self.ops: List[Operation] = []
        self.deadlocks: List[Any] = []
        self.abort_reasons: Dict[int, str] = {}
        self.terminal: Set[int] = set()
        self.blocked_events = 0
        self.attempts = 0
        self.stalled = False
        self.maybe_cyclic = False
        #: Superset bitmask of transactions possibly waiting in the waits-for
        #: graph (a finished blocker can silently drop a waiter's last edge,
        #: so bits can be stale-set, never stale-clear).  It gates the
        #: clear-waits call on every successful attempt — a redundant clear is
        #: skipped, a needed one never is.
        self.wmask = 0
        #: Interned blockers frozensets keyed by holder bitmask.
        self._blockers_cache: Dict[int, Any] = {}

    def _blockers(self, mask: int) -> Any:
        cached = self._blockers_cache.get(mask)
        if cached is None:
            txns = self.flat.txns
            cached = frozenset(txns[ti] for ti in range(len(txns))
                               if mask >> ti & 1)
            self._blockers_cache[mask] = cached
        return cached

    def _release_all(self, ti: int) -> None:
        bit = 1 << ti
        iver = self.iver
        for k in self.held[ti]:
            self.s_mask[k] &= ~bit
            self.x_mask[k] &= ~bit
            iver[k] += 1
        self.held[ti].clear()

    def _abort_engine(self, ti: int) -> None:
        """engine.abort on an active transaction: undo, release, mark."""
        db = self.db
        for k, before in self.fb[ti].items():
            db[k] = before
        self.fb[ti].clear()
        self._release_all(ti)
        self.est[ti] = _ABORTED

    def _resolve_deadlock(self) -> bool:
        deadlock = self.waits.detect()
        if deadlock is None:
            self.maybe_cyclic = False
            return False
        self.maybe_cyclic = True
        self.deadlocks.append(deadlock)
        victim = deadlock.victim
        vi = self.flat.tindex.get(victim)
        if vi is not None and self.est[vi] == _ACTIVE:
            self._abort_engine(vi)
        self.abort_reasons[victim] = "deadlock victim"
        if victim not in self.terminal:
            if vi is not None:
                self.ops.append(self.flat.abort_ops[vi])
            else:  # pragma: no cover - victims always come from the programs
                self.ops.append(Operation(OperationKind.ABORT, victim))
            self.terminal.add(victim)
        if vi is not None:
            self.finished[vi] = True
            self.wmask &= ~(1 << vi)
        self.waits.remove_transaction(victim)
        return True

    def _attempt(self, ti: int) -> int:
        if self.finished[ti]:
            return 0
        flat = self.flat
        j = self.counter[ti]
        total = flat.totals[ti]
        if j >= total:
            return 0
        opcode, k, value, call, into, kind, cache = flat.steps[ti][j]
        txn = flat.txns[ti]
        bit = 1 << ti
        s_mask = self.s_mask
        x_mask = self.x_mask
        iver = self.iver
        # Blocked-result memo fast path — same rule as the runner's attempt.
        memo = self.parked[ti]
        blocked_mask = -1
        replayed = False
        if memo is not None and memo[0] == j and iver[memo[3]] == memo[1]:
            blockers = memo[2]
            replayed = True
        elif opcode == OP_READ:
            if self._read_locked:
                blocked_mask = x_mask[k] & ~bit
                if not blocked_mask:
                    if self._read_transient:
                        # grant_transient_item: net zero unless a lock is
                        # already held (then the grant bumps the item).
                        if (s_mask[k] | x_mask[k]) & bit:
                            iver[k] += 1
                    else:
                        iver[k] += 1
                        if not (s_mask[k] | x_mask[k]) & bit:
                            s_mask[k] |= bit
                            self.held[ti].add(k)
            else:
                blocked_mask = 0
            if not blocked_mask:
                value = self.db[k]
                if value is _ABSENT:
                    value = None
                self.ctx[ti][into] = value
        elif opcode == OP_WRITE:
            # The runner computes the (possibly callable) value before the
            # engine call, even for attempts that come back blocked.
            if call:
                value = value(self.ctx[ti])
            blocked_mask = (s_mask[k] | x_mask[k]) & ~bit
            if not blocked_mask:
                own = (s_mask[k] | x_mask[k]) & bit
                if self._write_transient:
                    if own:
                        iver[k] += 1
                        if s_mask[k] & bit:
                            s_mask[k] &= ~bit
                            x_mask[k] |= bit
                else:
                    iver[k] += 1
                    if own:
                        if s_mask[k] & bit:
                            s_mask[k] &= ~bit
                            x_mask[k] |= bit
                    else:
                        x_mask[k] |= bit
                        self.held[ti].add(k)
                fb = self.fb[ti]
                if k not in fb:
                    fb[k] = self.db[k]
                self.db[k] = value
        elif opcode == OP_COMMIT:
            self.fb[ti].clear()
            self._release_all(ti)
            self.est[ti] = _COMMITTED
        else:  # OP_ABORT (program abort)
            if self.est[ti] == _ACTIVE:
                self._abort_engine(ti)

        if blocked_mask > 0 or replayed:
            if not replayed:
                blockers = self._blockers(blocked_mask)
                self.parked[ti] = (j, iver[k], blockers, k)
                # Replays skip this: every blocker holds a lock on the item,
                # so a blocker leaving bumps ``iver[k]`` and invalidates the
                # memo — an unchanged memo means the edge is already exact.
                self.waits.set_waits(txn, blockers)
            self.blocked_events += 1
            self.wmask |= bit
            if self.maybe_cyclic or self.waits.any_waiting(blockers):
                self._resolve_deadlock()
            return 1

        if self.wmask & bit:
            self.waits.clear_waits(txn)
            self.wmask &= ~bit
        # No engine call in kernel scope ever returns ABORTED (commit always
        # succeeds under locking; aborts happen through deadlock resolution).
        if opcode == OP_READ or opcode == OP_WRITE:
            key = (value, None)
            try:
                operation = cache.get(key)
            except TypeError:  # unhashable recorded value
                operation = Operation(kind, txn, item=flat.item_names[k],
                                      value=value, version=None)
            else:
                if operation is None:
                    operation = Operation(kind, txn, item=flat.item_names[k],
                                          value=value, version=None)
                    if len(cache) < 4096:
                        cache[key] = operation
            self.ops.append(operation)
        elif opcode == OP_COMMIT:
            self.ops.append(flat.commit_ops[ti])
            self.terminal.add(txn)
        else:
            self.ops.append(flat.abort_ops[ti])
            self.terminal.add(txn)
        j += 1
        self.counter[ti] = j
        if opcode == OP_COMMIT or opcode == OP_ABORT or j >= total:
            self.finished[ti] = True
            self.waits.remove_transaction(txn)
            self.wmask &= ~bit
            if opcode == OP_ABORT:
                self.abort_reasons.setdefault(txn, "program abort")
        return 1

    # -- the runner's slot / drain protocol --------------------------------------

    def apply_slots(self, slots: Sequence[int]) -> None:
        tindex = self.flat.tindex
        attempt = self._attempt
        attempts = self.attempts
        limit = self.flat.max_attempts
        for txn in slots:
            if attempts >= limit:
                break
            ti = tindex.get(txn)
            if ti is not None:
                attempts += attempt(ti)
        self.attempts = attempts

    def drain(self) -> None:
        flat = self.flat
        counter = self.counter
        finished = self.finished
        totals = flat.totals
        iver = self.iver
        limit = flat.max_attempts
        order = flat.order
        txns = flat.txns
        parked = self.parked
        attempt = self._attempt
        is_waiting = self.waits.is_waiting
        while self.attempts < limit:
            active = [ti for ti in order
                      if not finished[ti] and counter[ti] < totals[ti]]
            if not active:
                break
            progressed = False
            for ti in active:
                if self.attempts >= limit:
                    break
                memo = parked[ti]
                if (memo is not None and memo[0] == counter[ti]
                        and memo[1] == iver[memo[3]]):
                    continue
                made = attempt(ti)
                self.attempts += made
                if made and not is_waiting(txns[ti]):
                    progressed = True
            if not progressed:
                if not self._resolve_deadlock():
                    self.stalled = True
                    break

    # -- checkpoint / restore (trie discipline: backwards along one path) ---------

    def checkpoint(self) -> Tuple:
        return (
            list(self.db), list(self.s_mask), list(self.x_mask),
            list(self.iver),
            [dict(fb) for fb in self.fb], [set(held) for held in self.held],
            list(self.est), list(self.counter), list(self.finished),
            [dict(ctx) for ctx in self.ctx], list(self.parked),
            self.waits.checkpoint(), len(self.ops), len(self.deadlocks),
            self.blocked_events, dict(self.abort_reasons), self.attempts,
            self.stalled, self.maybe_cyclic, set(self.terminal), self.wmask,
        )

    def restore(self, token: Tuple) -> None:
        (db, s_mask, x_mask, iver, fb, held, est, counter, finished, ctx,
         parked, waits, ops_len, deadlocks_len, blocked_events, abort_reasons,
         attempts, stalled, maybe_cyclic, terminal, wmask) = token
        self.db = list(db)
        self.s_mask = list(s_mask)
        self.x_mask = list(x_mask)
        self.iver = list(iver)
        self.fb = [dict(entry) for entry in fb]
        self.held = [set(entry) for entry in held]
        self.est = list(est)
        self.counter = list(counter)
        self.finished = list(finished)
        self.ctx = [dict(entry) for entry in ctx]
        self.parked = list(parked)
        self.waits.restore(waits)
        del self.ops[ops_len:]
        del self.deadlocks[deadlocks_len:]
        self.blocked_events = blocked_events
        self.abort_reasons = dict(abort_reasons)
        self.attempts = attempts
        self.stalled = stalled
        self.maybe_cyclic = maybe_cyclic
        self.terminal = set(terminal)
        self.wmask = wmask

    # -- outcome ------------------------------------------------------------------

    def sync_database(self, database: Database) -> None:
        db = self.db
        for k, name in enumerate(self.flat.item_names):
            value = db[k]
            if value is _ABSENT:
                database.delete_item(name)
            else:
                database.set_item(name, value)

    def build_outcome(self, engine_name: str, database: Database) -> ExecutionOutcome:
        self.sync_database(database)
        flat = self.flat
        return ExecutionOutcome(
            engine_name=engine_name,
            history=History(self.ops, validate=False),
            statuses={flat.txns[ti]: _STATES[self.est[ti]] for ti in flat.order},
            contexts={flat.txns[ti]: dict(self.ctx[ti]) for ti in flat.order},
            database=database,
            abort_reasons=dict(self.abort_reasons),
            blocked_events=self.blocked_events,
            deadlocks=list(self.deadlocks),
            traces=[],
            stalled=self.stalled,
        )


class _ReadConsistencyFlat(_LockingFlat):
    """Flat emulator of ReadConsistencyEngine: versioned reads, X write locks.

    Reads never block and report the newest committed chain version (every
    commit timestamp is <= the statement's clock reading, so the tip is
    always visible: value = tip, version = chain length - 1).  Writes take
    long Exclusive item locks through the same bitmask arithmetic as the
    locking emulator and buffer until commit, which installs the buffer in
    insertion order (chain += 1, tip = value, database tip synced).
    """

    #: Immutable configuration plus the blockers interning memo; `s_mask`
    #: stays all-zero here (reads never lock), so it never needs restoring.
    _checkpoint_stable = ("flat", "_seed", "s_mask", "_blockers_cache")

    def __init__(self, flat: _FlatPrograms, seed: List[Any]):
        item_count = len(flat.item_names)
        txn_count = len(flat.txns)
        self.flat = flat
        self._seed = seed
        self.chain_len: List[int] = [0 if value is _ABSENT else 1
                                     for value in seed]
        self.tip: List[Any] = [None if value is _ABSENT else value
                               for value in seed]
        self.s_mask: List[int] = [0] * item_count  # unused; _release_all shape
        self.x_mask: List[int] = [0] * item_count
        self.iver: List[int] = [0] * item_count
        self.buf: List[Dict[int, Any]] = [{} for _ in range(txn_count)]
        self.held: List[Set[int]] = [set() for _ in range(txn_count)]
        self.est: List[int] = [_ACTIVE] * txn_count
        self.counter: List[int] = [0] * txn_count
        self.finished: List[bool] = [False] * txn_count
        self.ctx: List[Dict[str, Any]] = [{} for _ in range(txn_count)]
        self.parked: List[Optional[Tuple[int, int, Any, int]]] = [None] * txn_count
        self.waits = WaitsForGraph()
        self.ops: List[Operation] = []
        self.deadlocks: List[Any] = []
        self.abort_reasons: Dict[int, str] = {}
        self.terminal: Set[int] = set()
        self.blocked_events = 0
        self.attempts = 0
        self.stalled = False
        self.maybe_cyclic = False
        self.wmask = 0
        self._blockers_cache = {}

    def _abort_engine(self, ti: int) -> None:
        # Writes were buffered: abort discards the buffer, no undo needed.
        self.buf[ti].clear()
        self._release_all(ti)
        self.est[ti] = _ABORTED

    def _attempt(self, ti: int) -> int:
        if self.finished[ti]:
            return 0
        flat = self.flat
        j = self.counter[ti]
        total = flat.totals[ti]
        if j >= total:
            return 0
        opcode, k, value, call, into, kind, cache = flat.steps[ti][j]
        txn = flat.txns[ti]
        bit = 1 << ti
        memo = self.parked[ti]
        blocked_mask = -1
        replayed = False
        version: Optional[int] = None
        if memo is not None and memo[0] == j and self.iver[memo[3]] == memo[1]:
            blockers = memo[2]
            replayed = True
        elif opcode == OP_READ:
            buf = self.buf[ti]
            if k in buf:
                value = buf[k]
            elif self.chain_len[k]:
                value = self.tip[k]
                version = self.chain_len[k] - 1
            else:
                value = None
            self.ctx[ti][into] = value
            blocked_mask = 0
        elif opcode == OP_WRITE:
            if call:
                value = value(self.ctx[ti])
            x_mask = self.x_mask
            blocked_mask = x_mask[k] & ~bit
            if not blocked_mask:
                self.iver[k] += 1
                if not x_mask[k] & bit:
                    x_mask[k] |= bit
                    self.held[ti].add(k)
                self.buf[ti][k] = value
        elif opcode == OP_COMMIT:
            for k, buffered in self.buf[ti].items():
                self.chain_len[k] += 1
                self.tip[k] = buffered
            self.buf[ti].clear()
            self._release_all(ti)
            self.est[ti] = _COMMITTED
        else:  # OP_ABORT (program abort)
            if self.est[ti] == _ACTIVE:
                self._abort_engine(ti)

        if blocked_mask > 0 or replayed:
            if not replayed:
                blockers = self._blockers(blocked_mask)
                self.parked[ti] = (j, self.iver[k], blockers, k)
            self.blocked_events += 1
            self.waits.set_waits(txn, blockers)
            self.wmask |= bit
            if self.maybe_cyclic or self.waits.any_waiting(blockers):
                self._resolve_deadlock()
            return 1

        if self.wmask & bit:
            self.waits.clear_waits(txn)
            self.wmask &= ~bit
        if opcode == OP_READ or opcode == OP_WRITE:
            # `version` is None unless the READ branch set it; WRITE records
            # version=None, same as the stepwise engine.
            key = (value, version)
            try:
                operation = cache.get(key)
            except TypeError:  # unhashable recorded value
                operation = Operation(kind, txn, item=flat.item_names[k],
                                      value=value, version=version)
            else:
                if operation is None:
                    operation = Operation(kind, txn, item=flat.item_names[k],
                                          value=value, version=version)
                    if len(cache) < 4096:
                        cache[key] = operation
            self.ops.append(operation)
        elif opcode == OP_COMMIT:
            self.ops.append(flat.commit_ops[ti])
            self.terminal.add(txn)
        else:
            self.ops.append(flat.abort_ops[ti])
            self.terminal.add(txn)
        j += 1
        self.counter[ti] = j
        if opcode == OP_COMMIT or opcode == OP_ABORT or j >= total:
            self.finished[ti] = True
            self.waits.remove_transaction(txn)
            self.wmask &= ~bit
            if opcode == OP_ABORT:
                self.abort_reasons.setdefault(txn, "program abort")
        return 1

    def checkpoint(self) -> Tuple:
        return (
            list(self.chain_len), list(self.tip), list(self.x_mask),
            list(self.iver),
            [dict(buf) for buf in self.buf], [set(held) for held in self.held],
            list(self.est), list(self.counter), list(self.finished),
            [dict(ctx) for ctx in self.ctx], list(self.parked),
            self.waits.checkpoint(), len(self.ops), len(self.deadlocks),
            self.blocked_events, dict(self.abort_reasons), self.attempts,
            self.stalled, self.maybe_cyclic, set(self.terminal), self.wmask,
        )

    def restore(self, token: Tuple) -> None:
        (chain_len, tip, x_mask, iver, buf, held, est, counter, finished, ctx,
         parked, waits, ops_len, deadlocks_len, blocked_events, abort_reasons,
         attempts, stalled, maybe_cyclic, terminal, wmask) = token
        self.chain_len = list(chain_len)
        self.tip = list(tip)
        self.x_mask = list(x_mask)
        self.iver = list(iver)
        self.buf = [dict(entry) for entry in buf]
        self.held = [set(entry) for entry in held]
        self.est = list(est)
        self.counter = list(counter)
        self.finished = list(finished)
        self.ctx = [dict(entry) for entry in ctx]
        self.parked = list(parked)
        self.waits.restore(waits)
        del self.ops[ops_len:]
        del self.deadlocks[deadlocks_len:]
        self.blocked_events = blocked_events
        self.abort_reasons = dict(abort_reasons)
        self.attempts = attempts
        self.stalled = stalled
        self.maybe_cyclic = maybe_cyclic
        self.terminal = set(terminal)
        self.wmask = wmask

    def sync_database(self, database: Database) -> None:
        chain_len = self.chain_len
        tip = self.tip
        for k, name in enumerate(self.flat.item_names):
            if chain_len[k]:
                database.set_item(name, tip[k])
            else:
                database.delete_item(name)


class _EmulatorKernel:
    """DFS batch driver over one flat emulator, mirroring the trie executor.

    Schedules are lexsorted (numpy), consecutive common prefixes computed in
    one vectorized pass, and each row restores the deepest shared emulator
    checkpoint before applying only its divergent suffix — the same
    one-lookahead branch-point discipline as
    :meth:`repro.explorer.trie_executor.TrieExecutor.run_batch`.
    """

    def __init__(self, emulator: Any, database: Database, engine_name: str,
                 flat: _FlatPrograms,
                 fallback: Optional[Callable[..., ExecutionOutcome]] = None):
        self.stats = BatchStats()
        self.engine_name = engine_name
        self._database = database
        self._flat = flat
        self._known = frozenset(flat.txns)
        self._emulator = emulator
        self.fallback = fallback
        self._stack: List[Tuple[int, Tuple]] = [(0, emulator.checkpoint())]
        self.stats.checkpoints_created += 1
        self._previous: Optional[Sequence[int]] = None

    @staticmethod
    def _common_prefix(first: Sequence[int], second: Sequence[int]) -> int:
        limit = min(len(first), len(second))
        shared = 0
        while shared < limit and first[shared] == second[shared]:
            shared += 1
        return shared

    def run_one(self, schedule: Sequence[int],
                shared: Optional[int] = None,
                prepare: Optional[int] = None) -> ExecutionOutcome:
        """Execute one schedule from the deepest checkpoint it shares.

        ``shared`` is the known common-prefix length with the previously
        executed schedule (computed vectorized by :meth:`run_batch`);
        ``prepare`` the branch point of the schedule that will run next,
        where the single lookahead checkpoint goes.
        """
        if not self._known.issuperset(schedule):
            # Slots referencing transactions outside the compiled tables take
            # the stepwise path (the runner treats them as no-ops; ejecting
            # keeps the kernel's tables closed over the program set).
            if self.fallback is None:
                raise ValueError(
                    "schedule references transactions outside the program set"
                    " and no stepwise fallback is attached")
            self.stats.schedules += 1
            self.stats.rows_ejected += 1
            self.stats.slots_total += len(schedule)
            return self.fallback(schedule)
        emulator = self._emulator
        if shared is None:
            shared = (self._common_prefix(self._previous, schedule)
                      if self._previous is not None else 0)
        stack = self._stack
        while stack[-1][0] > shared:
            stack.pop()
        depth, token = stack[-1]
        emulator.restore(token)
        self.stats.restores += 1
        total = len(schedule)
        if prepare is not None and depth < prepare < total:
            emulator.apply_slots(schedule[depth:prepare])
            stack.append((prepare, emulator.checkpoint()))
            self.stats.checkpoints_created += 1
            emulator.apply_slots(schedule[prepare:total])
        else:
            emulator.apply_slots(schedule[depth:total])
        emulator.drain()
        self.stats.schedules += 1
        self.stats.rows_fast += 1
        self.stats.slots_total += total
        self.stats.slots_executed += total - depth
        self._previous = schedule
        return emulator.build_outcome(self.engine_name, self._database)

    def run_batch(self, schedules: Sequence[Sequence[int]],
                  sort: bool = True) -> Iterator[Tuple[int, ExecutionOutcome]]:
        """Execute a batch, yielding ``(original_index, outcome)`` pairs."""
        order, lcps = _sorted_order_and_lcps(schedules, sort)
        count = len(order)
        for position, index in enumerate(order):
            schedule = schedules[index]
            # The first row of a batch may still share a prefix with the last
            # row of the previous batch (the executor persists across chunks).
            shared = lcps[position] if position else None
            prepare = lcps[position + 1] if position + 1 < count else None
            yield index, self.run_one(schedule, shared, prepare)


class _SnapshotKernel:
    """Batch kernel for Snapshot Isolation: static streams + a commit fold.

    With every transaction beginning before any slot runs, all snapshots read
    timestamp 0: a transaction's reads, writes, contexts, and realized
    operations are a pure function of its own program prefix and the seed
    database — computed once per program set.  What a schedule decides is
    only the interleaving of those per-transaction streams and which commits
    First-Committer-Wins aborts, folded per row over an installed-items
    bitmask in event order.  No blocking, no deadlocks, no checkpoints.
    """

    def __init__(self, flat: _FlatPrograms, seed: List[Any],
                 database: Database, engine_name: str,
                 fallback: Optional[Callable[..., ExecutionOutcome]] = None):
        self.stats = BatchStats()
        self.engine_name = engine_name
        self.fallback = fallback
        self._database = database
        self._flat = flat
        self._seed = seed
        self._known = frozenset(flat.txns)
        txn_count = len(flat.txns)
        #: Per-transaction static stream: realized ops per step (None at the
        #: terminal step — commit vs abort is decided per row), effective
        #: length, terminal kind, final context, write buffer, write bitmask.
        self._pre_ops: List[List[Optional[Operation]]] = []
        self._eff: List[int] = []
        self._terminal: List[int] = []  # 0 none, 1 commit, 2 abort
        self._ctx: List[Dict[str, Any]] = []
        self._buf: List[Dict[int, Any]] = []
        self._wmask: List[int] = []
        for ti in range(txn_count):
            txn = flat.txns[ti]
            ctx: Dict[str, Any] = {}
            buf: Dict[int, Any] = {}
            pre_ops: List[Optional[Operation]] = []
            terminal = 0
            eff = flat.totals[ti]
            for j in range(flat.totals[ti]):
                opcode = flat.opcodes[ti][j]
                if opcode == OP_READ:
                    k = flat.items[ti][j]
                    version: Optional[int] = None
                    if k in buf:
                        value = buf[k]
                    elif seed[k] is not _ABSENT:
                        value = seed[k]
                        version = 0
                    else:
                        value = None
                    pre_ops.append(_intern_step_op(
                        flat.op_caches[ti][j], flat.kinds[ti][j], txn,
                        flat.item_names[k], value, version))
                    ctx[flat.into[ti][j]] = value
                elif opcode == OP_WRITE:
                    value = flat.values[ti][j]
                    if flat.calls[ti][j]:
                        value = value(ctx)
                    k = flat.items[ti][j]
                    buf[k] = value
                    pre_ops.append(_intern_step_op(
                        flat.op_caches[ti][j], flat.kinds[ti][j], txn,
                        flat.item_names[k], value, None))
                else:
                    terminal = 1 if opcode == OP_COMMIT else 2
                    eff = j + 1
                    pre_ops.append(None)
                    break
            self._pre_ops.append(pre_ops)
            self._eff.append(eff)
            self._terminal.append(terminal)
            self._ctx.append(ctx)
            self._buf.append(buf)
            wmask = 0
            for k in buf:
                wmask |= 1 << k
            self._wmask.append(wmask)

    def _run_row(self, schedule: Sequence[int]) -> ExecutionOutcome:
        flat = self._flat
        order = flat.order
        tindex = flat.tindex
        eff = self._eff
        terminal = self._terminal
        pre_ops = self._pre_ops
        counters = [0] * len(order)
        finished = [False] * len(order)
        est = [_ACTIVE] * len(order)
        installed = 0
        ops: List[Operation] = []
        abort_reasons: Dict[int, str] = {}
        db = list(self._seed)

        def event(ti: int) -> None:
            j = counters[ti]
            counters[ti] = j + 1
            if j == eff[ti] - 1 and terminal[ti]:
                txn = flat.txns[ti]
                if terminal[ti] == 1:
                    conflict = self._wmask[ti] & installed
                    if conflict:
                        for k in self._buf[ti]:  # write-set insertion order
                            if installed >> k & 1:
                                name = flat.item_names[k]
                                break
                        reason = (f"first-committer-wins: {name} was committed"
                                  f" by another transaction after this"
                                  f" transaction's snapshot")
                        ops.append(flat.abort_ops[ti])
                        est[ti] = _ABORTED
                        abort_reasons[txn] = reason
                    else:
                        ops.append(flat.commit_ops[ti])
                        est[ti] = _COMMITTED
                        nonlocal_install(ti)
                else:
                    ops.append(flat.abort_ops[ti])
                    est[ti] = _ABORTED
                    abort_reasons.setdefault(txn, "program abort")
                finished[ti] = True
            else:
                ops.append(pre_ops[ti][j])
                if counters[ti] >= eff[ti]:
                    finished[ti] = True

        def nonlocal_install(ti: int) -> None:
            nonlocal installed
            installed |= self._wmask[ti]
            for k, value in self._buf[ti].items():
                db[k] = value

        for txn in schedule:
            ti = tindex.get(txn)
            if ti is None or finished[ti] or counters[ti] >= eff[ti]:
                continue
            event(ti)
        while True:
            active = [ti for ti in order
                      if not finished[ti] and counters[ti] < eff[ti]]
            if not active:
                break
            for ti in active:
                event(ti)

        database = self._database
        for k, name in enumerate(flat.item_names):
            value = db[k]
            if value is _ABSENT:
                database.delete_item(name)
            else:
                database.set_item(name, value)
        return ExecutionOutcome(
            engine_name=self.engine_name,
            history=History(ops, validate=False),
            statuses={flat.txns[ti]: _STATES[est[ti]] for ti in order},
            contexts={flat.txns[ti]: dict(self._ctx[ti]) for ti in order},
            database=database,
            abort_reasons=abort_reasons,
            blocked_events=0,
            deadlocks=[],
            traces=[],
            stalled=False,
        )

    def run_one(self, schedule: Sequence[int],
                shared: Optional[int] = None,
                prepare: Optional[int] = None) -> ExecutionOutcome:
        if not self._known.issuperset(schedule):
            if self.fallback is None:
                raise ValueError(
                    "schedule references transactions outside the program set"
                    " and no stepwise fallback is attached")
            self.stats.schedules += 1
            self.stats.rows_ejected += 1
            self.stats.slots_total += len(schedule)
            return self.fallback(schedule)
        self.stats.schedules += 1
        self.stats.rows_fast += 1
        self.stats.slots_total += len(schedule)
        self.stats.slots_executed += len(schedule)
        return self._run_row(schedule)

    def run_batch(self, schedules: Sequence[Sequence[int]],
                  sort: bool = True) -> Iterator[Tuple[int, ExecutionOutcome]]:
        """Execute a batch, yielding ``(original_index, outcome)`` pairs."""
        order, _ = _sorted_order_and_lcps(schedules, sort)
        for index in order:
            yield index, self.run_one(schedules[index])


def build_batch_kernel(database: Database,
                       programs: Sequence[TransactionProgram],
                       level: IsolationLevelName,
                       engine_name: str,
                       engine_options: Optional[Dict[str, Any]] = None,
                       fallback: Optional[Callable[..., ExecutionOutcome]] = None):
    """A batch kernel for one testbed, or None when the fast path can't apply.

    Returns None — callers then keep the stepwise trie path — when numpy is
    unavailable, when any program compiles to an ``OP_GENERIC`` step (rows,
    predicates, cursors), when the engine was built with non-default options
    (e.g. the First-Committer-Wins ablation), or when the level has no flat
    emulation.  ``fallback`` (typically ``TrieExecutor.run_one``) handles
    per-row ejection for schedules the kernel declines at runtime.
    """
    if engine_options:
        return None
    if _numpy() is None:
        return None
    compiled = compile_programs(programs)
    tables = emit_batch_tables(compiled)
    if not tables.supported or not tables.programs:
        return None
    flat = _FlatPrograms(compiled, tables)
    seed = [database.get_item(name, _ABSENT) for name in flat.item_names]
    if level in POLICIES:
        return _EmulatorKernel(_LockingFlat(flat, level, seed), database,
                               engine_name, flat, fallback)
    if level is IsolationLevelName.ORACLE_READ_CONSISTENCY:
        return _EmulatorKernel(_ReadConsistencyFlat(flat, seed), database,
                               engine_name, flat, fallback)
    if level is IsolationLevelName.SNAPSHOT_ISOLATION:
        return _SnapshotKernel(flat, seed, database, engine_name, fallback)
    return None
