"""The schedule-space explorer: orchestration, parallel fan-out, determinism.

``explore()`` resolves the interleaving space of a registered program set
(exhaustive for small spaces, seeded uniform sampling for large ones), streams
it in fixed-size chunks, executes every chunk through the prefix-sharing
:class:`~repro.explorer.trie_executor.TrieExecutor` — in process, or fanned
out over a ``multiprocessing`` pool — and reassembles the per-schedule records
in schedule order.

Four scaling layers sit on the hot path:

* **Streaming** — the schedule stream is generated lazily and dispatched with
  ``imap`` over indexed chunks, so exploring (or sampling) millions of
  schedules holds O(chunk) interleavings in memory, never the full list.
* **Prefix-sharing execution** — each worker keeps one testbed per
  (spec, level) and walks its chunks as a DFS over their shared-prefix trie:
  a schedule re-executes only the suffix past the deepest checkpoint it
  shares with its predecessor (see :mod:`repro.explorer.trie_executor`).
* **Partial-order reduction** (``reduction="sleep-set"``) — equivalent
  interleavings (differing only by commuting adjacent steps of transactions
  with disjoint footprints) are executed once and their classification reused
  for the whole equivalence class.  Canonicalization is *streamed*: chunks are
  reduced as they are generated (:class:`~repro.explorer.reduction.StreamingReducer`),
  so reduction composes with sampled streams of any size without
  materializing the schedule list up front.
* **Shared classification cache** (``shared_cache=True``) — parallel workers
  exchange whole-history classifications through an append-only manager log,
  one batched pull and one batched publish per chunk, so they stop paying
  each other's cold caches.

Determinism contract: the full output (every record, in order) is a pure
function of ``(spec, levels, mode, max_schedules, seed, reduction)``.  Worker
count, chunk size, and cache sharing only change wall-clock time, never
results — the schedule stream is fixed by the seed before any execution,
chunks are indexed, records are reassembled by chunk index, execution is
byte-equal to from-scratch runs (the trie executor's contract), and
classification is a pure function of the realized history.
``ExplorationResult.fingerprint()`` hashes the record stream so tests can
assert byte-identical serial/parallel output.
"""

from __future__ import annotations

import dataclasses
import hashlib
import multiprocessing
import os
import time
import warnings
from array import array
from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple, Union

from ..core.isolation import IsolationLevelName
from ..core.phenomena import ALL_PHENOMENA
from ..static_analysis import StaticVerdict, Verdict, analyze_programs
from ..workloads.program_sets import ProgramSetSpec, resolve_program_set
from .memo import BatchClassifier
from .options import DEFAULT_LEVELS, REDUCTIONS, ExploreOptions
from .reduction import StreamingReducer, terminal_scope_for
from .schedules import Interleaving, ScheduleSpace, schedule_space
from .worker import (
    ChunkResult,
    ChunkTask,
    ScheduleRecord,
    _initial_items,
    execute_chunk,
)

__all__ = [
    "DEFAULT_LEVELS",
    "ExploreOptions",
    "LevelExploration",
    "ExplorationResult",
    "available_workers",
    "terminal_scope_for",
    "explore",
]

# DEFAULT_LEVELS and REDUCTIONS are defined in .options (the consolidated
# configuration surface) and re-exported here for their historical importers.

#: ``outcome_memo="auto"`` enables the schedule-level outcome memo only for
#: spaces at most this big: small (exhaustive or oversampled) spaces revisit
#: commutation-equivalence classes constantly, while a sample of a huge space
#: almost never does — there the canonicalization would be pure overhead.
OUTCOME_MEMO_AUTO_LIMIT = 10_000


def available_workers() -> int:
    """The usable CPU count (affinity-aware where the platform supports it)."""
    try:
        return len(os.sched_getaffinity(0)) or 1
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


@dataclass(frozen=True)
class LevelExploration:
    """Every schedule record for one isolation level, in schedule order."""

    level: IsolationLevelName
    records: Tuple[ScheduleRecord, ...]
    cache_stats: Dict[str, int]
    duration: float
    executed: int = -1

    def __post_init__(self) -> None:
        if self.executed < 0:
            object.__setattr__(self, "executed", len(self.records))

    @property
    def schedules_per_second(self) -> float:
        """Execution + classification throughput for this level."""
        return len(self.records) / self.duration if self.duration > 0 else float("inf")


@dataclass(frozen=True)
class ExplorationResult:
    """The full outcome of one ``explore()`` call."""

    spec: ProgramSetSpec
    space: ScheduleSpace
    workers: int
    chunk_size: int
    levels: Dict[IsolationLevelName, LevelExploration]
    reduction: str = "none"
    outcome_memo: bool = False
    #: Per-level static verdicts from the SDG pass (always attached), and
    #: whether statically-impossible detectors were actually skipped.
    static_verdicts: Dict[IsolationLevelName, Dict[str, StaticVerdict]] = \
        dataclasses.field(default_factory=dict)
    static_pruning: bool = False

    def pruned_detectors(self, level: IsolationLevelName) -> Tuple[str, ...]:
        """The detector codes statically proven impossible for one level."""
        verdicts = self.static_verdicts.get(level, {})
        return tuple(code for code, verdict in verdicts.items()
                     if verdict.verdict is Verdict.IMPOSSIBLE)

    def fingerprint(self) -> str:
        """SHA-256 over every record, in order — identical runs hash identically.

        Timing and cache statistics are deliberately excluded; they vary with
        worker count while the records may not.
        """
        digest = hashlib.sha256()
        for level in sorted(self.levels, key=lambda lvl: lvl.value):
            digest.update(level.value.encode())
            for record in self.levels[level].records:
                digest.update(repr((
                    record.interleaving, record.history, record.serializable,
                    record.phenomena, record.committed, record.aborted,
                    record.blocked_events, record.deadlocks, record.stalled,
                )).encode())
        return digest.hexdigest()

    def total_schedules(self) -> int:
        """Schedules covered (executed or reduction-reused), summed over levels."""
        return sum(len(exploration.records) for exploration in self.levels.values())

    def executed_schedules(self) -> int:
        """Schedules actually run through an engine, summed over levels."""
        return sum(exploration.executed for exploration in self.levels.values())

    def reduction_ratio(self) -> float:
        """Schedules covered per schedule executed (1.0 without reduction)."""
        executed = self.executed_schedules()
        return self.total_schedules() / executed if executed else 1.0


# -- streamed reduction plans -------------------------------------------------------


class _ScopePlan:
    """Per-terminal-scope reduction state, built while the first level streams.

    The first level using a scope drives :class:`StreamingReducer` chunk by
    chunk and records the slot assignment (one compact integer per schedule);
    subsequent levels of the same scope replay the stored plan — representing
    chunks as contiguous slices of the representative list — without paying
    canonicalization again.
    """

    def __init__(self, programs, scope: str):
        self.reducer = StreamingReducer(programs, terminal_scope=scope)
        self.assignment = array("q")
        self.complete = False

    def building_stream(self, chunks: Iterable[Tuple[int, Tuple[Interleaving, ...]]]
                        ) -> Iterator[Tuple[Tuple[Interleaving, ...], Tuple[Interleaving, ...]]]:
        """Reduce chunks as they stream; yields (chunk, fresh representatives)."""
        for _, chunk in chunks:
            fresh, slots = self.reducer.reduce(chunk)
            self.assignment.extend(slots)
            yield chunk, fresh
        self.complete = True

    def replay_stream(self, chunks: Iterable[Tuple[int, Tuple[Interleaving, ...]]]
                      ) -> Iterator[Tuple[Tuple[Interleaving, ...], Tuple[Interleaving, ...]]]:
        """Replay the recorded plan: fresh representatives are a contiguous
        suffix of the representative list within each chunk (first-encounter
        order guarantees it)."""
        executed = self.reducer.executed
        cursor = 0
        position = 0
        for _, chunk in chunks:
            slots = self.assignment[position:position + len(chunk)]
            position += len(chunk)
            top = max(slots) + 1 if len(slots) else cursor
            fresh = tuple(executed[cursor:max(cursor, top)])
            cursor = max(cursor, top)
            yield chunk, fresh

    def stream(self, chunks: Iterable[Tuple[int, Tuple[Interleaving, ...]]]
               ) -> Iterator[Tuple[Tuple[Interleaving, ...], Tuple[Interleaving, ...]]]:
        if self.complete:
            return self.replay_stream(chunks)
        return self.building_stream(chunks)


class _ChunkStreamCache:
    """Replay a space's chunk stream across levels without re-sampling.

    ``explore`` iterates the same schedule stream once per isolation level;
    for sampled spaces that pays the full RNG cost per level.  This cache
    materializes the chunk list the first time a (chunk size) stream is
    drained and replays it for later levels — but only for small runs:
    ``limit`` caps the cached schedule count, so million-schedule streams keep
    the O(chunk) memory contract and simply stream again per level.  Purely an
    optimization: the stream is a pure function of the space, so replaying the
    cache is indistinguishable from regenerating it.
    """

    def __init__(self, space: ScheduleSpace, limit: int = 100_000):
        self._space = space
        self._limit = limit
        self._chunks: Dict[int, List[Tuple[int, Tuple[Interleaving, ...]]]] = {}

    def iter_chunks(self, chunk_size: int
                    ) -> Iterator[Tuple[int, Tuple[Interleaving, ...]]]:
        cached = self._chunks.get(chunk_size)
        if cached is not None:
            return iter(cached)
        return self._build(chunk_size)

    def _build(self, chunk_size: int
               ) -> Iterator[Tuple[int, Tuple[Interleaving, ...]]]:
        collected: List[Tuple[int, Tuple[Interleaving, ...]]] = []
        total = 0
        keep = True
        for indexed_chunk in self._space.iter_chunks(chunk_size):
            if keep:
                collected.append(indexed_chunk)
                total += len(indexed_chunk[1])
                if total > self._limit:
                    keep = False
                    collected.clear()
            yield indexed_chunk
        if keep:
            self._chunks[chunk_size] = collected


def _merge_stats(stats_list: Iterable[Dict[str, int]]) -> Dict[str, int]:
    merged: Dict[str, int] = {}
    for stats in stats_list:
        for key, value in stats.items():
            merged[key] = merged.get(key, 0) + value
    return merged


def _assemble_chunk(records: List[ScheduleRecord],
                    executed_records: List[ScheduleRecord],
                    chunk: Tuple[Interleaving, ...],
                    slots: Sequence[int]) -> None:
    """Expand one chunk's representative records over its schedule stream."""
    for interleaving, slot in zip(chunk, slots):
        record = executed_records[slot]
        if record.interleaving != interleaving:
            record = dataclasses.replace(record, interleaving=interleaving)
        records.append(record)


# -- level exploration (serial and parallel share the chunk pipeline) ----------------


def _explore_level(spec: ProgramSetSpec, level: IsolationLevelName,
                   chunks: _ChunkStreamCache, plan: Optional[_ScopePlan],
                   chunk_size: int, builder, initial_items,
                   pool, shared_cache, outcome_memo: bool = False,
                   shared_outcomes=None,
                   codes: Optional[Tuple[str, ...]] = None,
                   batch_kernel: Optional[str] = None,
                   persistence=None, programs=None) -> LevelExploration:
    """Stream one level's chunks through execution (in-process or pooled).

    With a reduction plan, chunks are canonicalized as they stream (or the
    recorded plan replayed) and only fresh representatives are executed;
    assembly interleaves with result consumption, so no stage materializes
    the schedule stream.

    With ``persistence`` (a :class:`repro.persist.session.LevelPersistence`)
    attached, chunks below the stored cursor are *loaded* instead of
    executed, every freshly executed chunk is committed atomically as its
    result arrives — results come back in chunk-index order, so the cursor
    stays a contiguous high-water mark — and the serial dedupe tiers are
    preloaded from the store.  The stored prefix of the stream always comes
    before every live chunk, so loaded records land in stream order.
    """
    serial_classifier = (BatchClassifier(codes=codes, initial_items=initial_items)
                         if pool is None else None)
    if persistence is not None:
        if serial_classifier is not None:
            persistence.preload_classifier(serial_classifier)
        persistence.preload_outcome_memo(spec, programs)
    started = time.perf_counter()
    records: List[ScheduleRecord] = []
    executed_records: List[ScheduleRecord] = []
    stats_parts: List[Dict[str, int]] = []
    executed = 0
    cursor = persistence.cursor if persistence is not None else 0
    # Entries appear in stream order; stored entries (chunk index < cursor)
    # form a strict prefix of the stream, so draining them before each live
    # result (and after the last) reassembles records in stream order.  The
    # list is appended by the task generator (the pool's feeder thread when
    # parallel — same single-producer pattern as ``pending`` below) and
    # consumed only by this parent loop.
    order: List[Tuple] = []
    consumed = 0
    loaded_records = 0
    loaded_reps = 0
    export_outcomes = (persistence is not None and outcome_memo
                       and pool is None)

    if plan is None:
        # In-process execution has no load-balancing constraint, so batch the
        # stream coarser than chunk_size: bigger sorted batches share longer
        # prefixes in the trie executor.  Records are identical either way —
        # per-schedule outcomes are independent of batching by the trie
        # executor's byte-equality contract.  A campaign store pins the batch
        # to chunk_size: the progress cursor counts *campaign* chunks, which
        # must mean the same boundaries in every run that touches the store.
        if persistence is not None or pool is not None:
            batch_size = chunk_size
        else:
            batch_size = max(chunk_size, 2048)
        chunk_schedules = chunks.iter_chunks(batch_size)

        def tasks() -> Iterator[ChunkTask]:
            for index, chunk in chunk_schedules:
                if index < cursor:
                    order.append(("stored", index, len(chunk)))
                    continue
                order.append(("live", index))
                yield ChunkTask(index, spec, level, chunk, builder, shared_cache,
                                outcome_memo=outcome_memo,
                                shared_outcomes=shared_outcomes, codes=codes,
                                batch_kernel=batch_kernel,
                                export_outcomes=export_outcomes)

        def drain_stored() -> None:
            nonlocal consumed, loaded_records
            while consumed < len(order) and order[consumed][0] == "stored":
                _, index, _length = order[consumed]
                stored_records, _reps = persistence.load_chunk(index)
                records.extend(stored_records)
                loaded_records += len(stored_records)
                consumed += 1

        for result in _run_tasks(tasks(), pool, serial_classifier):
            drain_stored()
            entry = order[consumed]
            consumed += 1
            records.extend(result.records)
            stats_parts.append(result.cache_stats)
            if persistence is not None:
                persistence.commit_chunk(entry[1], result.records,
                                         fresh_outcomes=result.fresh_outcomes)
        drain_stored()
        if outcome_memo:
            executed = sum(part.get("outcome_executed", 0) for part in stats_parts)
        else:
            executed = len(records) - loaded_records
    else:
        plan_stream = plan.stream(chunks.iter_chunks(chunk_size))
        # The task generator advances the plan stream; assembly pulls the
        # matching (chunk, slots) pairs from this parent-side queue, which
        # only ever holds the chunks the pool has prefetched ahead of their
        # results — O(pool prefetch), not O(stream).
        pending: List[Tuple[Tuple[Interleaving, ...], int]] = []

        def tasks() -> Iterator[ChunkTask]:
            for index, (chunk, fresh) in enumerate(plan_stream):
                if index < cursor:
                    order.append(("stored", index, len(chunk)))
                    continue
                order.append(("live", index))
                pending.append((chunk, len(chunk)))
                yield ChunkTask(index, spec, level, fresh, builder, shared_cache,
                                codes=codes, batch_kernel=batch_kernel)

        position = 0

        def drain_stored() -> None:
            nonlocal consumed, position, loaded_records, loaded_reps
            while consumed < len(order) and order[consumed][0] == "stored":
                _, index, length = order[consumed]
                stored_records, stored_reps = persistence.load_chunk(index)
                records.extend(stored_records)
                executed_records.extend(stored_reps)
                loaded_records += len(stored_records)
                loaded_reps += len(stored_reps)
                position += length
                consumed += 1

        for result in _run_tasks(tasks(), pool, serial_classifier):
            drain_stored()
            entry = order[consumed]
            consumed += 1
            executed_records.extend(result.records)
            stats_parts.append(result.cache_stats)
            chunk, length = pending.pop(0)
            slots = plan.assignment[position:position + length]
            position += length
            assembled_start = len(records)
            _assemble_chunk(records, executed_records, chunk, slots)
            if persistence is not None:
                persistence.commit_chunk(entry[1], records[assembled_start:],
                                         rep_records=result.records)
        drain_stored()
        executed = len(executed_records) - loaded_reps

    if serial_classifier is not None:
        merged = _merge_stats(stats_parts)
        # The shared classifier's counters are authoritative for the level;
        # per-chunk parts carry the timing/trie counters.
        merged.update(serial_classifier.stats)
        stats = merged
    else:
        stats = _merge_stats(stats_parts)
    if persistence is not None:
        persistence.finish(len(order), classifier=serial_classifier)
        stats.update(persistence.stats)
    duration = time.perf_counter() - started
    return LevelExploration(level, tuple(records), stats, duration,
                            executed=executed)


def _run_tasks(tasks: Iterator[ChunkTask], pool,
               serial_classifier) -> Iterator[ChunkResult]:
    """Run chunk tasks in submission order, in-process or on the pool."""
    if pool is None:
        for task in tasks:
            yield execute_chunk(task, serial_classifier)
    else:
        # imap pulls tasks from the lazy generator as workers free up, so the
        # parent never materializes the full schedule list; results arrive in
        # submission order, which *is* chunk-index order.
        for result in pool.imap(execute_chunk, tasks):
            yield result


def _resolve_worker_count(workers: Union[int, str]) -> int:
    if workers == "auto":
        return max(1, available_workers())
    if isinstance(workers, bool) or not isinstance(workers, int):
        raise ValueError(f"workers must be an int or 'auto', got {workers!r}")
    if workers < 1:
        raise ValueError("workers must be >= 1")
    return workers


def explore(spec: ProgramSetSpec,
            options: Optional[ExploreOptions] = None,
            **kwargs) -> ExplorationResult:
    """Explore the schedule space of a program set under several isolation levels.

    The preferred call passes one :class:`~repro.explorer.options.ExploreOptions`
    parameter object: ``explore(spec, ExploreOptions(workers=4, seed=7))``.
    The historical loose-kwargs surface (``explore(spec, workers=4, seed=7)``)
    remains as a deprecated shim: the kwargs are folded into an
    ``ExploreOptions`` internally, so both spellings validate identically and
    produce byte-identical results (the fingerprint equivalence tests gate
    this).  Mixing both raises ``TypeError``.

    Parameters
    ----------
    spec:
        A :class:`~repro.workloads.program_sets.ProgramSetSpec` naming a
        registered builder (workers rebuild the programs from it).
    options:
        An :class:`~repro.explorer.options.ExploreOptions` carrying every
        knob below (build one with :meth:`ExploreOptions.from_env` to read
        the ``EXPLORER_*`` environment variables).
    levels:
        Isolation levels to run every schedule under (default: the Table 4 rows
        every engine implements).
    mode, max_schedules, seed:
        Passed to :func:`~repro.explorer.schedules.schedule_space` — exhaustive
        enumeration, seeded sampling, or automatic choice between them.  The
        stream is lazy: schedules are generated chunk by chunk, never held as
        one list.
    workers:
        ``1`` runs in-process (with cross-chunk memoization); ``N > 1`` fans
        chunks out over a process pool; ``"auto"`` uses every usable core
        (:func:`available_workers`).  Results are identical in all cases.
    chunk_size:
        Schedules per work unit.  Affects only load balancing and streaming
        granularity.
    reduction:
        ``"none"`` executes every schedule; ``"sleep-set"`` executes one
        representative per commutation-equivalence class and reuses its
        classification for the rest (see :mod:`repro.explorer.reduction`).
        Canonicalization streams chunk by chunk; at most one plan per
        terminal scope is built and replayed across the levels of that kind.
        The commutation oracle is level-aware: single-version locking levels
        drop the component-wide snapshot-boundary terminal rule multiversion
        engines need, so their equivalence classes are coarser and their
        executed counts lower.  Coverage reports are unchanged either way;
        only executed-schedule counts drop.
        Note the record semantics: a reduced schedule's record keeps its own
        interleaving but carries its *representative's* realized history
        (equivalent up to the order of commuting adjacent steps), so a
        coverage witness pair under reduction shows the class's
        representative history, not a replay of that exact interleaving.
    shared_cache:
        When parallel, share whole-history classifications across workers via
        an append-only manager log (one batched pull at chunk start, one
        batched publish at chunk end).  Pure optimization — never changes
        records.
    outcome_memo:
        Schedule-level outcome memoization for streams explored *without*
        reduction: schedules are canonicalized
        (:meth:`~repro.explorer.reduction.CommutationOracle.canonical_key`,
        level-aware terminal scope) and each equivalence class executes its
        canonical member exactly once per process — every other member reuses
        the memoized outcome, and parallel workers exchange outcomes through
        an append-only log like the classification cache.  ``"auto"`` (the
        default) enables it only when ``reduction == "none"`` and the space
        holds at most :data:`OUTCOME_MEMO_AUTO_LIMIT` schedules — exhaustive
        or oversampled streams, where classes are revisited constantly; a
        sparse sample of a huge space keeps it off (the memo would never
        hit).  Record semantics under the memo match reduction's: a record
        keeps its own interleaving but carries its *canonical member's*
        realized history and blocked/deadlock/stall counts.  Records stay a
        pure function of the explore() inputs — the canonical member (never
        the first-encountered one) is what executes, so worker count, chunk
        size, and memo warmth cannot change any record.
    static_pruning:
        Skip the phenomenon detectors the static dependency graph proves
        impossible for this program set at each level (see
        :mod:`repro.static_analysis`).  The per-level
        :class:`~repro.static_analysis.StaticVerdict` map is attached to the
        result either way (``result.static_verdicts``); pruning only controls
        whether ``IMPOSSIBLE`` detectors are actually dropped from the
        classification pass.  Sound — a pruned detector cannot fire on any
        history realizable at its level, so records are byte-identical with
        pruning on or off (the fingerprint tests assert exactly this); the
        skipped detector count is reported per level as the
        ``static_pruned_detectors`` cache stat.
    batch_kernel:
        Batch-drain kernel mode for the executors: ``"auto"`` uses the
        vectorized flat-array kernel when numpy is importable and the
        (level, workload) is supported, falling back to the stepwise trie
        walk otherwise; ``"on"`` raises when the kernel cannot be built;
        ``"off"`` disables it.  ``None`` (the default) defers to the
        ``EXPLORER_BATCH_KERNEL`` environment variable (default ``"auto"``).
        Pure optimization — records are byte-identical in every mode.
    store:
        An optional :class:`repro.persist.CampaignStore` making the run a
        **persistent campaign**: every chunk of every level commits
        atomically (records + progress cursor) as its result arrives, so a
        killed run resumes from its last durable chunk — skipping the stored
        prefix of the stream by *loading* its records — and produces a
        byte-identical result to an uninterrupted run.  The store also backs
        the dedupe tiers across runs and workloads: memoized canonical-form
        outcomes (per workload+level) and history classifications (shared by
        every workload) are preloaded from and saved to the store, so
        re-running a completed campaign executes ~0 fresh schedules.
        ``cache_stats`` gains ``store_*`` counters.  With a store attached
        the serial path pins its execution batches to ``chunk_size`` (the
        cursor must mean the same chunk boundaries in every run), so prefer
        a generous ``chunk_size`` (512+) for serial campaigns.
    campaign_id:
        Identifies the campaign within the store (default: derived from the
        campaign config, so identical explore() inputs resume the same
        campaign).  Resuming an existing campaign validates that the
        record-affecting inputs (spec, mode, max_schedules, seed, reduction,
        chunk_size) match the stored config and raises
        :class:`repro.persist.CampaignConfigMismatch` otherwise.  Requires
        ``store``.
    """
    if options is not None:
        if kwargs:
            raise TypeError(
                "explore() takes either an ExploreOptions object or legacy "
                "keyword knobs, not both")
        if not isinstance(options, ExploreOptions):
            raise TypeError(
                f"options must be an ExploreOptions, got "
                f"{type(options).__name__}; legacy knobs must be passed by "
                f"keyword")
    else:
        unknown = set(kwargs) - set(ExploreOptions.field_names())
        if unknown:
            raise TypeError(
                f"explore() got unexpected keyword arguments: "
                f"{', '.join(sorted(unknown))}")
        if kwargs:
            warnings.warn(
                "passing explore() knobs as loose keyword arguments is "
                "deprecated; pass an ExploreOptions object instead",
                DeprecationWarning, stacklevel=2)
        options = ExploreOptions(**kwargs)
    levels = options.levels
    mode = options.mode
    max_schedules = options.max_schedules
    seed = options.seed
    chunk_size = options.chunk_size
    reduction = options.reduction
    shared_cache = options.shared_cache
    outcome_memo = options.outcome_memo
    static_pruning = options.static_pruning
    batch_kernel = options.batch_kernel
    store = options.store
    campaign_id = options.campaign_id
    workers = _resolve_worker_count(options.workers)
    # Resolve the builder here, in the caller's process, so sets registered by
    # the calling script reach spawn-started workers (pickled by reference).
    builder = resolve_program_set(spec)
    database, programs = builder(**spec.kwargs())
    initial_items = _initial_items(database)
    space = schedule_space(programs, mode=mode, max_schedules=max_schedules, seed=seed)
    if outcome_memo == "auto":
        # Deterministic resolution: a pure function of the explore() inputs
        # (the space is fixed by (spec, mode, max_schedules, seed)), so the
        # determinism contract is preserved.
        outcome_memo = reduction == "none" and space.total <= OUTCOME_MEMO_AUTO_LIMIT
    else:
        # Sleep-set reduction already executes one representative per class
        # in the parent, so the memo has nothing to add there: resolve an
        # explicit True to False so the result reports what actually ran.
        outcome_memo = bool(outcome_memo) and reduction == "none"

    # The reduction plan depends on the level only through the terminal rule;
    # at most two plans are built (one per scope in use) and shared across the
    # levels of each kind.  Plans are streamed: the first level of a scope
    # reduces chunks as they are generated, later levels replay the recorded
    # assignment — O(representatives + one int per schedule) memory, never the
    # materialized stream.
    plans: Dict[str, _ScopePlan] = {}

    def _plan_for(level: IsolationLevelName) -> Optional[_ScopePlan]:
        if reduction != "sleep-set":
            return None
        scope = terminal_scope_for(level)
        if scope not in plans:
            plans[scope] = _ScopePlan(programs, scope)
        return plans[scope]

    # The static pass runs unconditionally (it is a few microseconds of set
    # algebra over the footprints) so every result carries its verdict map;
    # only the detector skipping is gated on ``static_pruning``.
    static_verdicts: Dict[IsolationLevelName, Dict[str, StaticVerdict]] = {}
    level_codes: Dict[IsolationLevelName, Optional[Tuple[str, ...]]] = {}
    for level in levels:
        try:
            verdicts = analyze_programs(programs, level)
        except KeyError:  # a level without an engine profile: never prune
            level_codes[level] = None
            continue
        static_verdicts[level] = verdicts
        pruned = frozenset(code for code, verdict in verdicts.items()
                           if verdict.verdict is Verdict.IMPOSSIBLE)
        level_codes[level] = (
            tuple(code for code in ALL_PHENOMENA if code not in pruned)
            if static_pruning and pruned else None)

    session = None
    if store is not None:
        # Imported lazily: repro.persist imports this package at module
        # scope, so the dependency must point one way only.
        from ..persist.session import CampaignSession, campaign_config
        session = CampaignSession(
            store, spec,
            campaign_config(spec, mode=mode, max_schedules=max_schedules,
                            seed=seed, reduction=reduction,
                            chunk_size=chunk_size),
            campaign_id=campaign_id)

    def _persistence_for(level: IsolationLevelName, serial: bool):
        if session is None:
            return None
        persistence = session.level(level, outcome_memo, serial)
        codes = level_codes[level]
        persistence.static_pruned = (len(ALL_PHENOMENA) - len(codes)
                                     if codes is not None else 0)
        return persistence

    chunk_cache = _ChunkStreamCache(space)
    explorations: Dict[IsolationLevelName, LevelExploration] = {}
    if workers == 1:
        for level in levels:
            explorations[level] = _explore_level(
                spec, level, chunk_cache, _plan_for(level), chunk_size, builder,
                initial_items, pool=None, shared_cache=None,
                outcome_memo=outcome_memo, codes=level_codes[level],
                batch_kernel=batch_kernel,
                persistence=_persistence_for(level, serial=True),
                programs=programs,
            )
    else:
        manager = multiprocessing.Manager() if shared_cache else None
        try:
            # One shared log across levels too: classification is level-
            # independent, and serial prefixes realize identical histories
            # under different engines.
            shared = manager.list() if manager is not None else None
            # Outcomes are level-dependent: one outcome log per level, all
            # created up front and kept alive until the manager shuts down —
            # workers key their incremental-pull cursors on the proxy token,
            # and a freed referent's id could otherwise be reused by a later
            # level's log, aliasing the cursors across levels.
            outcome_logs = {
                level: (manager.list()
                        if manager is not None and outcome_memo else None)
                for level in levels
            }
            # A campaign store seeds the fresh logs with its stored dedupe
            # tiers (workers preload them through the normal incremental
            # pull) and drains worker-published batches back afterwards.
            seed_batches = (session.seed_classification_log(shared)
                            if session is not None and shared is not None else 0)
            outcome_seeds = {
                level: (session.seed_outcome_log(outcome_logs[level], level.value)
                        if session is not None and outcome_logs[level] is not None
                        else 0)
                for level in levels
            }
            with multiprocessing.Pool(processes=workers) as pool:
                for level in levels:
                    explorations[level] = _explore_level(
                        spec, level, chunk_cache, _plan_for(level), chunk_size,
                        builder, initial_items, pool=pool, shared_cache=shared,
                        outcome_memo=outcome_memo,
                        shared_outcomes=outcome_logs[level],
                        codes=level_codes[level],
                        batch_kernel=batch_kernel,
                        persistence=_persistence_for(level, serial=False),
                        programs=programs,
                    )
            if session is not None:
                if shared is not None:
                    session.drain_classification_log(shared, seed_batches)
                for level in levels:
                    log = outcome_logs[level]
                    if log is not None:
                        session.drain_outcome_log(log, level.value,
                                                  outcome_seeds[level])
        finally:
            if manager is not None:
                manager.shutdown()
    for level, exploration in explorations.items():
        codes = level_codes[level]
        exploration.cache_stats["static_pruned_detectors"] = (
            len(ALL_PHENOMENA) - len(codes) if codes is not None else 0)
    return ExplorationResult(spec=spec, space=space, workers=workers,
                             chunk_size=chunk_size, levels=explorations,
                             reduction=reduction, outcome_memo=outcome_memo,
                             static_verdicts=static_verdicts,
                             static_pruning=static_pruning)
