"""The schedule-space explorer: orchestration, parallel fan-out, determinism.

``explore()`` resolves the interleaving space of a registered program set
(exhaustive for small spaces, seeded uniform sampling for large ones), splits
it into fixed-size chunks, executes every chunk against fresh engines — in
process, or fanned out over a ``multiprocessing`` pool — and reassembles the
per-schedule records in schedule order.

Determinism contract: the full output (every record, in order) is a pure
function of ``(spec, levels, mode, max_schedules, seed)``.  Worker count and
chunk size only change wall-clock time, never results — the schedule list is
fixed before any execution, chunks are indexed, and records are concatenated
by chunk index.  ``ExplorationResult.fingerprint()`` hashes the record stream
so tests can assert byte-identical serial/parallel output.
"""

from __future__ import annotations

import hashlib
import multiprocessing
import os
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.isolation import IsolationLevelName
from ..workloads.program_sets import ProgramSetSpec, resolve_program_set
from .memo import BatchClassifier
from .schedules import ScheduleSpace, schedule_space
from .worker import (
    ChunkResult,
    ChunkTask,
    ScheduleRecord,
    _initial_items,
    execute_chunk,
)

__all__ = [
    "DEFAULT_LEVELS",
    "LevelExploration",
    "ExplorationResult",
    "available_workers",
    "explore",
]

#: The Table 4 rows the coverage report mirrors by default.
DEFAULT_LEVELS: Tuple[IsolationLevelName, ...] = (
    IsolationLevelName.READ_UNCOMMITTED,
    IsolationLevelName.READ_COMMITTED,
    IsolationLevelName.REPEATABLE_READ,
    IsolationLevelName.SNAPSHOT_ISOLATION,
    IsolationLevelName.SERIALIZABLE,
)


def available_workers() -> int:
    """The usable CPU count (affinity-aware where the platform supports it)."""
    try:
        return len(os.sched_getaffinity(0)) or 1
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


@dataclass(frozen=True)
class LevelExploration:
    """Every schedule record for one isolation level, in schedule order."""

    level: IsolationLevelName
    records: Tuple[ScheduleRecord, ...]
    cache_stats: Dict[str, int]
    duration: float

    @property
    def schedules_per_second(self) -> float:
        """Execution + classification throughput for this level."""
        return len(self.records) / self.duration if self.duration > 0 else float("inf")


@dataclass(frozen=True)
class ExplorationResult:
    """The full outcome of one ``explore()`` call."""

    spec: ProgramSetSpec
    space: ScheduleSpace
    workers: int
    chunk_size: int
    levels: Dict[IsolationLevelName, LevelExploration]

    def fingerprint(self) -> str:
        """SHA-256 over every record, in order — identical runs hash identically.

        Timing and cache statistics are deliberately excluded; they vary with
        worker count while the records may not.
        """
        digest = hashlib.sha256()
        for level in sorted(self.levels, key=lambda lvl: lvl.value):
            digest.update(level.value.encode())
            for record in self.levels[level].records:
                digest.update(repr((
                    record.interleaving, record.history, record.serializable,
                    record.phenomena, record.committed, record.aborted,
                    record.blocked_events, record.deadlocks, record.stalled,
                )).encode())
        return digest.hexdigest()

    def total_schedules(self) -> int:
        """Schedules executed, summed over levels."""
        return sum(len(exploration.records) for exploration in self.levels.values())


def _chunk_tasks(spec: ProgramSetSpec, level: IsolationLevelName,
                 space: ScheduleSpace, chunk_size: int,
                 builder) -> List[ChunkTask]:
    schedules = space.schedules
    return [
        ChunkTask(index, spec, level, schedules[start:start + chunk_size], builder)
        for index, start in enumerate(range(0, len(schedules), chunk_size))
    ]


def _explore_level_serial(spec: ProgramSetSpec, level: IsolationLevelName,
                          space: ScheduleSpace, chunk_size: int,
                          builder, initial_items) -> LevelExploration:
    classifier = BatchClassifier(initial_items=initial_items)
    started = time.perf_counter()
    records: List[ScheduleRecord] = []
    for task in _chunk_tasks(spec, level, space, chunk_size, builder):
        records.extend(execute_chunk(task, classifier).records)
    duration = time.perf_counter() - started
    return LevelExploration(level, tuple(records), dict(classifier.stats), duration)


def _merge_stats(results: Sequence[ChunkResult]) -> Dict[str, int]:
    merged: Dict[str, int] = {}
    for result in results:
        for key, value in result.cache_stats.items():
            merged[key] = merged.get(key, 0) + value
    return merged


def _explore_level_parallel(spec: ProgramSetSpec, level: IsolationLevelName,
                            space: ScheduleSpace, chunk_size: int,
                            pool: "multiprocessing.pool.Pool",
                            builder) -> LevelExploration:
    tasks = _chunk_tasks(spec, level, space, chunk_size, builder)
    started = time.perf_counter()
    results = pool.map(execute_chunk, tasks)
    duration = time.perf_counter() - started
    results.sort(key=lambda result: result.chunk_index)
    records: List[ScheduleRecord] = []
    for result in results:
        records.extend(result.records)
    return LevelExploration(level, tuple(records), _merge_stats(results), duration)


def explore(spec: ProgramSetSpec,
            levels: Sequence[IsolationLevelName] = DEFAULT_LEVELS,
            mode: str = "auto", max_schedules: int = 1000, seed: int = 0,
            workers: int = 1, chunk_size: int = 64) -> ExplorationResult:
    """Explore the schedule space of a program set under several isolation levels.

    Parameters
    ----------
    spec:
        A :class:`~repro.workloads.program_sets.ProgramSetSpec` naming a
        registered builder (workers rebuild the programs from it).
    levels:
        Isolation levels to run every schedule under (default: the Table 4 rows
        every engine implements).
    mode, max_schedules, seed:
        Passed to :func:`~repro.explorer.schedules.schedule_space` — exhaustive
        enumeration, seeded sampling, or automatic choice between them.
    workers:
        ``1`` runs in-process (with cross-chunk memoization); ``N > 1`` fans
        chunks out over a process pool.  Results are identical either way.
    chunk_size:
        Schedules per work unit.  Affects only load balancing.
    """
    if workers < 1:
        raise ValueError("workers must be >= 1")
    if chunk_size < 1:
        raise ValueError("chunk_size must be >= 1")
    # Resolve the builder here, in the caller's process, so sets registered by
    # the calling script reach spawn-started workers (pickled by reference).
    builder = resolve_program_set(spec)
    database, programs = builder(**spec.kwargs())
    initial_items = _initial_items(database)
    space = schedule_space(programs, mode=mode, max_schedules=max_schedules, seed=seed)

    explorations: Dict[IsolationLevelName, LevelExploration] = {}
    if workers == 1:
        for level in levels:
            explorations[level] = _explore_level_serial(
                spec, level, space, chunk_size, builder, initial_items
            )
    else:
        with multiprocessing.Pool(processes=workers) as pool:
            for level in levels:
                explorations[level] = _explore_level_parallel(
                    spec, level, space, chunk_size, pool, builder
                )
    return ExplorationResult(spec=spec, space=space, workers=workers,
                             chunk_size=chunk_size, levels=explorations)
