"""The schedule-space explorer: orchestration, parallel fan-out, determinism.

``explore()`` resolves the interleaving space of a registered program set
(exhaustive for small spaces, seeded uniform sampling for large ones), streams
it in fixed-size chunks, executes every chunk against fresh engines — in
process, or fanned out over a ``multiprocessing`` pool — and reassembles the
per-schedule records in schedule order.

Three scaling layers sit on the hot path:

* **Streaming** — the schedule stream is generated lazily and dispatched with
  ``imap`` over indexed chunks, so exploring (or sampling) millions of
  schedules holds O(chunk) interleavings in memory, never the full list.
* **Partial-order reduction** (``reduction="sleep-set"``) — equivalent
  interleavings (differing only by commuting adjacent steps of transactions
  with disjoint footprints) are executed once and their classification reused
  for the whole equivalence class; see :mod:`repro.explorer.reduction`.
* **Shared classification cache** (``shared_cache=True``) — parallel workers
  exchange whole-history classifications through a manager dict, snapshot at
  chunk start and published at chunk end, so they stop paying each other's
  cold caches.

Determinism contract: the full output (every record, in order) is a pure
function of ``(spec, levels, mode, max_schedules, seed, reduction)``.  Worker
count, chunk size, and cache sharing only change wall-clock time, never
results — the schedule stream is fixed by the seed before any execution,
chunks are indexed, records are reassembled by chunk index, and
classification is a pure function of the realized history.
``ExplorationResult.fingerprint()`` hashes the record stream so tests can
assert byte-identical serial/parallel output.
"""

from __future__ import annotations

import dataclasses
import hashlib
import multiprocessing
import os
import time
from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple, Union

from ..core.isolation import IsolationLevelName
from ..testbed import is_single_version
from ..workloads.program_sets import ProgramSetSpec, resolve_program_set
from .memo import BatchClassifier
from .reduction import ExecutionPlan, build_execution_plan
from .schedules import Interleaving, ScheduleSpace, schedule_space
from .worker import (
    ChunkResult,
    ChunkTask,
    ScheduleRecord,
    _initial_items,
    execute_chunk,
)

__all__ = [
    "DEFAULT_LEVELS",
    "LevelExploration",
    "ExplorationResult",
    "available_workers",
    "terminal_scope_for",
    "explore",
]


def terminal_scope_for(level: IsolationLevelName) -> str:
    """The commutation oracle's terminal scope for one isolation level.

    Single-version locking engines take the relaxed ``"footprint"`` rule;
    multiversion engines need the component-wide ``"component"`` rule because
    their commits are snapshot boundaries (see :mod:`repro.explorer.reduction`).
    """
    return "footprint" if is_single_version(level) else "component"

#: The Table 4 rows the coverage report mirrors by default.
DEFAULT_LEVELS: Tuple[IsolationLevelName, ...] = (
    IsolationLevelName.READ_UNCOMMITTED,
    IsolationLevelName.READ_COMMITTED,
    IsolationLevelName.REPEATABLE_READ,
    IsolationLevelName.SNAPSHOT_ISOLATION,
    IsolationLevelName.SERIALIZABLE,
)

#: Accepted reduction strategies.
REDUCTIONS = ("none", "sleep-set")


def available_workers() -> int:
    """The usable CPU count (affinity-aware where the platform supports it)."""
    try:
        return len(os.sched_getaffinity(0)) or 1
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


@dataclass(frozen=True)
class LevelExploration:
    """Every schedule record for one isolation level, in schedule order."""

    level: IsolationLevelName
    records: Tuple[ScheduleRecord, ...]
    cache_stats: Dict[str, int]
    duration: float
    executed: int = -1

    def __post_init__(self) -> None:
        if self.executed < 0:
            object.__setattr__(self, "executed", len(self.records))

    @property
    def schedules_per_second(self) -> float:
        """Execution + classification throughput for this level."""
        return len(self.records) / self.duration if self.duration > 0 else float("inf")


@dataclass(frozen=True)
class ExplorationResult:
    """The full outcome of one ``explore()`` call."""

    spec: ProgramSetSpec
    space: ScheduleSpace
    workers: int
    chunk_size: int
    levels: Dict[IsolationLevelName, LevelExploration]
    reduction: str = "none"

    def fingerprint(self) -> str:
        """SHA-256 over every record, in order — identical runs hash identically.

        Timing and cache statistics are deliberately excluded; they vary with
        worker count while the records may not.
        """
        digest = hashlib.sha256()
        for level in sorted(self.levels, key=lambda lvl: lvl.value):
            digest.update(level.value.encode())
            for record in self.levels[level].records:
                digest.update(repr((
                    record.interleaving, record.history, record.serializable,
                    record.phenomena, record.committed, record.aborted,
                    record.blocked_events, record.deadlocks, record.stalled,
                )).encode())
        return digest.hexdigest()

    def total_schedules(self) -> int:
        """Schedules covered (executed or reduction-reused), summed over levels."""
        return sum(len(exploration.records) for exploration in self.levels.values())

    def executed_schedules(self) -> int:
        """Schedules actually run through an engine, summed over levels."""
        return sum(exploration.executed for exploration in self.levels.values())

    def reduction_ratio(self) -> float:
        """Schedules covered per schedule executed (1.0 without reduction)."""
        executed = self.executed_schedules()
        return self.total_schedules() / executed if executed else 1.0


# -- chunked dispatch ---------------------------------------------------------------


def _chunks_of(schedules: Sequence[Interleaving],
               chunk_size: int) -> Iterator[Tuple[int, Tuple[Interleaving, ...]]]:
    """Indexed fixed-size chunks of an already-materialized schedule list."""
    for index, start in enumerate(range(0, len(schedules), chunk_size)):
        yield index, tuple(schedules[start:start + chunk_size])


def _iter_chunk_tasks(spec: ProgramSetSpec, level: IsolationLevelName,
                      chunks: Iterable[Tuple[int, Tuple[Interleaving, ...]]],
                      builder, shared_cache) -> Iterator[ChunkTask]:
    for index, chunk in chunks:
        yield ChunkTask(index, spec, level, chunk, builder, shared_cache)


def _level_chunks(space: ScheduleSpace, plan: Optional[ExecutionPlan],
                  chunk_size: int) -> Iterator[Tuple[int, Tuple[Interleaving, ...]]]:
    """The chunk stream a level executes: reduced representatives or the space."""
    if plan is not None:
        return _chunks_of(plan.executed, chunk_size)
    return space.iter_chunks(chunk_size)


def _assemble(executed_records: Sequence[ScheduleRecord],
              plan: ExecutionPlan,
              schedules: Sequence[Interleaving]) -> List[ScheduleRecord]:
    """Expand representative records back over the full schedule stream.

    Every schedule of the space gets a record: representatives keep their own,
    reduced schedules borrow their representative's classification with the
    interleaving rewritten to their own — equivalence guarantees the realized
    behavior matches up to commuting adjacent steps.
    """
    records: List[ScheduleRecord] = []
    for position, interleaving in enumerate(schedules):
        record = executed_records[plan.assignment[position]]
        if record.interleaving != interleaving:
            record = dataclasses.replace(record, interleaving=interleaving)
        records.append(record)
    return records


def _merge_stats(results: Sequence[ChunkResult]) -> Dict[str, int]:
    merged: Dict[str, int] = {}
    for result in results:
        for key, value in result.cache_stats.items():
            merged[key] = merged.get(key, 0) + value
    return merged


def _explore_level_serial(spec: ProgramSetSpec, level: IsolationLevelName,
                          space: ScheduleSpace, plan: Optional[ExecutionPlan],
                          plan_schedules: Optional[Tuple[Interleaving, ...]],
                          chunk_size: int, builder,
                          initial_items) -> LevelExploration:
    classifier = BatchClassifier(initial_items=initial_items)
    started = time.perf_counter()
    records: List[ScheduleRecord] = []
    tasks = _iter_chunk_tasks(spec, level, _level_chunks(space, plan, chunk_size),
                              builder, None)
    for task in tasks:
        records.extend(execute_chunk(task, classifier).records)
    executed = len(records)
    if plan is not None:
        records = _assemble(records, plan, plan_schedules)
    duration = time.perf_counter() - started
    return LevelExploration(level, tuple(records), dict(classifier.stats),
                            duration, executed=executed)


def _explore_level_parallel(spec: ProgramSetSpec, level: IsolationLevelName,
                            space: ScheduleSpace, plan: Optional[ExecutionPlan],
                            plan_schedules: Optional[Tuple[Interleaving, ...]],
                            chunk_size: int,
                            pool: "multiprocessing.pool.Pool",
                            builder, shared_cache) -> LevelExploration:
    tasks = _iter_chunk_tasks(spec, level, _level_chunks(space, plan, chunk_size),
                              builder, shared_cache)
    started = time.perf_counter()
    # imap pulls tasks from the lazy generator as workers free up, so the
    # parent never materializes the full schedule list; results arrive in
    # submission order, which *is* chunk-index order.
    results = list(pool.imap(execute_chunk, tasks))
    results.sort(key=lambda result: result.chunk_index)
    records: List[ScheduleRecord] = []
    for result in results:
        records.extend(result.records)
    executed = len(records)
    if plan is not None:
        records = _assemble(records, plan, plan_schedules)
    duration = time.perf_counter() - started
    return LevelExploration(level, tuple(records), _merge_stats(results),
                            duration, executed=executed)


def _resolve_worker_count(workers: Union[int, str]) -> int:
    if workers == "auto":
        return max(1, available_workers())
    if isinstance(workers, bool) or not isinstance(workers, int):
        raise ValueError(f"workers must be an int or 'auto', got {workers!r}")
    if workers < 1:
        raise ValueError("workers must be >= 1")
    return workers


def explore(spec: ProgramSetSpec,
            levels: Sequence[IsolationLevelName] = DEFAULT_LEVELS,
            mode: str = "auto", max_schedules: int = 1000, seed: int = 0,
            workers: Union[int, str] = 1, chunk_size: int = 64,
            reduction: str = "none",
            shared_cache: bool = True) -> ExplorationResult:
    """Explore the schedule space of a program set under several isolation levels.

    Parameters
    ----------
    spec:
        A :class:`~repro.workloads.program_sets.ProgramSetSpec` naming a
        registered builder (workers rebuild the programs from it).
    levels:
        Isolation levels to run every schedule under (default: the Table 4 rows
        every engine implements).
    mode, max_schedules, seed:
        Passed to :func:`~repro.explorer.schedules.schedule_space` — exhaustive
        enumeration, seeded sampling, or automatic choice between them.  The
        stream is lazy: schedules are generated chunk by chunk, never held as
        one list.
    workers:
        ``1`` runs in-process (with cross-chunk memoization); ``N > 1`` fans
        chunks out over a process pool; ``"auto"`` uses every usable core
        (:func:`available_workers`).  Results are identical in all cases.
    chunk_size:
        Schedules per work unit.  Affects only load balancing and streaming
        granularity.
    reduction:
        ``"none"`` executes every schedule; ``"sleep-set"`` executes one
        representative per commutation-equivalence class and reuses its
        classification for the rest (see :mod:`repro.explorer.reduction`).
        The commutation oracle is level-aware: single-version locking levels
        drop the component-wide snapshot-boundary terminal rule multiversion
        engines need, so their equivalence classes are coarser and their
        executed counts lower.  Coverage reports are unchanged either way;
        only executed-schedule counts drop.
        Note the record semantics: a reduced schedule's record keeps its own
        interleaving but carries its *representative's* realized history
        (equivalent up to the order of commuting adjacent steps), so a
        coverage witness pair under reduction shows the class's
        representative history, not a replay of that exact interleaving.
    shared_cache:
        When parallel, share whole-history classifications across workers via
        a manager dict (snapshot at chunk start, publish at chunk end).  Pure
        optimization — never changes records.
    """
    workers = _resolve_worker_count(workers)
    if chunk_size < 1:
        raise ValueError("chunk_size must be >= 1")
    if reduction not in REDUCTIONS:
        raise ValueError(f"unknown reduction {reduction!r}; choose from {REDUCTIONS}")
    # Resolve the builder here, in the caller's process, so sets registered by
    # the calling script reach spawn-started workers (pickled by reference).
    builder = resolve_program_set(spec)
    database, programs = builder(**spec.kwargs())
    initial_items = _initial_items(database)
    space = schedule_space(programs, mode=mode, max_schedules=max_schedules, seed=seed)

    # The reduction plan depends on the level only through the terminal rule:
    # single-version locking engines use the relaxed "footprint" scope, while
    # multiversion engines need the component-wide "component" scope (commits
    # are snapshot boundaries).  At most two plans are built and shared across
    # the levels of each kind; commutation is otherwise judged on static
    # footprints that hold under every engine.  Canonicalization walks the
    # whole stream anyway, so the stream is materialized once alongside the
    # O(selected) assignments rather than regenerated per level.
    plans: Dict[str, ExecutionPlan] = {}
    plan_schedules: Optional[Tuple[Interleaving, ...]] = None
    if reduction == "sleep-set":
        plan_schedules = tuple(space)
        for scope in {terminal_scope_for(level) for level in levels}:
            plans[scope] = build_execution_plan(plan_schedules, programs,
                                                terminal_scope=scope)

    def _plan_for(level: IsolationLevelName) -> Optional[ExecutionPlan]:
        if not plans:
            return None
        return plans[terminal_scope_for(level)]

    explorations: Dict[IsolationLevelName, LevelExploration] = {}
    if workers == 1:
        for level in levels:
            explorations[level] = _explore_level_serial(
                spec, level, space, _plan_for(level), plan_schedules,
                chunk_size, builder, initial_items
            )
    else:
        manager = multiprocessing.Manager() if shared_cache else None
        try:
            # One shared dict across levels too: classification is level-
            # independent, and serial prefixes realize identical histories
            # under different engines.
            shared = manager.dict() if manager is not None else None
            with multiprocessing.Pool(processes=workers) as pool:
                for level in levels:
                    explorations[level] = _explore_level_parallel(
                        spec, level, space, _plan_for(level), plan_schedules,
                        chunk_size, pool, builder, shared
                    )
        finally:
            if manager is not None:
                manager.shutdown()
    return ExplorationResult(spec=spec, space=space, workers=workers,
                             chunk_size=chunk_size, levels=explorations,
                             reduction=reduction)
