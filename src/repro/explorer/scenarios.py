"""The scenarios → explorer bridge: exhaust an anomaly variant's schedule space.

The paper establishes each Table 4 cell by exhibiting *one* adversarial
interleaving; :mod:`repro.workloads.scenarios` replays exactly those.  This
module upgrades the claim from an anecdote to a measurement: for one scenario
variant under one isolation level, enumerate (or sample) the variant's entire
interleaving space with :func:`~repro.explorer.schedules.schedule_space`,
execute every schedule against a fresh engine, and evaluate the variant's
``manifests`` predicate on every realized outcome.  The result per variant is
a manifestation *set* — how many schedules produced the anomaly's wrong
result, with the first manifesting interleaving recorded as a replayable
witness — and per scenario a measured Table 4 cell:

* every variant manifests somewhere in its space → ``POSSIBLE``
* no variant manifests anywhere                  → ``NOT_POSSIBLE``
* some spaces contain a witness, some do not     → ``SOMETIMES_POSSIBLE``

Stalled and engine-aborted schedules are the *common case* out here (locking
engines block and deadlock freely once interleavings stop being hand-picked);
both are first-class non-manifesting results, never errors.

``reduction="sleep-set"`` executes one representative per commutation
equivalence class (level-aware: locking levels use the relaxed ``"footprint"``
terminal scope, multiversion levels the snapshot-safe ``"component"`` scope —
see :mod:`repro.explorer.reduction`) and reuses its verdict for the class;
equivalence guarantees every member realizes the same observed values, final
state, and commit statuses, so ``manifests`` cannot tell members apart.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..core.isolation import IsolationLevelName, Possibility
from ..engine.programs import TransactionProgram
from ..engine.scheduler import ScheduleRunner
from ..static_analysis import Verdict, analyze_scenario_programs
from ..testbed import make_engine
from ..workloads.scenarios import AnomalyScenario, ScenarioVariant
from .explorer import REDUCTIONS, terminal_scope_for
from .options import ExploreOptions
from .reduction import ExecutionPlan, build_execution_plan
from .schedules import Interleaving, ScheduleSpace, schedule_space

__all__ = [
    "VariantExploration",
    "ScenarioExploration",
    "explore_variant",
    "explore_scenario",
]

#: Default schedule budget per variant: every curated scenario variant's space
#: is far smaller (the largest, A5B through cursors, has 924 interleavings),
#: so the default explores exhaustively.
DEFAULT_MAX_SCHEDULES = 2000

#: Reduction plans memoized across levels: a plan is a pure function of the
#: schedule stream (the space's recipe), the programs' static footprints, and
#: the terminal scope — so a full Table 4 sweep builds two plans per variant
#: (one per scope) instead of one per level.  Bounded: scenario sweeps touch
#: a few dozen (variant, scope) pairs.
_PLAN_CACHE: dict = {}
_PLAN_CACHE_MAX = 128


def _cached_plan(space: ScheduleSpace, programs: Sequence[TransactionProgram],
                 scope: str) -> ExecutionPlan:
    key = (
        (space.txns, space.step_counts, space.mode, space.seed,
         space.selected, space.dedupe),
        tuple((program.txn, program.footprints()) for program in programs),
        scope,
    )
    plan = _PLAN_CACHE.get(key)
    if plan is None:
        if len(_PLAN_CACHE) >= _PLAN_CACHE_MAX:
            _PLAN_CACHE.clear()
        plan = build_execution_plan(space.schedules, programs,
                                    terminal_scope=scope)
        _PLAN_CACHE[key] = plan
    return plan


@dataclass(frozen=True)
class _Verdict:
    """What one executed representative contributes to its equivalence class."""

    manifested: bool
    stalled: bool
    deadlocked: bool
    engine_aborted: bool
    history: str


@dataclass(frozen=True)
class VariantExploration:
    """The manifestation measurement of one variant's space under one level."""

    scenario_code: str
    variant_name: str
    level: IsolationLevelName
    mode: str
    space_size: int
    schedules: int
    executed: int
    manifested: int
    stalled: int
    deadlocked: int
    engine_aborted: int
    witness: Optional[Interleaving]
    witness_history: Optional[str]
    #: True when the static dependency graph proved the scenario impossible
    #: at this level and the whole space was skipped unexecuted.
    pruned: bool = False
    #: The static proof sketch, when pruned.
    static_reason: str = ""

    @property
    def manifests(self) -> bool:
        """Whether any schedule in the explored space produced the anomaly."""
        return self.manifested > 0

    @property
    def frequency(self) -> float:
        """Fraction of explored schedules whose outcome manifested."""
        return self.manifested / self.schedules if self.schedules else 0.0


@dataclass(frozen=True)
class ScenarioExploration:
    """One measured Table 4 cell: every variant space of a scenario, explored."""

    scenario_code: str
    level: IsolationLevelName
    variants: Tuple[VariantExploration, ...]

    @property
    def possibility(self) -> Possibility:
        """The cell verdict, aggregated exactly like :func:`evaluate_scenario`."""
        flags = [variant.manifests for variant in self.variants]
        if all(flags):
            return Possibility.POSSIBLE
        if not any(flags):
            return Possibility.NOT_POSSIBLE
        return Possibility.SOMETIMES_POSSIBLE

    @property
    def witness(self) -> Optional[Tuple[str, Interleaving, str]]:
        """``(variant name, interleaving, history shorthand)`` of the first witness."""
        for variant in self.variants:
            if variant.witness is not None:
                return (variant.variant_name, variant.witness,
                        variant.witness_history or "")
        return None

    @property
    def schedules(self) -> int:
        """Schedules covered across every variant space."""
        return sum(variant.schedules for variant in self.variants)

    @property
    def stalled(self) -> int:
        """Stalled schedules across every variant space."""
        return sum(variant.stalled for variant in self.variants)

    @property
    def pruned_variants(self) -> int:
        """Variant spaces skipped by the static-impossibility pass."""
        return sum(1 for variant in self.variants if variant.pruned)


def explore_variant(variant: ScenarioVariant, level: IsolationLevelName,
                    scenario_code: str = "", mode: str = "auto",
                    max_schedules: int = DEFAULT_MAX_SCHEDULES, seed: int = 0,
                    reduction: str = "sleep-set",
                    static_pruning: bool = False,
                    options: Optional[ExploreOptions] = None,
                    ) -> VariantExploration:
    """Evaluate ``variant.manifests`` over its whole interleaving space.

    An :class:`~repro.explorer.options.ExploreOptions` may be passed instead
    of the loose knobs; its ``mode``/``max_schedules``/``seed``/``reduction``/
    ``static_pruning`` fields then take precedence (the level still comes
    from the ``level`` argument — a variant exploration is per-level by
    construction).

    Every schedule runs against a fresh database and a fresh engine for
    ``level``; stalled outcomes are non-manifesting by definition (their
    ``manifests`` predicate is never consulted), engine-aborted outcomes flow
    through the predicate exactly like the curated path does.  The witness is
    the first manifesting schedule in the space's deterministic stream order;
    under reduction its recorded history is its class representative's
    (identical up to the order of commuting adjacent steps).

    With ``static_pruning`` (and a ``scenario_code``), the static dependency
    graph is consulted first: a variant whose scenario is statically
    ``IMPOSSIBLE`` at this level returns immediately with ``pruned=True``,
    zero schedules executed, and the proof sketch in ``static_reason`` —
    sound because an impossible scenario's ``manifests`` predicate cannot be
    satisfied by any schedule in the space.
    """
    if options is not None:
        mode = options.mode
        max_schedules = options.max_schedules
        seed = options.seed
        reduction = options.reduction
        static_pruning = options.static_pruning
    if reduction not in REDUCTIONS:
        raise ValueError(f"unknown reduction {reduction!r}; choose from {REDUCTIONS}")
    programs = variant.build_programs()
    if static_pruning and scenario_code:
        verdict = analyze_scenario_programs(programs, scenario_code, level)
        if verdict.verdict is Verdict.IMPOSSIBLE:
            return VariantExploration(
                scenario_code=scenario_code, variant_name=variant.name,
                level=level, mode="pruned", space_size=0, schedules=0,
                executed=0, manifested=0, stalled=0, deadlocked=0,
                engine_aborted=0, witness=None, witness_history=None,
                pruned=True, static_reason=verdict.reason,
            )
    space = schedule_space(programs, mode=mode, max_schedules=max_schedules,
                           seed=seed)
    schedules = space.schedules
    plan = None
    to_execute: Sequence[Interleaving] = schedules
    if reduction == "sleep-set":
        plan = _cached_plan(space, programs, terminal_scope_for(level))
        to_execute = plan.executed

    runner: Optional[ScheduleRunner] = None
    verdicts: List[_Verdict] = []
    for schedule in to_execute:
        database = variant.build_database()
        engine = make_engine(database, level)
        if runner is None:
            runner = ScheduleRunner(engine, programs, schedule)
            outcome = runner.run()
        else:
            outcome = runner.replay(engine, schedule)
        verdicts.append(_Verdict(
            manifested=False if outcome.stalled else variant.manifests(outcome),
            stalled=outcome.stalled,
            deadlocked=bool(outcome.deadlocks),
            engine_aborted=any(
                reason != "program abort"
                for reason in outcome.abort_reasons.values()
            ),
            history=outcome.history.to_shorthand(),
        ))

    manifested = stalled = deadlocked = engine_aborted = 0
    witness: Optional[Interleaving] = None
    witness_history: Optional[str] = None
    for position, schedule in enumerate(schedules):
        verdict = verdicts[plan.assignment[position] if plan else position]
        if verdict.manifested:
            manifested += 1
            if witness is None:
                witness = schedule
                witness_history = verdict.history
        if verdict.stalled:
            stalled += 1
        if verdict.deadlocked:
            deadlocked += 1
        if verdict.engine_aborted:
            engine_aborted += 1

    return VariantExploration(
        scenario_code=scenario_code,
        variant_name=variant.name,
        level=level,
        mode=space.mode,
        space_size=space.total,
        schedules=len(schedules),
        executed=len(to_execute),
        manifested=manifested,
        stalled=stalled,
        deadlocked=deadlocked,
        engine_aborted=engine_aborted,
        witness=witness,
        witness_history=witness_history,
    )


def explore_scenario(scenario: AnomalyScenario, level: IsolationLevelName,
                     mode: str = "auto",
                     max_schedules: int = DEFAULT_MAX_SCHEDULES, seed: int = 0,
                     reduction: str = "sleep-set",
                     static_pruning: bool = False,
                     options: Optional[ExploreOptions] = None,
                     ) -> ScenarioExploration:
    """Explore every variant space of a scenario under one isolation level.

    ``static_pruning`` skips the variant spaces the static dependency graph
    proves impossible at this level (they count as non-manifesting, exactly
    the verdict executing them would reach); the cell aggregation is
    unchanged.  As with :func:`explore_variant`, an
    :class:`~repro.explorer.options.ExploreOptions` may replace the loose
    knobs.
    """
    if not scenario.variants:
        raise ValueError(
            f"scenario {scenario.code} has no variants; refusing to call an "
            f"empty scenario POSSIBLE (all([]) is True)"
        )
    return ScenarioExploration(
        scenario_code=scenario.code,
        level=level,
        variants=tuple(
            explore_variant(variant, level, scenario_code=scenario.code,
                            mode=mode, max_schedules=max_schedules, seed=seed,
                            reduction=reduction, static_pruning=static_pruning,
                            options=options)
            for variant in scenario.variants
        ),
    )
