"""Enumeration and seeded sampling of the interleaving space of a program set.

An *interleaving* is a sequence of transaction ids, one slot per program step,
saying whose step the scheduler attempts next.  For programs with step counts
``n_1 .. n_k`` the space of distinct interleavings is the multinomial
coefficient ``(n_1 + .. + n_k)! / (n_1! * .. * n_k!)`` — tiny program sets can
be enumerated exhaustively, larger ones are sampled uniformly at random under
a seed.  Everything here is pure combinatorics: deterministic given the seed,
independent of worker counts, and oblivious to what the schedules later do to
an engine.

The space is **streamed**, never materialized: :class:`ScheduleSpace` holds a
recipe (step counts, mode, seed, budget), and both :meth:`ScheduleSpace.__iter__`
and :meth:`ScheduleSpace.iter_chunks` regenerate the identical schedule stream
on demand, so sampling 10M+ schedules of a huge space never builds a 10M-tuple
list — iteration is O(chunk) memory in the i.i.d. regime.  Deduplicated
samples additionally track a seen-set whose size is hard-bounded by
``_DEDUPE_TRACK_MAX`` (whole-space "samples" stream the exhaustive
enumeration instead and need no seen-set; see :func:`_should_dedupe`).
``ScheduleSpace.schedules`` still materializes the full tuple for callers
that want it (tests, small spaces); the explorer's hot path does not.
"""

from __future__ import annotations

import math
import random
from typing import Iterator, List, Optional, Sequence, Set, Tuple

from ..engine.programs import TransactionProgram
from ..workloads.generators import SeedLike, as_rng

__all__ = [
    "Interleaving",
    "ScheduleSpace",
    "count_interleavings",
    "enumerate_interleavings",
    "sample_interleavings",
    "iter_sampled_interleavings",
    "schedule_space",
]

#: One interleaving: transaction ids, one per step slot.
Interleaving = Tuple[int, ...]

#: Hard bound on rejection-sampling seen-set memory: deduplicated sampling
#: never tracks more than this many schedules.  Samples up to the bound
#: dedupe with a seen-set; a sample covering its whole space (``count >=
#: total``) dedupes for free by streaming the exhaustive enumeration; every
#: other configuration streams i.i.d. draws with no tracking at all.
_DEDUPE_TRACK_MAX = 200_000


def count_interleavings(step_counts: Sequence[int]) -> int:
    """The number of distinct interleavings (the multinomial coefficient)."""
    if any(count < 0 for count in step_counts):
        raise ValueError("step counts must be non-negative")
    total = sum(step_counts)
    result = math.factorial(total)
    for count in step_counts:
        result //= math.factorial(count)
    return result


def enumerate_interleavings(txns: Sequence[int],
                            step_counts: Sequence[int]) -> Iterator[Interleaving]:
    """Every distinct interleaving, in lexicographic order of transaction ids.

    ``txns[i]`` has ``step_counts[i]`` slots.  The enumeration is a standard
    multiset-permutation backtrack, produced lazily — consuming it holds one
    prefix in memory, never the whole space.
    """
    if len(txns) != len(step_counts):
        raise ValueError("txns and step_counts must align")
    order = sorted(range(len(txns)), key=lambda index: txns[index])
    ids = [txns[index] for index in order]
    remaining = [step_counts[index] for index in order]
    total = sum(remaining)
    prefix: List[int] = []

    def backtrack() -> Iterator[Interleaving]:
        if len(prefix) == total:
            yield tuple(prefix)
            return
        for position, txn in enumerate(ids):
            if remaining[position] == 0:
                continue
            remaining[position] -= 1
            prefix.append(txn)
            yield from backtrack()
            prefix.pop()
            remaining[position] += 1

    return backtrack()


def _should_dedupe(count: int, total: int) -> bool:
    """Whether a sample of ``count`` from a space of ``total`` is deduplicated.

    Two regimes dedupe, and both respect the :data:`_DEDUPE_TRACK_MAX` memory
    bound:

    * ``count <= _DEDUPE_TRACK_MAX`` — rejection-sample with a seen-set of at
      most ``count`` entries.
    * ``count >= total`` — the "sample" covers the whole space, which streams
      through the exhaustive enumerator with **no** seen-set at all.

    Everything else streams i.i.d. draws without tracking.  In particular, a
    ``> _DEDUPE_TRACK_MAX`` sample of a space less than 4x its size — which a
    previous policy deduplicated because duplicates are statistically
    plausible there — now stays i.i.d.: plausible duplicates are not worth an
    unbounded (up to ``min(count, total)``-entry) seen-set.  The seen-set
    therefore never exceeds ``_DEDUPE_TRACK_MAX`` entries for any
    ``(count, total)``.
    """
    return count <= _DEDUPE_TRACK_MAX or count >= total


def iter_sampled_interleavings(txns: Sequence[int], step_counts: Sequence[int],
                               count: int, seed: SeedLike,
                               dedupe: Optional[bool] = None) -> Iterator[Interleaving]:
    """Stream a seeded uniform sample of the interleaving space.

    Shuffling the flat slot list is uniform over slot permutations, and every
    distinct interleaving corresponds to the same number of permutations
    (``prod n_i!``), so each draw is exactly uniform over the space.  When
    ``dedupe`` is on (the default policy is :func:`_should_dedupe`), draws
    already seen are rejected — still seeded and deterministic — and the
    stream yields ``min(count, total)`` *distinct* schedules; otherwise the
    stream is i.i.d. and duplicates are possible.  Asking for the whole space
    (``count >= total``) streams the exhaustive enumeration directly, in
    lexicographic order.
    """
    rng = as_rng(seed)
    slots: List[int] = []
    for txn, steps in zip(txns, step_counts):
        slots.extend([txn] * steps)
    total = count_interleavings(step_counts)
    if dedupe is None:
        dedupe = _should_dedupe(count, total)

    if not dedupe:
        for _ in range(count):
            drawn = list(slots)
            rng.shuffle(drawn)
            yield tuple(drawn)
        return

    target = min(count, total)
    if target == total:
        # "Sampling" the whole space: rejection would coupon-collect through
        # ~total*ln(total) draws; the exhaustive enumerator streams the same
        # distinct set directly (in lexicographic rather than seeded order).
        yield from enumerate_interleavings(txns, step_counts)
        return
    seen: Set[Interleaving] = set()
    while len(seen) < target:
        drawn = list(slots)
        rng.shuffle(drawn)
        schedule = tuple(drawn)
        if schedule in seen:
            continue
        seen.add(schedule)
        yield schedule


def sample_interleavings(txns: Sequence[int], step_counts: Sequence[int],
                         count: int, seed: SeedLike,
                         dedupe: Optional[bool] = None) -> List[Interleaving]:
    """A seeded uniform sample of the space, as a list.

    Deduplicated by default policy (see :func:`_should_dedupe`): samples up
    to ``_DEDUPE_TRACK_MAX`` and whole-space samples are distinct; larger
    sub-space samples stream i.i.d. and may repeat schedules — the seen-set
    memory bound wins over distinctness there.  The draw depends only on the
    seed.
    """
    return list(iter_sampled_interleavings(txns, step_counts, count, seed,
                                           dedupe=dedupe))


class ScheduleSpace:
    """The resolved schedule stream the explorer will execute.

    A lazy, re-iterable source: the schedule stream is a pure function of
    (program step counts, mode, seed, budget) and is regenerated identically
    on every iteration — never dependent on worker or chunk configuration,
    never materialized unless :attr:`schedules` is explicitly read.

    ``total`` is the size of the full interleaving space; ``selected`` is how
    many schedules the stream yields (the whole space when exhaustive, the
    sample budget otherwise); ``distinct`` is the number of *distinct*
    schedules among them — equal to ``selected`` for exhaustive and deduped
    sample streams, ``None`` when a huge-space i.i.d. sample skips duplicate
    tracking.
    """

    def __init__(self, txns: Tuple[int, ...], step_counts: Tuple[int, ...],
                 total: int, mode: str, seed: int, selected: int,
                 dedupe: bool = False):
        self.txns = txns
        self.step_counts = step_counts
        self.total = total
        self.mode = mode
        self.seed = seed
        self.selected = selected
        self.dedupe = dedupe
        self._materialized: Optional[Tuple[Interleaving, ...]] = None

    @property
    def distinct(self) -> Optional[int]:
        """Distinct schedules in the stream (``None`` when not tracked)."""
        if self.mode == "exhaustive" or self.dedupe:
            return self.selected
        return None

    def __len__(self) -> int:
        return self.selected

    def __iter__(self) -> Iterator[Interleaving]:
        """Stream the schedule set, regenerated deterministically each time."""
        if self._materialized is not None:
            return iter(self._materialized)
        if self.mode == "exhaustive":
            return enumerate_interleavings(self.txns, self.step_counts)
        return iter_sampled_interleavings(self.txns, self.step_counts,
                                          self.selected, self.seed,
                                          dedupe=self.dedupe)

    def iter_chunks(self, chunk_size: int) -> Iterator[Tuple[int, Tuple[Interleaving, ...]]]:
        """Stream ``(chunk_index, schedules)`` pairs of at most ``chunk_size``.

        Chunks are produced lazily from the same deterministic stream, so a
        consumer holding one chunk at a time uses O(chunk_size) memory
        regardless of the space or sample size.
        """
        if chunk_size < 1:
            raise ValueError("chunk_size must be >= 1")
        index = 0
        buffer: List[Interleaving] = []
        for schedule in self:
            buffer.append(schedule)
            if len(buffer) == chunk_size:
                yield index, tuple(buffer)
                index += 1
                buffer = []
        if buffer:
            yield index, tuple(buffer)

    @property
    def schedules(self) -> Tuple[Interleaving, ...]:
        """The full schedule tuple, materialized on first access and cached.

        Convenience for small spaces and tests; the explorer's streaming path
        never touches it.
        """
        if self._materialized is None:
            self._materialized = tuple(self)
        return self._materialized

    def _recipe(self) -> Tuple:
        return (self.txns, self.step_counts, self.total, self.mode, self.seed,
                self.selected, self.dedupe)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ScheduleSpace):
            return NotImplemented
        return self._recipe() == other._recipe()

    def __hash__(self) -> int:
        return hash(self._recipe())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"ScheduleSpace(mode={self.mode!r}, total={self.total}, "
                f"selected={self.selected}, seed={self.seed}, dedupe={self.dedupe})")


def schedule_space(programs: Sequence[TransactionProgram], mode: str = "auto",
                   max_schedules: int = 1000, seed: int = 0) -> ScheduleSpace:
    """Resolve the schedule stream for a program set.

    ``mode`` is ``"exhaustive"`` (enumerate everything; fails if the space
    exceeds ``max_schedules``), ``"sample"`` (seeded uniform sample of
    ``max_schedules`` schedules, deduplicated when tracking is feasible), or
    ``"auto"`` (exhaustive when the space fits within ``max_schedules``, else
    sample).  No schedules are generated here — the returned space streams
    them on demand.
    """
    if mode not in ("auto", "exhaustive", "sample"):
        raise ValueError(f"unknown schedule mode {mode!r}")
    txns = tuple(program.txn for program in programs)
    step_counts = tuple(len(program) for program in programs)
    total = count_interleavings(step_counts)

    if mode == "auto":
        mode = "exhaustive" if total <= max_schedules else "sample"
    if mode == "exhaustive":
        if total > max_schedules:
            raise ValueError(
                f"interleaving space has {total} schedules, above the "
                f"max_schedules={max_schedules} budget; use mode='sample'"
            )
        return ScheduleSpace(txns=txns, step_counts=step_counts, total=total,
                             mode=mode, seed=seed, selected=total)
    dedupe = _should_dedupe(max_schedules, total)
    selected = min(max_schedules, total) if dedupe else max_schedules
    return ScheduleSpace(txns=txns, step_counts=step_counts, total=total,
                         mode=mode, seed=seed, selected=selected, dedupe=dedupe)
