"""Enumeration and seeded sampling of the interleaving space of a program set.

An *interleaving* is a sequence of transaction ids, one slot per program step,
saying whose step the scheduler attempts next.  For programs with step counts
``n_1 .. n_k`` the space of distinct interleavings is the multinomial
coefficient ``(n_1 + .. + n_k)! / (n_1! * .. * n_k!)`` — tiny program sets can
be enumerated exhaustively, larger ones are sampled uniformly at random under
a seed.  Everything here is pure combinatorics: deterministic given the seed,
independent of worker counts, and oblivious to what the schedules later do to
an engine.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass
from typing import Iterator, List, Sequence, Tuple

from ..engine.programs import TransactionProgram
from ..workloads.generators import SeedLike, as_rng

__all__ = [
    "Interleaving",
    "ScheduleSpace",
    "count_interleavings",
    "enumerate_interleavings",
    "sample_interleavings",
    "schedule_space",
]

#: One interleaving: transaction ids, one per step slot.
Interleaving = Tuple[int, ...]


def count_interleavings(step_counts: Sequence[int]) -> int:
    """The number of distinct interleavings (the multinomial coefficient)."""
    if any(count < 0 for count in step_counts):
        raise ValueError("step counts must be non-negative")
    total = sum(step_counts)
    result = math.factorial(total)
    for count in step_counts:
        result //= math.factorial(count)
    return result


def enumerate_interleavings(txns: Sequence[int],
                            step_counts: Sequence[int]) -> Iterator[Interleaving]:
    """Every distinct interleaving, in lexicographic order of transaction ids.

    ``txns[i]`` has ``step_counts[i]`` slots.  The enumeration is a standard
    multiset-permutation backtrack; for the small program sets the exhaustive
    mode targets (a handful of transactions of a few steps each) the whole
    space fits comfortably in memory.
    """
    if len(txns) != len(step_counts):
        raise ValueError("txns and step_counts must align")
    order = sorted(range(len(txns)), key=lambda index: txns[index])
    ids = [txns[index] for index in order]
    remaining = [step_counts[index] for index in order]
    total = sum(remaining)
    prefix: List[int] = []

    def backtrack() -> Iterator[Interleaving]:
        if len(prefix) == total:
            yield tuple(prefix)
            return
        for position, txn in enumerate(ids):
            if remaining[position] == 0:
                continue
            remaining[position] -= 1
            prefix.append(txn)
            yield from backtrack()
            prefix.pop()
            remaining[position] += 1

    return backtrack()


def sample_interleavings(txns: Sequence[int], step_counts: Sequence[int],
                         count: int, seed: SeedLike) -> List[Interleaving]:
    """``count`` interleavings drawn i.i.d. uniformly from the space.

    Shuffling the flat slot list is uniform over slot permutations, and every
    distinct interleaving corresponds to the same number of permutations
    (``prod n_i!``), so the induced distribution over interleavings is exactly
    uniform.  Duplicates are possible, as with any i.i.d. sample; the draw
    depends only on the seed.
    """
    rng = as_rng(seed)
    slots: List[int] = []
    for txn, steps in zip(txns, step_counts):
        slots.extend([txn] * steps)
    samples: List[Interleaving] = []
    for _ in range(count):
        drawn = list(slots)
        rng.shuffle(drawn)
        samples.append(tuple(drawn))
    return samples


@dataclass(frozen=True)
class ScheduleSpace:
    """The resolved schedule set the explorer will execute.

    ``total`` is the size of the full interleaving space; ``schedules`` is
    either that whole space (``mode == "exhaustive"``) or a seeded uniform
    sample of it (``mode == "sample"``).  The schedule list is deterministic
    given (program step counts, mode, seed, limit) and never depends on
    worker or chunk configuration.
    """

    txns: Tuple[int, ...]
    step_counts: Tuple[int, ...]
    total: int
    mode: str
    seed: int
    schedules: Tuple[Interleaving, ...]

    def __len__(self) -> int:
        return len(self.schedules)


def schedule_space(programs: Sequence[TransactionProgram], mode: str = "auto",
                   max_schedules: int = 1000, seed: int = 0) -> ScheduleSpace:
    """Resolve the schedule set for a program set.

    ``mode`` is ``"exhaustive"`` (enumerate everything; fails if the space
    exceeds ``max_schedules``), ``"sample"`` (seeded uniform sample of
    ``max_schedules``), or ``"auto"`` (exhaustive when the space fits within
    ``max_schedules``, else sample).
    """
    if mode not in ("auto", "exhaustive", "sample"):
        raise ValueError(f"unknown schedule mode {mode!r}")
    txns = tuple(program.txn for program in programs)
    step_counts = tuple(len(program) for program in programs)
    total = count_interleavings(step_counts)

    if mode == "auto":
        mode = "exhaustive" if total <= max_schedules else "sample"
    if mode == "exhaustive":
        if total > max_schedules:
            raise ValueError(
                f"interleaving space has {total} schedules, above the "
                f"max_schedules={max_schedules} budget; use mode='sample'"
            )
        schedules = tuple(enumerate_interleavings(txns, step_counts))
    else:
        schedules = tuple(sample_interleavings(txns, step_counts, max_schedules, seed))
    return ScheduleSpace(txns=txns, step_counts=step_counts, total=total,
                         mode=mode, seed=seed, schedules=schedules)
