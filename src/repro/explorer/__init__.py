"""Schedule-space exploration: enumerate or sample interleavings, execute them
in parallel, and measure which anomalies each isolation level actually admits.

Quick use::

    from repro.explorer import explore, ProgramSetSpec
    from repro.analysis.coverage import build_coverage_report

    spec = ProgramSetSpec.make("increments", transactions=2)
    result = explore(spec, max_schedules=500, seed=7, workers=4)
    print(build_coverage_report(result).render())

The public surface:

* :func:`explore` / :class:`ExplorationResult` — the orchestrator
  (`explorer.py`), with a hard determinism contract: output depends only on
  the spec, levels, mode, budget, seed, and reduction — never on worker
  count.  Schedules stream lazily (O(chunk) memory), ``workers="auto"`` uses
  every usable core, and parallel workers share the classification cache.
* :mod:`~repro.explorer.schedules` — interleaving combinatorics (multinomial
  counting, exhaustive enumeration, seeded deduplicated sampling), streamed.
* :mod:`~repro.explorer.reduction` — sleep-set/DPOR-style partial-order
  reduction: execute one representative per commutation-equivalence class.
* :mod:`~repro.explorer.scenarios` — the Table 4 bridge: exhaust a scenario
  variant's interleaving space and measure how often its anomaly manifests,
  with replayable witness interleavings (``explore_variant`` /
  ``explore_scenario``).
* :mod:`~repro.explorer.trie_executor` — the prefix-sharing trie executor:
  one testbed per (spec, level), checkpoint/restore instead of rebuild, and
  schedules re-executing only their divergent suffix.
* :mod:`~repro.explorer.worker` — the picklable process-pool work units.
* :mod:`~repro.explorer.memo` — memoized batched classification with
  prefix-shared dependency-graph construction and cross-process cache
  exchange.
"""

from .explorer import (
    DEFAULT_LEVELS,
    ExplorationResult,
    LevelExploration,
    available_workers,
    explore,
)
from .options import REDUCTIONS, ExploreOptions
from .memo import BatchClassifier, HistoryClassification, PrefixGraphBuilder
from .reduction import (
    CommutationOracle,
    ExecutionPlan,
    StreamingReducer,
    build_execution_plan,
)
from .batch_kernel import BatchStats, build_batch_kernel, numpy_available
from .trie_executor import TrieExecutor, TrieStats
from .scenarios import (
    ScenarioExploration,
    VariantExploration,
    explore_scenario,
    explore_variant,
)
from .schedules import (
    ScheduleSpace,
    count_interleavings,
    enumerate_interleavings,
    iter_sampled_interleavings,
    sample_interleavings,
    schedule_space,
)
from .worker import ChunkResult, ChunkTask, ScheduleRecord, execute_chunk

# Re-exported so explorer callers can build specs without a second import.
from ..workloads.program_sets import (
    ProgramSetSpec,
    available_program_sets,
    build_program_set,
    register_program_set,
)

__all__ = [
    "DEFAULT_LEVELS",
    "REDUCTIONS",
    "ExploreOptions",
    "ExplorationResult",
    "LevelExploration",
    "available_workers",
    "explore",
    "BatchClassifier",
    "HistoryClassification",
    "PrefixGraphBuilder",
    "CommutationOracle",
    "ExecutionPlan",
    "StreamingReducer",
    "build_execution_plan",
    "BatchStats",
    "build_batch_kernel",
    "numpy_available",
    "TrieExecutor",
    "TrieStats",
    "ScenarioExploration",
    "VariantExploration",
    "explore_scenario",
    "explore_variant",
    "ScheduleSpace",
    "count_interleavings",
    "enumerate_interleavings",
    "iter_sampled_interleavings",
    "sample_interleavings",
    "schedule_space",
    "ChunkResult",
    "ChunkTask",
    "ScheduleRecord",
    "execute_chunk",
    "ProgramSetSpec",
    "available_program_sets",
    "build_program_set",
    "register_program_set",
]
