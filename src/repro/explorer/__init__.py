"""Schedule-space exploration: enumerate or sample interleavings, execute them
in parallel, and measure which anomalies each isolation level actually admits.

Quick use::

    from repro.explorer import explore, ProgramSetSpec
    from repro.analysis.coverage import build_coverage_report

    spec = ProgramSetSpec.make("increments", transactions=2)
    result = explore(spec, max_schedules=500, seed=7, workers=4)
    print(build_coverage_report(result).render())

The public surface:

* :func:`explore` / :class:`ExplorationResult` — the orchestrator
  (`explorer.py`), with a hard determinism contract: output depends only on
  the spec, levels, mode, budget, and seed — never on worker count.
* :mod:`~repro.explorer.schedules` — interleaving combinatorics (multinomial
  counting, exhaustive enumeration, seeded uniform sampling).
* :mod:`~repro.explorer.worker` — the picklable process-pool work units.
* :mod:`~repro.explorer.memo` — memoized batched classification with
  prefix-shared dependency-graph construction.
"""

from .explorer import (
    DEFAULT_LEVELS,
    ExplorationResult,
    LevelExploration,
    available_workers,
    explore,
)
from .memo import BatchClassifier, HistoryClassification, PrefixGraphBuilder
from .schedules import (
    ScheduleSpace,
    count_interleavings,
    enumerate_interleavings,
    sample_interleavings,
    schedule_space,
)
from .worker import ChunkResult, ChunkTask, ScheduleRecord, execute_chunk

# Re-exported so explorer callers can build specs without a second import.
from ..workloads.program_sets import (
    ProgramSetSpec,
    available_program_sets,
    build_program_set,
    register_program_set,
)

__all__ = [
    "DEFAULT_LEVELS",
    "ExplorationResult",
    "LevelExploration",
    "available_workers",
    "explore",
    "BatchClassifier",
    "HistoryClassification",
    "PrefixGraphBuilder",
    "ScheduleSpace",
    "count_interleavings",
    "enumerate_interleavings",
    "sample_interleavings",
    "schedule_space",
    "ChunkResult",
    "ChunkTask",
    "ScheduleRecord",
    "execute_chunk",
    "ProgramSetSpec",
    "available_program_sets",
    "build_program_set",
    "register_program_set",
]
