"""Memoized batched history classification for the schedule-space explorer.

Exploring an interleaving space produces thousands of realized histories that
are heavily redundant in two ways:

* **Whole-history duplicates** — many interleavings realize the *same*
  history (blocking collapses schedule prefixes), so classification results
  are cached per distinct history.
* **Shared prefixes** — distinct realized histories usually agree on a long
  prefix, so dependency-graph construction is organized as a trie over
  operation sequences: each trie node stores the conflict edges its operation
  contributes and a persistent per-item/per-predicate conflict index, and a
  history only pays for the suffix the trie has not seen before.  This is the
  incremental-maintenance idea of Berkholz et al.'s "answering queries under
  updates" applied to the conflict-graph view of a growing history.

The resulting :class:`DependencyGraph` has exactly the same nodes and
labelled edge set as :func:`repro.core.dependency.build_dependency_graph`
(edge *representatives* — which concrete operation pair witnesses a labelled
edge — may differ, which nothing downstream observes).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Set, Tuple

from ..core.dependency import DependencyEdge, DependencyGraph, _edge_kind
from ..core.history import History
from ..core.mv_analysis import assign_write_versions, mv_is_serializable, mv_to_sv
from ..core.operations import Operation
from ..core.phenomena import HistoryIndex, detect_flags

__all__ = [
    "HistoryClassification",
    "PrefixGraphBuilder",
    "BatchClassifier",
]


@dataclass(frozen=True)
class HistoryClassification:
    """Everything the coverage report needs to know about one realized history."""

    shorthand: str
    serializable: bool
    phenomena: Tuple[str, ...]
    committed: Tuple[int, ...]
    aborted: Tuple[int, ...]


class _TrieNode:
    """One operation-prefix of some previously classified history."""

    __slots__ = ("children", "by_item", "by_predicate", "edges", "depth")

    def __init__(self, children=None, by_item=None, by_predicate=None,
                 edges=(), depth=0):
        self.children: Dict[Operation, "_TrieNode"] = children if children is not None else {}
        #: item -> tuple of (position, op) for earlier data accesses on the item.
        self.by_item: Dict[str, Tuple[Tuple[int, Operation], ...]] = by_item or {}
        #: predicate -> tuple of (position, op) for earlier predicate operations.
        self.by_predicate: Dict[str, Tuple[Tuple[int, Operation], ...]] = by_predicate or {}
        #: Conflict edges contributed by the whole prefix, in discovery order.
        self.edges: Tuple[DependencyEdge, ...] = edges
        self.depth = depth


class PrefixGraphBuilder:
    """Dependency-graph construction with memoized operation prefixes.

    ``max_nodes`` bounds trie memory; once exceeded, new suffixes are computed
    without being recorded (correctness is unaffected, only reuse).
    """

    def __init__(self, max_nodes: int = 200_000):
        self._root = _TrieNode()
        self._max_nodes = max_nodes
        self.nodes_created = 0
        self.nodes_reused = 0

    # -- trie maintenance ---------------------------------------------------------

    def _extend(self, node: _TrieNode, op: Operation) -> _TrieNode:
        """The child of ``node`` for ``op``, creating (and caching) it if new."""
        child = node.children.get(op)
        if child is not None:
            self.nodes_reused += 1
            return child
        child = self._make_child(node, op)
        if self.nodes_created < self._max_nodes:
            node.children[op] = child
        self.nodes_created += 1
        return child

    def _make_child(self, node: _TrieNode, op: Operation) -> _TrieNode:
        if not op.kind.is_data_access:
            # Commits/aborts extend the path but contribute no conflicts.
            return _TrieNode(None, node.by_item, node.by_predicate,
                             node.edges, node.depth + 1)

        # Collect the earlier operations that can possibly conflict with op.
        candidates: Dict[int, Operation] = {}
        if op.item is not None:
            for position, earlier in node.by_item.get(op.item, ()):
                candidates[position] = earlier
        if op.predicate is not None:
            for position, earlier in node.by_predicate.get(op.predicate, ()):
                candidates[position] = earlier

        new_edges: List[DependencyEdge] = []
        for position in sorted(candidates):
            earlier = candidates[position]
            if earlier.conflicts_with(op):
                new_edges.append(DependencyEdge(
                    source=earlier.txn, target=op.txn,
                    kind=_edge_kind(earlier, op),
                    item=earlier.item if earlier.item is not None else op.item,
                    source_op=earlier, target_op=op,
                ))

        by_item = node.by_item
        if op.item is not None:
            by_item = dict(by_item)
            by_item[op.item] = by_item.get(op.item, ()) + ((node.depth, op),)
        by_predicate = node.by_predicate
        if op.predicate is not None:
            by_predicate = dict(by_predicate)
            by_predicate[op.predicate] = by_predicate.get(op.predicate, ()) + ((node.depth, op),)

        return _TrieNode(None, by_item, by_predicate,
                         node.edges + tuple(new_edges), node.depth + 1)

    # -- public API ---------------------------------------------------------------

    def graph_for(self, history: History, committed_only: bool = True) -> DependencyGraph:
        """The dependency graph of ``history``, reusing any known prefix."""
        node = self._root
        for op in history:
            node = self._extend(node, op)

        if committed_only:
            included = history.committed_transactions()
        else:
            included = set(history.transactions())
        nodes: List[int] = []
        for op in history:
            if op.txn in included and op.txn not in nodes:
                nodes.append(op.txn)
        edges: List[DependencyEdge] = []
        seen: Set[Tuple[int, int, str, Optional[str]]] = set()
        for edge in node.edges:
            if edge.source not in included or edge.target not in included:
                continue
            key = (edge.source, edge.target, edge.kind, edge.item)
            if key in seen:
                continue
            seen.add(key)
            edges.append(edge)
        return DependencyGraph(nodes, edges)


def _sv_is_serializable(history: History, index: HistoryIndex) -> bool:
    """Acyclicity of the committed-transaction conflict graph, built directly.

    Equivalent to ``build_dependency_graph(history).is_acyclic()`` (same node
    set, same reachability): conflicts only arise between operations sharing
    an item or a predicate, so candidate pairs come straight from the shared
    :class:`~repro.core.phenomena.HistoryIndex` groups instead of an O(n^2)
    scan — and the adjacency sets are built without materializing labelled
    edge objects at all.  The explorer's hot path classifies hundreds of
    thousands of distinct histories; this is its serializability verdict.
    """
    committed = history.committed_transactions()
    adjacency: Dict[int, Set[int]] = {txn: set() for txn in committed}

    def link(earlier_entries, later_entries) -> None:
        # Every (earlier, later) pair with earlier position < later position
        # yields an edge earlier.txn -> later.txn; entries are in history
        # order, so a single forward sweep covers exactly those pairs.
        for i, earlier in earlier_entries:
            if earlier.txn not in committed:
                continue
            source = adjacency[earlier.txn]
            for j, later in later_entries:
                if j <= i or later.txn == earlier.txn:
                    continue
                if later.txn in committed:
                    source.add(later.txn)

    for item, writes in index.writes_by_item.items():
        reads = index.reads_by_item.get(item, ())
        link(writes, writes)   # ww
        link(writes, reads)    # wr
        link(reads, writes)    # rw
    for predicate, writes in index.predicate_writes_by_predicate.items():
        reads = [entry for entry in index.predicate_reads
                 if entry[1].predicate == predicate]
        link(writes, writes)
        link(writes, reads)
        link(reads, writes)

    # Iterative three-color DFS over a handful of transaction nodes.
    state: Dict[int, int] = {}
    for root in adjacency:
        if root in state:
            continue
        stack = [(root, iter(adjacency[root]))]
        state[root] = 1
        while stack:
            node, successors = stack[-1]
            advanced = False
            for successor in successors:
                mark = state.get(successor)
                if mark == 1:
                    return False
                if mark is None:
                    state[successor] = 1
                    stack.append((successor, iter(adjacency[successor])))
                    advanced = True
                    break
            if not advanced:
                state[node] = 2
                stack.pop()
    return True


class BatchClassifier:
    """Classify realized histories with whole-history memoization.

    Single-version serializability verdicts use :func:`_sv_is_serializable`
    over the same :class:`~repro.core.phenomena.HistoryIndex` the phenomenon
    detectors share; :class:`PrefixGraphBuilder` remains available for callers
    that want full labelled dependency graphs with prefix memoization.
    """

    def __init__(self, codes: Optional[Sequence[str]] = None,
                 max_trie_nodes: int = 200_000,
                 initial_items: Optional[Sequence[str]] = None):
        self._codes = list(codes) if codes is not None else None
        self._cache: Dict[History, HistoryClassification] = {}
        #: Classifications computed elsewhere (other workers), keyed by the
        #: history's shorthand — the picklable cross-process cache currency.
        self._preloaded: Dict[str, HistoryClassification] = {}
        #: Classifications this instance computed itself since construction,
        #: keyed by shorthand — what it has to offer a shared cache.
        self._fresh: Dict[str, HistoryClassification] = {}
        #: Items present in the initial database, for MV version completion
        #: (see assign_write_versions).  None assumes every item pre-exists.
        self.initial_items = None if initial_items is None else frozenset(initial_items)
        self.hits = 0
        self.misses = 0
        self.shared_hits = 0

    def preload(self, entries: Mapping[str, HistoryClassification]) -> None:
        """Seed the whole-history cache with classifications computed elsewhere.

        Keys are history shorthand strings (which uniquely render the
        operation sequence, values and versions included), so entries survive
        pickling across process boundaries.  Sharing is sound because
        classification is a pure function of the history — a preloaded entry
        can only save work, never change a result.
        """
        self._preloaded.update(entries)

    def exports(self) -> Dict[str, HistoryClassification]:
        """The classifications computed locally, for publishing to a shared cache."""
        return dict(self._fresh)

    def classify(self, history: History) -> HistoryClassification:
        """Serializability verdict plus the phenomena present in the history.

        Multiversion histories (realized by the Snapshot Isolation and Read
        Consistency engines, whose reads carry version subscripts) follow the
        paper's Section 4.2 touchstone: serializability is judged on the MV
        serialization graph, and the phenomenon detectors run on the
        dataflow-preserving single-valued mapping (``mv_to_sv``), not on the
        raw versioned operations — otherwise every snapshot read of an old
        version would look like a dirty read.
        """
        cached = self._cache.get(history)
        if cached is not None:
            self.hits += 1
            return cached
        shorthand = history.to_shorthand()
        shared = self._preloaded.get(shorthand)
        if shared is not None:
            self.shared_hits += 1
            self._cache[history] = shared
            return shared
        self.misses += 1
        if history.is_multiversion():
            completed = assign_write_versions(history, self.initial_items)
            serializable = mv_is_serializable(completed)
            flags = detect_flags(mv_to_sv(completed), codes=self._codes)
        else:
            index = HistoryIndex(history)
            serializable = _sv_is_serializable(history, index)
            flags = detect_flags(history, codes=self._codes, index=index)
        classification = HistoryClassification(
            shorthand=shorthand,
            serializable=serializable,
            phenomena=tuple(sorted(
                code for code, found in flags.items() if found
            )),
            committed=tuple(sorted(history.committed_transactions())),
            aborted=tuple(sorted(history.aborted_transactions())),
        )
        self._cache[history] = classification
        self._fresh[shorthand] = classification
        return classification

    def classify_batch(self, histories: Sequence[History]) -> List[HistoryClassification]:
        """Classify a batch, sharing the caches across all of it."""
        return [self.classify(history) for history in histories]

    @property
    def stats(self) -> Dict[str, int]:
        """Cache-effectiveness counters for reports and benchmarks."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "shared_hits": self.shared_hits,
        }
