"""Memoized batched history classification for the schedule-space explorer.

Exploring an interleaving space produces thousands of realized histories that
are heavily redundant in two ways:

* **Whole-history duplicates** — many interleavings realize the *same*
  history (blocking collapses schedule prefixes), so classification results
  are cached per distinct history.
* **Shared prefixes** — distinct realized histories usually agree on a long
  prefix, so dependency-graph construction is organized as a trie over
  operation sequences: each trie node stores the conflict edges its operation
  contributes and a persistent per-item/per-predicate conflict index, and a
  history only pays for the suffix the trie has not seen before.  This is the
  incremental-maintenance idea of Berkholz et al.'s "answering queries under
  updates" applied to the conflict-graph view of a growing history.

The resulting :class:`DependencyGraph` has exactly the same nodes and
labelled edge set as :func:`repro.core.dependency.build_dependency_graph`
(edge *representatives* — which concrete operation pair witnesses a labelled
edge — may differ, which nothing downstream observes).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence, Set, Tuple

from ..core.dependency import DependencyEdge, DependencyGraph, _edge_kind
from ..core.history import History
from ..core.mv_analysis import _strip_version
from ..core.operations import Operation, OperationKind
from ..core.phenomena import HistoryIndex, detect_flags
from ..engine.programs import TransactionProgram
from .reduction import CommutationOracle
from .schedules import Interleaving

__all__ = [
    "HistoryClassification",
    "PrefixGraphBuilder",
    "BatchClassifier",
    "ScheduleOutcome",
    "ScheduleOutcomeMemo",
]


@dataclass(frozen=True)
class HistoryClassification:
    """Everything the coverage report needs to know about one realized history."""

    shorthand: str
    serializable: bool
    phenomena: Tuple[str, ...]
    committed: Tuple[int, ...]
    aborted: Tuple[int, ...]


@dataclass(frozen=True)
class ScheduleOutcome:
    """The full per-schedule record payload, minus the interleaving itself.

    What the schedule-level outcome memo stores per equivalence class:
    executing the class's canonical member realizes this history and
    classification, and every member of the class shares it (the reduction
    layer's record semantics).  Plain strings and tuples — picklable across
    the worker pool's shared outcome log.
    """

    history: str
    serializable: bool
    phenomena: Tuple[str, ...]
    committed: Tuple[int, ...]
    aborted: Tuple[int, ...]
    blocked_events: int
    deadlocks: int
    stalled: bool


class ScheduleOutcomeMemo:
    """Schedule-level outcome memo keyed on the reduction layer's canonical form.

    Sampled and exhaustive streams explored without ``reduction="sleep-set"``
    re-execute commutation-equivalent schedules over and over; this memo maps
    each schedule to the canonical member of its Mazurkiewicz equivalence
    class (:meth:`CommutationOracle.canonical_key`) and caches the *outcome*
    of executing that canonical member.  Every class member gets the
    canonical member's record — byte-identical across worker counts and chunk
    sizes because the canonical member (not the first-encountered one) is
    what executes, making the memo deterministic by construction.

    Soundness is the sleep-set reduction argument (see
    :mod:`repro.explorer.reduction`): equivalent schedules realize equivalent
    histories with identical classifications, and the oracle's terminal scope
    must match the engine family (``"footprint"`` only for single-version
    locking levels).
    """

    def __init__(self, programs: Sequence[TransactionProgram],
                 terminal_scope: str = "component"):
        self.oracle = CommutationOracle(programs, terminal_scope=terminal_scope)
        self.terminal_scope = terminal_scope
        self._outcomes: Dict[Interleaving, ScheduleOutcome] = {}
        #: Outcomes computed since the last :meth:`drain_fresh` (for shared
        #: logs; drained after every chunk regardless of whether a log is
        #: attached, so it never grows past one chunk's worth).
        self._fresh: Dict[Interleaving, ScheduleOutcome] = {}

    def canonical(self, interleaving: Interleaving) -> Interleaving:
        """The canonical member of the schedule's equivalence class."""
        return self.oracle.canonical_key(interleaving)

    def peek(self, key: Interleaving) -> Optional[ScheduleOutcome]:
        """The memoized outcome for a canonical key, or None."""
        return self._outcomes.get(key)

    def put(self, key: Interleaving, outcome: ScheduleOutcome) -> None:
        self._outcomes[key] = outcome
        self._fresh[key] = outcome

    def preload(self, entries: Mapping[Interleaving, ScheduleOutcome]) -> None:
        """Seed with outcomes computed elsewhere (other worker processes).

        Sound because an entry is a pure function of (programs, level,
        canonical key) — a preloaded outcome can only save an execution,
        never change a record.
        """
        self._outcomes.update(entries)

    def exports(self) -> Dict[Interleaving, ScheduleOutcome]:
        """Locally computed outcomes, for publishing to a shared log."""
        return dict(self._fresh)

    def drain_fresh(self) -> Dict[Interleaving, ScheduleOutcome]:
        """:meth:`exports`, clearing the fresh set — the memo is per-process
        and long-lived, so publishers drain it to avoid republishing the same
        batch with every chunk."""
        fresh = self._fresh
        self._fresh = {}
        return fresh

    def __len__(self) -> int:
        return len(self._outcomes)


class _TrieNode:
    """One operation-prefix of some previously classified history."""

    __slots__ = ("children", "by_item", "by_predicate", "edges", "depth")

    def __init__(self, children=None, by_item=None, by_predicate=None,
                 edges=(), depth=0):
        self.children: Dict[Operation, "_TrieNode"] = children if children is not None else {}
        #: item -> tuple of (position, op) for earlier data accesses on the item.
        self.by_item: Dict[str, Tuple[Tuple[int, Operation], ...]] = by_item or {}
        #: predicate -> tuple of (position, op) for earlier predicate operations.
        self.by_predicate: Dict[str, Tuple[Tuple[int, Operation], ...]] = by_predicate or {}
        #: Conflict edges contributed by the whole prefix, in discovery order.
        self.edges: Tuple[DependencyEdge, ...] = edges
        self.depth = depth


class PrefixGraphBuilder:
    """Dependency-graph construction with memoized operation prefixes.

    ``max_nodes`` bounds trie memory; once exceeded, new suffixes are computed
    without being recorded (correctness is unaffected, only reuse).
    """

    def __init__(self, max_nodes: int = 200_000):
        self._root = _TrieNode()
        self._max_nodes = max_nodes
        self.nodes_created = 0
        self.nodes_reused = 0

    # -- trie maintenance ---------------------------------------------------------

    def _extend(self, node: _TrieNode, op: Operation) -> _TrieNode:
        """The child of ``node`` for ``op``, creating (and caching) it if new."""
        child = node.children.get(op)
        if child is not None:
            self.nodes_reused += 1
            return child
        child = self._make_child(node, op)
        if self.nodes_created < self._max_nodes:
            node.children[op] = child
        self.nodes_created += 1
        return child

    def _make_child(self, node: _TrieNode, op: Operation) -> _TrieNode:
        if not op.kind.is_data_access:
            # Commits/aborts extend the path but contribute no conflicts.
            return _TrieNode(None, node.by_item, node.by_predicate,
                             node.edges, node.depth + 1)

        # Collect the earlier operations that can possibly conflict with op.
        candidates: Dict[int, Operation] = {}
        if op.item is not None:
            for position, earlier in node.by_item.get(op.item, ()):
                candidates[position] = earlier
        if op.predicate is not None:
            for position, earlier in node.by_predicate.get(op.predicate, ()):
                candidates[position] = earlier

        new_edges: List[DependencyEdge] = []
        for position in sorted(candidates):
            earlier = candidates[position]
            if earlier.conflicts_with(op):
                new_edges.append(DependencyEdge(
                    source=earlier.txn, target=op.txn,
                    kind=_edge_kind(earlier, op),
                    item=earlier.item if earlier.item is not None else op.item,
                    source_op=earlier, target_op=op,
                ))

        by_item = node.by_item
        if op.item is not None:
            by_item = dict(by_item)
            by_item[op.item] = by_item.get(op.item, ()) + ((node.depth, op),)
        by_predicate = node.by_predicate
        if op.predicate is not None:
            by_predicate = dict(by_predicate)
            by_predicate[op.predicate] = by_predicate.get(op.predicate, ()) + ((node.depth, op),)

        return _TrieNode(None, by_item, by_predicate,
                         node.edges + tuple(new_edges), node.depth + 1)

    # -- public API ---------------------------------------------------------------

    def graph_for(self, history: History, committed_only: bool = True) -> DependencyGraph:
        """The dependency graph of ``history``, reusing any known prefix."""
        node = self._root
        for op in history:
            node = self._extend(node, op)

        if committed_only:
            included = history.committed_transactions()
        else:
            included = set(history.transactions())
        nodes: List[int] = []
        for op in history:
            if op.txn in included and op.txn not in nodes:
                nodes.append(op.txn)
        edges: List[DependencyEdge] = []
        seen: Set[Tuple[int, int, str, Optional[str]]] = set()
        for edge in node.edges:
            if edge.source not in included or edge.target not in included:
                continue
            key = (edge.source, edge.target, edge.kind, edge.item)
            if key in seen:
                continue
            seen.add(key)
            edges.append(edge)
        return DependencyGraph(nodes, edges)


def _graph_is_acyclic(adjacency: Dict[int, Set[int]]) -> bool:
    """Iterative three-color DFS over a handful of transaction nodes."""
    state: Dict[int, int] = {}
    for root in adjacency:
        if root in state:
            continue
        stack = [(root, iter(adjacency[root]))]
        state[root] = 1
        while stack:
            node, successors = stack[-1]
            advanced = False
            for successor in successors:
                mark = state.get(successor)
                if mark == 1:
                    return False
                if mark is None:
                    state[successor] = 1
                    stack.append((successor, iter(adjacency[successor])))
                    advanced = True
                    break
            if not advanced:
                state[node] = 2
                stack.pop()
    return True


def _mv_classify_core(history: History,
                      initial_items) -> Tuple[bool, History]:
    """Fused MV classification core: one walk instead of three pipelines.

    Equivalent to ``completed = assign_write_versions(history, initial_items)``
    followed by ``(mv_is_serializable(completed), mv_to_sv(completed))`` —
    the same version completion, the same MVSG edge rules, the same SV
    mapping (the returned history is value-equal to ``mv_to_sv``'s) — without
    materializing the intermediate completed history or re-scanning the
    operation list once per stage.  ``tests/explorer/test_memo.py`` gates the
    fused result against the unfused public pipeline.
    """
    ops = history.operations
    read = OperationKind.READ
    cursor_read = OperationKind.CURSOR_READ
    predicate_read = OperationKind.PREDICATE_READ
    write = OperationKind.WRITE
    cursor_write = OperationKind.CURSOR_WRITE
    predicate_write = OperationKind.PREDICATE_WRITE
    commit = OperationKind.COMMIT
    abort = OperationKind.ABORT
    preexisting = initial_items

    # Pass 1: group by transaction; replay the commit order to stamp the
    # versions that committed writes install (assign_write_versions pass 1);
    # record first terminal positions.
    ops_by_txn: Dict[int, List[Tuple[int, Operation]]] = {}
    first_index: Dict[int, int] = {}
    terminals: Dict[int, int] = {}
    pending: Dict[int, Dict[str, List[int]]] = {}
    versions: Dict[int, int] = {}
    next_version: Dict[str, int] = {}
    #: (item, effective version) -> writing txn, plus per-item version lists
    #: and per-txn written (item, version) sets — pass 3/4 inputs, collected
    #: while stamping so the write scan happens exactly once.  Assumes each
    #: (item, version) has one installing transaction — true of realized MV
    #: histories (engine-installed chains) and well-formed paper histories.
    writers: Dict[Tuple[str, int], int] = {}
    versions_by_item: Dict[str, List[int]] = {}
    own_versions_by_txn: Dict[int, set] = {}

    def register_write(item: str, effective: int, txn: int) -> None:
        key = (item, effective)
        if key not in writers:
            versions_by_item.setdefault(item, []).append(effective)
        writers[key] = txn
        owned = own_versions_by_txn.get(txn)
        if owned is None:
            owned = own_versions_by_txn[txn] = set()
        owned.add(key)

    for index, op in enumerate(ops):
        txn = op.txn
        group = ops_by_txn.get(txn)
        if group is None:
            group = ops_by_txn[txn] = []
            first_index[txn] = index
        group.append((index, op))
        kind = op.kind
        if (op.item is not None
                and (kind is write or kind is cursor_write
                     or kind is predicate_write)):
            if op.version is None:
                pending.setdefault(txn, {}).setdefault(op.item, []).append(index)
            else:
                register_write(op.item, op.version, txn)
        elif kind is commit:
            if txn not in terminals:
                terminals[txn] = index
            for item, write_indices in pending.pop(txn, {}).items():
                if item not in next_version:
                    has_initial = preexisting is None or item in preexisting
                    next_version[item] = 1 if has_initial else 0
                else:
                    next_version[item] += 1
                stamped = next_version[item]
                for write_index in write_indices:
                    versions[write_index] = stamped
                register_write(item, stamped, txn)
        elif kind is abort:
            if txn not in terminals:
                terminals[txn] = index

    # Pass 2: complete unversioned reads (assign_write_versions pass 2).
    last_own_write: Dict[Tuple[int, str], int] = {}
    for index, op in enumerate(ops):
        if op.item is None:
            continue
        kind = op.kind
        if ((kind is read or kind is cursor_read or kind is predicate_read)
                and op.version is None and index not in versions):
            key = (op.txn, op.item)
            own_index = last_own_write.get(key)
            if own_index is not None:
                own_version = versions.get(own_index, ops[own_index].version)
                if own_version is not None:
                    versions[index] = own_version
            elif preexisting is not None and op.item not in preexisting:
                versions[index] = -1
        elif kind is write or kind is cursor_write or kind is predicate_write:
            last_own_write[(op.txn, op.item)] = index

    # Pass 3: MVSG adjacency over effective versions (wr / rw / ww rules).
    committed = history.committed_set()
    adjacency: Dict[int, Set[int]] = {txn: set() for txn in committed}
    for index, op in enumerate(ops):
        kind = op.kind
        if not (kind is read or kind is cursor_read):
            continue
        txn = op.txn
        if txn not in committed:
            continue
        effective = versions.get(index, op.version)
        if effective is None:
            continue
        writer = writers.get((op.item, effective))
        if writer is not None and writer != txn and writer in committed:
            adjacency[writer].add(txn)  # wr
        for version in versions_by_item.get(op.item, ()):
            if version > effective:
                other = writers[(op.item, version)]
                if other != txn and other in committed:
                    adjacency[txn].add(other)  # rw
    for item, item_versions in versions_by_item.items():
        ordered = sorted(
            (version, writers[(item, version)]) for version in item_versions)
        for (_, earlier_writer), (_, later_writer) in zip(ordered, ordered[1:]):
            if (earlier_writer != later_writer and earlier_writer in committed
                    and later_writer in committed):
                adjacency[earlier_writer].add(later_writer)  # ww
    serializable = _graph_is_acyclic(adjacency)

    # Pass 4: the Section 4.2 MV -> SV mapping (mv_to_sv), on the same
    # effective versions: foreign-version reads at the start point, writes /
    # own-version reads / terminals at the commit (or abort) point.
    events: List[Tuple[int, int, List[Operation]]] = []
    total = len(ops)
    empty_set: set = set()
    for order, txn in enumerate(ops_by_txn):
        group = ops_by_txn[txn]
        own_versions = own_versions_by_txn.get(txn, empty_set)
        snapshot_reads: List[Operation] = []
        commit_block: List[Operation] = []
        for index, op in group:
            stripped = _strip_version(op)
            kind = op.kind
            if ((kind is read or kind is cursor_read or kind is predicate_read)
                    and (op.item, versions.get(index, op.version))
                    not in own_versions):
                snapshot_reads.append(stripped)
            else:
                commit_block.append(stripped)
        commit_time = terminals.get(txn)
        if commit_time is None:
            commit_time = total + order
        events.append((first_index[txn], order, snapshot_reads))
        events.append((commit_time, order, commit_block))
    events.sort(key=lambda event: (event[0], event[1]))
    operations: List[Operation] = []
    for _, _, block in events:
        operations.extend(block)
    name = f"{history.name}.SV" if history.name else None
    return serializable, History(operations, name=name, validate=False)


def _sv_is_serializable(history: History, index: HistoryIndex) -> bool:
    """Acyclicity of the committed-transaction conflict graph, built directly.

    Equivalent to ``build_dependency_graph(history).is_acyclic()`` (same node
    set, same reachability): conflicts only arise between operations sharing
    an item or a predicate, so candidate pairs come straight from the shared
    :class:`~repro.core.phenomena.HistoryIndex` groups instead of an O(n^2)
    scan — and the adjacency sets are built without materializing labelled
    edge objects at all.  The explorer's hot path classifies hundreds of
    thousands of distinct histories; this is its serializability verdict.
    """
    committed = history.committed_set()
    adjacency: Dict[int, Set[int]] = {txn: set() for txn in committed}

    def link(earlier_entries, later_entries) -> None:
        # Every (earlier, later) pair with earlier position < later position
        # yields an edge earlier.txn -> later.txn; entries are in history
        # order, so a single forward sweep covers exactly those pairs.
        for i, earlier in earlier_entries:
            if earlier.txn not in committed:
                continue
            source = adjacency[earlier.txn]
            for j, later in later_entries:
                if j <= i or later.txn == earlier.txn:
                    continue
                if later.txn in committed:
                    source.add(later.txn)

    for item, writes in index.writes_by_item.items():
        reads = index.reads_by_item.get(item, ())
        link(writes, writes)   # ww
        link(writes, reads)    # wr
        link(reads, writes)    # rw
    for predicate, writes in index.predicate_writes_by_predicate.items():
        reads = [entry for entry in index.predicate_reads
                 if entry[1].predicate == predicate]
        link(writes, writes)
        link(writes, reads)
        link(reads, writes)

    return _graph_is_acyclic(adjacency)


class BatchClassifier:
    """Classify realized histories with whole-history memoization.

    Single-version serializability verdicts use :func:`_sv_is_serializable`
    over the same :class:`~repro.core.phenomena.HistoryIndex` the phenomenon
    detectors share; :class:`PrefixGraphBuilder` remains available for callers
    that want full labelled dependency graphs with prefix memoization.
    """

    def __init__(self, codes: Optional[Sequence[str]] = None,
                 max_trie_nodes: int = 200_000,
                 initial_items: Optional[Sequence[str]] = None):
        self._codes = list(codes) if codes is not None else None
        self._cache: Dict[History, HistoryClassification] = {}
        #: Classifications computed elsewhere (other workers), keyed by the
        #: history's shorthand — the picklable cross-process cache currency.
        self._preloaded: Dict[str, HistoryClassification] = {}
        #: Classifications this instance computed itself since construction,
        #: keyed by shorthand — what it has to offer a shared cache.
        self._fresh: Dict[str, HistoryClassification] = {}
        #: Items present in the initial database, for MV version completion
        #: (see assign_write_versions).  None assumes every item pre-exists.
        self.initial_items = None if initial_items is None else frozenset(initial_items)
        #: detect_flags results keyed by the *mapped* SV history: many
        #: distinct MV histories (differing only in version subscripts /
        #: snapshot timing) map to the same single-valued history, so the
        #: detector pass is shared across them.
        self._mapped_flags: Dict[History, Dict[str, bool]] = {}
        self.hits = 0
        self.misses = 0
        self.shared_hits = 0

    def preload(self, entries: Mapping[str, HistoryClassification]) -> None:
        """Seed the whole-history cache with classifications computed elsewhere.

        Keys are history shorthand strings (which uniquely render the
        operation sequence, values and versions included), so entries survive
        pickling across process boundaries.  Sharing is sound because
        classification is a pure function of the history — a preloaded entry
        can only save work, never change a result.
        """
        self._preloaded.update(entries)

    def exports(self) -> Dict[str, HistoryClassification]:
        """The classifications computed locally, for publishing to a shared cache."""
        return dict(self._fresh)

    def classify(self, history: History) -> HistoryClassification:
        """Serializability verdict plus the phenomena present in the history.

        Multiversion histories (realized by the Snapshot Isolation and Read
        Consistency engines, whose reads carry version subscripts) follow the
        paper's Section 4.2 touchstone: serializability is judged on the MV
        serialization graph, and the phenomenon detectors run on the
        dataflow-preserving single-valued mapping (``mv_to_sv``), not on the
        raw versioned operations — otherwise every snapshot read of an old
        version would look like a dirty read.
        """
        cached = self._cache.get(history)
        if cached is not None:
            self.hits += 1
            return cached
        shorthand = history.to_shorthand()
        shared = self._preloaded.get(shorthand)
        if shared is not None:
            self.shared_hits += 1
            self._cache[history] = shared
            return shared
        self.misses += 1
        if history.is_multiversion():
            serializable, mapped = _mv_classify_core(history, self.initial_items)
            flags = self._mapped_flags.get(mapped)
            if flags is None:
                flags = detect_flags(mapped, codes=self._codes)
                self._mapped_flags[mapped] = flags
        else:
            index = HistoryIndex(history)
            serializable = _sv_is_serializable(history, index)
            flags = detect_flags(history, codes=self._codes, index=index)
        classification = HistoryClassification(
            shorthand=shorthand,
            serializable=serializable,
            phenomena=tuple(sorted(
                code for code, found in flags.items() if found
            )),
            committed=tuple(sorted(history.committed_set())),
            aborted=tuple(sorted(history.aborted_set())),
        )
        self._cache[history] = classification
        self._fresh[shorthand] = classification
        return classification

    def classify_batch(self, histories: Sequence[History]) -> List[HistoryClassification]:
        """Classify a batch, sharing the caches across all of it."""
        return [self.classify(history) for history in histories]

    @property
    def stats(self) -> Dict[str, int]:
        """Cache-effectiveness counters for reports and benchmarks."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "shared_hits": self.shared_hits,
        }
