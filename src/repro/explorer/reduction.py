"""Sleep-set/DPOR-style partial-order reduction of interleaving spaces.

Most interleavings of a program set are *equivalent*: they differ only in the
order of adjacent steps that commute — steps of different transactions whose
data footprints are disjoint, so neither locks, blocks, aborts, nor observes
the other at any isolation level.  Executing one representative per
equivalence class and reusing its classification for the rest is the
schedule-explorer analogue of the sleep-set / dynamic partial-order reduction
used by systematic model checkers: it cuts executed-schedule counts by orders
of magnitude on workloads with disjoint structure without changing any
reported coverage.

The equivalence is Mazurkiewicz trace equivalence over *slot events*.  The
k-th occurrence of transaction ``t`` in an interleaving is the event
``(t, k)``; two events of different transactions are *independent* when their
effective footprints do not conflict (write-involved overlap, Section 2.1).
Two interleavings are equivalent iff one is reachable from the other by
swapping adjacent independent events, and every equivalence class has a
unique canonical member — the lexicographically least linearization of the
class's dependence order — which :meth:`CommutationOracle.canonical_key`
computes directly.

Soundness relies on a *conservative* mapping from slot occurrences to program
steps.  The schedule runner consumes an interleaving slot even when the step
it attempts blocks, so occurrence ``k`` does not always attempt step ``k``.
A step can only block, deadlock, or be engine-aborted when it conflicts with
another program ("interacting"), therefore every occurrence before a
transaction's first interacting step attempts exactly its own step, and from
that point on the oracle charges the occurrence with the union of all
possibly-attempted step footprints.  Opaque footprints (predicate selects,
cursor operations, computed inserts — see
:meth:`repro.engine.programs.Step.footprint`) conflict with everything, so
programs the analysis cannot see through simply never commute.

Beyond data footprints, **terminal events are visibility boundaries**: a
commit publishes writes (and closes the windows the phenomenon detectors
anchor on — a dirty read is only dirty before the writer's terminal, a
snapshot is only stale when taken before the publisher's commit), so within a
*conflict component* — transactions connected by any footprint conflict — an
event that may realize a terminal is ordered against every other event.
Transactions in different components share no items, locks, versions,
waits-for edges, or detector patterns, so their events commute freely, which
is where partial-order reduction wins by orders of magnitude.

The component-wide terminal rule is only *needed* for multiversion engines,
where a commit is a snapshot boundary: swapping T1's commit past an
unrelated-footprint event of T2 can still move the commit across T2's
snapshot point and change which versions T2's *later* reads observe.
Single-version locking engines have no snapshot points — a terminal's entire
effect (publishing writes, releasing locks, rolling values back, closing
detector windows) is confined to the items its transaction touched after its
first interacting step, which the occurrence-level *effective footprint*
already accumulates.  ``terminal_scope="footprint"`` therefore drops the
component-wide rule and lets terminals commute with footprint-disjoint
events, which is sound for locking levels and reduces transitively-connected
components much further; the default ``"component"`` scope stays safe for
every engine.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..core.isolation import IsolationLevelName
from ..engine.programs import Abort, Commit, StepFootprint, TransactionProgram
from ..testbed import is_single_version
from .schedules import Interleaving

__all__ = [
    "TERMINAL_SCOPES",
    "CommutationOracle",
    "ExecutionPlan",
    "StreamingReducer",
    "build_execution_plan",
    "terminal_scope_for",
]

#: Accepted terminal-ordering scopes: ``"component"`` orders a possible
#: terminal against every event of its conflict component (required for
#: multiversion engines, whose commits are snapshot boundaries);
#: ``"footprint"`` orders it only against footprint-conflicting events
#: (sound for single-version locking engines).
TERMINAL_SCOPES = ("component", "footprint")

#: Marker footprint for "could touch anything".
_OPAQUE = StepFootprint(opaque=True)


def terminal_scope_for(level: IsolationLevelName) -> str:
    """The commutation oracle's terminal scope for one isolation level.

    Single-version locking engines take the relaxed ``"footprint"`` rule;
    multiversion engines need the component-wide ``"component"`` rule because
    their commits are snapshot boundaries (see the module docstring).  The
    single definition serves both the reduction layer and the
    schedule-outcome memo — the two must canonicalize with the same
    equivalence relation.
    """
    return "footprint" if is_single_version(level) else "component"


def _union_footprint(footprints: Sequence[StepFootprint]) -> StepFootprint:
    """The combined footprint of a range of steps (opaque if any member is)."""
    if any(fp.opaque for fp in footprints):
        return _OPAQUE
    reads = frozenset().union(*(fp.reads for fp in footprints)) if footprints else frozenset()
    writes = frozenset().union(*(fp.writes for fp in footprints)) if footprints else frozenset()
    return StepFootprint(reads=reads, writes=writes)


class CommutationOracle:
    """Decides which slot events of a program set commute, and canonicalizes.

    Built once per program set; all queries are memoized.  ``canonical_key``
    maps an interleaving to the unique canonical member of its equivalence
    class, so two interleavings are equivalent iff their keys are equal.

    ``terminal_scope`` selects the terminal-ordering rule (see
    :data:`TERMINAL_SCOPES`): keep the default ``"component"`` unless every
    engine the plan will serve is a single-version locking engine.
    """

    def __init__(self, programs: Sequence[TransactionProgram],
                 terminal_scope: str = "component"):
        if terminal_scope not in TERMINAL_SCOPES:
            raise ValueError(f"unknown terminal scope {terminal_scope!r}; "
                             f"choose from {TERMINAL_SCOPES}")
        self.terminal_scope = terminal_scope
        self._footprints: Dict[int, Tuple[StepFootprint, ...]] = {
            program.txn: program.footprints() for program in programs
        }
        self._first_interacting: Dict[int, Optional[int]] = {
            txn: self._find_first_interacting(txn) for txn in self._footprints
        }
        #: Earliest occurrence at which a transaction may realize its terminal
        #: (the index of its first Commit/Abort step — a terminal can never be
        #: attempted before the program counter reaches it).
        self._terminal_floor: Dict[int, int] = {
            program.txn: next(
                (index for index, step in enumerate(program.steps)
                 if isinstance(step, (Commit, Abort))),
                len(program.steps) - 1,
            )
            for program in programs
        }
        self._component = self._conflict_components(programs)
        self._effective_cache: Dict[Tuple[int, int], StepFootprint] = {}
        self._commute_cache: Dict[Tuple[int, int, int, int], bool] = {}
        #: Event table of the canonical-key fast path: every (txn, occurrence)
        #: with occurrence < len(program) gets a dense id assigned in
        #: (txn, occurrence) order, and ``_conflict_masks[id]`` is the bitmask
        #: of event ids that do NOT commute with it (built from the memoized
        #: :meth:`commutes`, so the two paths cannot disagree).  Lazy: built on
        #: the first canonical_key call.
        self._event_ids: Optional[Dict[Tuple[int, int], int]] = None
        self._event_txns: List[int] = []
        self._conflict_masks: List[int] = []

    def _build_event_table(self) -> Dict[Tuple[int, int], int]:
        ids: Dict[Tuple[int, int], int] = {}
        txns: List[int] = []
        for txn in sorted(self._footprints):
            for occurrence in range(len(self._footprints[txn])):
                ids[(txn, occurrence)] = len(txns)
                txns.append(txn)
        events = list(ids)
        masks = [0] * len(events)
        for i, (txn_a, occ_a) in enumerate(events):
            for j in range(i + 1, len(events)):
                txn_b, occ_b = events[j]
                # commutes() is False for same-transaction pairs (program
                # order), so those bits are set too — exactly the dependence
                # rule of the slow path.
                if not self.commutes(txn_a, occ_a, txn_b, occ_b):
                    masks[i] |= 1 << j
                    masks[j] |= 1 << i
        self._event_ids = ids
        self._event_txns = txns
        self._conflict_masks = masks
        return ids

    # -- static analysis -----------------------------------------------------------

    def _conflict_components(self, programs: Sequence[TransactionProgram]) -> Dict[int, int]:
        """Union-find over transactions connected by any step-footprint conflict."""
        parent = {program.txn: program.txn for program in programs}

        def find(txn: int) -> int:
            while parent[txn] != txn:
                parent[txn] = parent[parent[txn]]
                txn = parent[txn]
            return txn

        txns = list(self._footprints)
        for position, txn_a in enumerate(txns):
            for txn_b in txns[position + 1:]:
                if any(fp_a.conflicts_with(fp_b)
                       for fp_a in self._footprints[txn_a]
                       for fp_b in self._footprints[txn_b]):
                    parent[find(txn_a)] = find(txn_b)
        return {txn: find(txn) for txn in txns}

    def _find_first_interacting(self, txn: int) -> Optional[int]:
        """Index of the first step of ``txn`` that conflicts with any other program."""
        others = [
            footprint
            for other, footprints in self._footprints.items()
            if other != txn
            for footprint in footprints
        ]
        for index, footprint in enumerate(self._footprints[txn]):
            if footprint.opaque:
                return index
            if any(footprint.conflicts_with(other) for other in others):
                return index
        return None

    def effective_footprint(self, txn: int, occurrence: int) -> StepFootprint:
        """What the ``occurrence``-th slot of ``txn`` may touch, conservatively.

        Before the first interacting step, slot k attempts exactly step k (no
        earlier step can block, so the program counter tracks the slot count).
        From the first interacting step onward, a slot may be retrying any
        step between that point and its own index, so it is charged with the
        union of those footprints.
        """
        key = (txn, occurrence)
        cached = self._effective_cache.get(key)
        if cached is not None:
            return cached
        footprints = self._footprints[txn]
        first = self._first_interacting[txn]
        if first is None or occurrence < first:
            result = (
                footprints[occurrence]
                if occurrence < len(footprints)
                else StepFootprint()
            )
        else:
            high = min(occurrence, len(footprints) - 1)
            result = _union_footprint(footprints[first:high + 1])
        self._effective_cache[key] = result
        return result

    def commutes(self, txn_a: int, occ_a: int, txn_b: int, occ_b: int) -> bool:
        """True when adjacent slots (txn_a, occ_a) and (txn_b, occ_b) can swap."""
        if txn_a == txn_b:
            return False
        if txn_a > txn_b:
            txn_a, occ_a, txn_b, occ_b = txn_b, occ_b, txn_a, occ_a
        key = (txn_a, occ_a, txn_b, occ_b)
        cached = self._commute_cache.get(key)
        if cached is None:
            if (self.terminal_scope == "component"
                    and self._component[txn_a] == self._component[txn_b]
                    and (occ_a >= self._terminal_floor[txn_a]
                         or occ_b >= self._terminal_floor[txn_b])):
                # A possible terminal is a visibility boundary for every
                # transaction it conflicts with, directly or transitively:
                # commits publish writes, close detector windows, and settle
                # which snapshots are stale — never swap one inside its
                # conflict component.  Under "footprint" scope (locking
                # engines only) a terminal occurrence's effective footprint
                # already carries every item whose publication, lock release,
                # or rollback it can realize, so the base check suffices.
                cached = False
            else:
                cached = not self.effective_footprint(txn_a, occ_a).conflicts_with(
                    self.effective_footprint(txn_b, occ_b)
                )
            self._commute_cache[key] = cached
        return cached

    # -- canonicalization ----------------------------------------------------------

    def canonical_key(self, interleaving: Interleaving) -> Interleaving:
        """The canonical member of ``interleaving``'s equivalence class.

        The dependence order of the interleaving's events (program order plus
        every non-commuting cross-transaction pair, oriented by position) is a
        trace invariant; its lexicographically least topological linearization
        is computed greedily with a heap.  The hot path replaces the per-pair
        commutation queries with one precomputed bitmask row per event (built
        from the same memoized :meth:`commutes`); interleavings that repeat a
        transaction beyond its program length fall back to the query path.
        """
        ids = self._event_ids
        if ids is None:
            ids = self._build_event_table()
        events: List[int] = []
        counts: Dict[int, int] = {}
        for txn in interleaving:
            occurrence = counts.get(txn, 0)
            counts[txn] = occurrence + 1
            event_id = ids.get((txn, occurrence))
            if event_id is None:
                return self._canonical_key_slow(interleaving)
            events.append(event_id)
        size = len(events)
        pending = [0] * size
        successors: List[List[int]] = [[] for _ in range(size)]
        masks = self._conflict_masks
        for later in range(size):
            row = masks[events[later]]
            if row:
                for earlier in range(later):
                    if (row >> events[earlier]) & 1:
                        pending[later] += 1
                        successors[earlier].append(later)
        # Event ids are assigned in (txn, occurrence) order, so a heap over
        # ids linearizes with exactly the slow path's tie-breaking.
        heap = [(events[i], i) for i in range(size) if pending[i] == 0]
        heapq.heapify(heap)
        txns = self._event_txns
        canonical: List[int] = []
        while heap:
            event_id, index = heapq.heappop(heap)
            canonical.append(txns[event_id])
            for successor in successors[index]:
                pending[successor] -= 1
                if pending[successor] == 0:
                    heapq.heappush(heap, (events[successor], successor))
        return tuple(canonical)

    def _canonical_key_slow(self, interleaving: Interleaving) -> Interleaving:
        """Per-pair commutation-query canonicalization (the reference path)."""
        events: List[Tuple[int, int]] = []
        seen: Dict[int, int] = {}
        for txn in interleaving:
            occurrence = seen.get(txn, 0)
            seen[txn] = occurrence + 1
            events.append((txn, occurrence))

        size = len(events)
        pending = [0] * size
        successors: List[List[int]] = [[] for _ in range(size)]
        for later in range(size):
            txn_l, occ_l = events[later]
            for earlier in range(later):
                txn_e, occ_e = events[earlier]
                if not self.commutes(txn_e, occ_e, txn_l, occ_l):
                    pending[later] += 1
                    successors[earlier].append(later)

        heap = [(events[i], i) for i in range(size) if pending[i] == 0]
        heapq.heapify(heap)
        canonical: List[int] = []
        while heap:
            (txn, _), index = heapq.heappop(heap)
            canonical.append(txn)
            for successor in successors[index]:
                pending[successor] -= 1
                if pending[successor] == 0:
                    heapq.heappush(heap, (events[successor], successor))
        return tuple(canonical)


@dataclass(frozen=True)
class ExecutionPlan:
    """Which schedules to execute, and how to cover the rest.

    ``executed`` holds one representative interleaving per equivalence class,
    in first-encountered order; ``assignment[i]`` is the index into
    ``executed`` covering the i-th schedule of the space's stream.  The plan
    is level-independent: commutation is judged on static footprints that
    hold under every engine.
    """

    executed: Tuple[Interleaving, ...]
    assignment: Tuple[int, ...]
    terminal_scope: str = "component"

    @property
    def selected(self) -> int:
        """How many schedules the plan covers."""
        return len(self.assignment)

    @property
    def ratio(self) -> float:
        """Reduction ratio: schedules covered per schedule executed."""
        return self.selected / len(self.executed) if self.executed else 1.0


class StreamingReducer:
    """Incremental sleep-set reduction: canonicalize a stream chunk by chunk.

    The chunk-wise equivalent of :func:`build_execution_plan`: feed schedule
    chunks in stream order to :meth:`reduce` and it hands back the chunk's
    *fresh* representatives (equivalence classes first encountered in this
    chunk, in first-encountered order — exactly the schedules that need
    executing) plus one slot per input schedule into the growing
    :attr:`executed` list.  Because representatives are assigned in
    first-encounter order, a chunk's fresh representatives are always a
    contiguous suffix of ``executed`` — the property the explorer's streaming
    assembly relies on.

    Nothing is materialized up front: memory is the canonical-key map plus
    ``executed`` (both proportional to the number of distinct equivalence
    classes, i.e. to real execution work), which is how reduction composes
    with 10M+-schedule sampled streams.
    """

    def __init__(self, programs: Sequence[TransactionProgram],
                 terminal_scope: str = "component"):
        self.oracle = CommutationOracle(programs, terminal_scope=terminal_scope)
        self.terminal_scope = terminal_scope
        self._slots: Dict[Interleaving, int] = {}
        #: One representative per equivalence class, in first-encountered order.
        self.executed: List[Interleaving] = []
        #: Schedules fed through :meth:`reduce` so far.
        self.covered = 0

    def reduce(self, schedules: Iterable[Interleaving]
               ) -> Tuple[Tuple[Interleaving, ...], List[int]]:
        """Canonicalize one chunk; returns (fresh representatives, slots)."""
        canonical_key = self.oracle.canonical_key
        slots_of = self._slots
        executed = self.executed
        fresh: List[Interleaving] = []
        slots: List[int] = []
        for interleaving in schedules:
            key = canonical_key(interleaving)
            slot = slots_of.get(key)
            if slot is None:
                slot = len(executed)
                slots_of[key] = slot
                executed.append(interleaving)
                fresh.append(interleaving)
            slots.append(slot)
        self.covered += len(slots)
        return tuple(fresh), slots


def build_execution_plan(schedules: Iterable[Interleaving],
                         programs: Sequence[TransactionProgram],
                         terminal_scope: str = "component") -> ExecutionPlan:
    """Partition a schedule stream into representatives and reuse assignments."""
    reducer = StreamingReducer(programs, terminal_scope=terminal_scope)
    _, assignment = reducer.reduce(schedules)
    return ExecutionPlan(executed=tuple(reducer.executed),
                         assignment=tuple(assignment),
                         terminal_scope=terminal_scope)
