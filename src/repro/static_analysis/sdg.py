"""The static dependency graph: conflict edges between program footprints.

A :class:`ConflictEdge` says "some interleaving could order this pair of
steps so that they conflict on this item" — ``ww`` (write/write), ``wr``
(write then read), or ``rw`` (read then write, an antidependency).  ``wr``
and ``rw`` edges are *directed* — the phenomena patterns care about order
(P2 is ``r1 .. w2``, P1 is ``w1 .. r2``) — while the symmetric ``ww``
conflict is recorded once per step pair (lower transaction id first).

Opaque steps (predicate selects, cursor operations, computed inserts) have
no statically-known footprint; the graph records their positions so verdict
rules can refuse to claim ``IMPOSSIBLE`` from structure alone whenever any
program contains one.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Sequence, Set, Tuple

from ..engine.programs import TransactionProgram

__all__ = ["Verdict", "ConflictEdge", "StaticDependencyGraph", "build_sdg"]


class Verdict(enum.Enum):
    """The outcome of a static (phenomenon, level) query."""

    #: No interleaving of these programs can realize the pattern — sound.
    IMPOSSIBLE = "impossible"
    #: The defining edge pattern exists; the witnessing edges explain how.
    POSSIBLE = "possible"
    #: Opaque footprints leave the question statically undecidable.
    UNKNOWN = "unknown"


@dataclass(frozen=True)
class ConflictEdge:
    """A directed potential conflict between two program steps on one item."""

    kind: str  #: ``"ww"``, ``"wr"``, or ``"rw"``
    src_txn: int
    src_step: int
    dst_txn: int
    dst_step: int
    item: str

    def describe(self) -> str:
        """``T1.s0 -ww[x]-> T2.s1`` for human-readable explanations."""
        return (f"T{self.src_txn}.s{self.src_step} -{self.kind}[{self.item}]-> "
                f"T{self.dst_txn}.s{self.dst_step}")


@dataclass(frozen=True)
class StaticDependencyGraph:
    """Every potential conflict edge among a program set, plus opacity info.

    ``reads``/``writes`` map each transaction id to its ``(step, item)``
    pairs in program order (exact footprints only); ``opaque_steps`` lists
    the ``(txn, step)`` positions whose footprints are opaque.
    """

    txns: Tuple[int, ...]
    edges: Tuple[ConflictEdge, ...]
    opaque_steps: Tuple[Tuple[int, int], ...]
    reads: Tuple[Tuple[int, Tuple[Tuple[int, str], ...]], ...]
    writes: Tuple[Tuple[int, Tuple[Tuple[int, str], ...]], ...]

    @property
    def has_opaque(self) -> bool:
        """True when any step's footprint is statically unknown."""
        return bool(self.opaque_steps)

    def edges_of(self, kind: str) -> Tuple[ConflictEdge, ...]:
        """All edges of one kind (``ww``/``wr``/``rw``), enumeration order."""
        return tuple(edge for edge in self.edges if edge.kind == kind)

    def reads_of(self, txn: int) -> Tuple[Tuple[int, str], ...]:
        """``(step, item)`` read pairs of one transaction, program order."""
        return dict(self.reads)[txn]

    def writes_of(self, txn: int) -> Tuple[Tuple[int, str], ...]:
        """``(step, item)`` write pairs of one transaction, program order."""
        return dict(self.writes)[txn]

    def read_items(self, txn: int) -> FrozenSet[str]:
        """The set of items a transaction reads (exact footprints only)."""
        return frozenset(item for _, item in self.reads_of(txn))

    def write_items(self, txn: int) -> FrozenSet[str]:
        """The set of items a transaction writes (exact footprints only)."""
        return frozenset(item for _, item in self.writes_of(txn))

    # -- pattern candidate queries ---------------------------------------------------

    def repeated_reads(self) -> Tuple[Tuple[int, str], ...]:
        """``(txn, item)`` pairs where one transaction reads an item twice."""
        found: List[Tuple[int, str]] = []
        for txn, pairs in self.reads:
            seen: Set[str] = set()
            for _, item in pairs:
                if item in seen and (txn, item) not in found:
                    found.append((txn, item))
                seen.add(item)
        return tuple(found)

    def read_then_write_pairs(self) -> Tuple[Tuple[int, str], ...]:
        """``(txn, item)`` pairs where a read of an item precedes a write of it."""
        found: List[Tuple[int, str]] = []
        writes = dict(self.writes)
        for txn, pairs in self.reads:
            for read_step, item in pairs:
                later = any(step > read_step and written == item
                            for step, written in writes[txn])
                if later and (txn, item) not in found:
                    found.append((txn, item))
        return tuple(found)

    def write_then_read_pairs(self) -> Tuple[Tuple[int, str], ...]:
        """``(txn, item)`` pairs where a write of an item precedes a read of it.

        Non-empty means a transaction can observe its *own* update, which is
        what distinguishes "all reads come from one snapshot instant" from
        "reads mix snapshot versions with own writes" under SI.
        """
        found: List[Tuple[int, str]] = []
        reads = dict(self.reads)
        for txn, pairs in self.writes:
            for write_step, item in pairs:
                later = any(step > write_step and read == item
                            for step, read in reads[txn])
                if later and (txn, item) not in found:
                    found.append((txn, item))
        return tuple(found)

    def read_skew_candidates(self) -> Tuple[Tuple[int, int, str, str], ...]:
        """``(reader, writer, x, y)``: reader reads both items, writer writes both."""
        found: List[Tuple[int, int, str, str]] = []
        for reader in self.txns:
            seen = self.read_items(reader)
            if len(seen) < 2:
                continue
            for writer in self.txns:
                if writer == reader:
                    continue
                common = sorted(seen & self.write_items(writer))
                if len(common) >= 2:
                    found.append((reader, writer, common[0], common[1]))
        return tuple(found)

    def write_skew_candidates(self) -> Tuple[Tuple[int, int, str, str], ...]:
        """``(t1, t2, x, y)``: t1 reads x / t2 writes x, t2 reads y / t1 writes y.

        A crossed pair of rw-antidependencies on distinct items — the static
        shape of an A5B cycle.
        """
        found: List[Tuple[int, int, str, str]] = []
        for i, t1 in enumerate(self.txns):
            for t2 in self.txns[i + 1:]:
                forward = sorted(self.read_items(t1) & self.write_items(t2))
                backward = sorted(self.read_items(t2) & self.write_items(t1))
                for x in forward:
                    for y in backward:
                        if x != y:
                            found.append((t1, t2, x, y))
        return tuple(found)


def build_sdg(programs: Sequence[TransactionProgram]) -> StaticDependencyGraph:
    """Enumerate every potential conflict edge among ``programs``.

    Edges are enumerated deterministically: source transactions in program
    order, then destination transactions, then step order, so witnessing edge
    sets are stable across runs.
    """
    reads: Dict[int, List[Tuple[int, str]]] = {}
    writes: Dict[int, List[Tuple[int, str]]] = {}
    opaque: List[Tuple[int, int]] = []
    txns: List[int] = []
    for program in programs:
        txn = program.txn
        txns.append(txn)
        reads[txn] = []
        writes[txn] = []
        for step_index, footprint in enumerate(program.footprints()):
            if footprint.opaque:
                opaque.append((txn, step_index))
                continue
            for item in sorted(footprint.reads):
                reads[txn].append((step_index, item))
            for item in sorted(footprint.writes):
                writes[txn].append((step_index, item))

    edges: List[ConflictEdge] = []
    for src in txns:
        for dst in txns:
            if src == dst:
                continue
            for src_step, item in writes[src]:
                for dst_step, other in writes[dst]:
                    if src < dst and item == other:
                        edges.append(ConflictEdge(
                            "ww", src, src_step, dst, dst_step, item))
                for dst_step, other in reads[dst]:
                    if item == other:
                        edges.append(ConflictEdge(
                            "wr", src, src_step, dst, dst_step, item))
            for src_step, item in reads[src]:
                for dst_step, other in writes[dst]:
                    if item == other:
                        edges.append(ConflictEdge(
                            "rw", src, src_step, dst, dst_step, item))

    return StaticDependencyGraph(
        txns=tuple(txns),
        edges=tuple(edges),
        opaque_steps=tuple(opaque),
        reads=tuple((txn, tuple(pairs)) for txn, pairs in reads.items()),
        writes=tuple((txn, tuple(pairs)) for txn, pairs in writes.items()),
    )
