"""Repo invariant linter: the rules the codebase silently depends on, enforced.

Eight invariants keep the explorer's determinism and checkpoint/restore
contracts honest, and none of them is expressible in a generic linter:

* **determinism** (AST) — no wall-clock reads (``time.time``,
  ``datetime.now`` and friends) and no module-level ``random.*`` calls
  (which share interpreter-global state) anywhere under ``src/repro``.
  ``time.perf_counter`` is fine (timing stats are excluded from result
  fingerprints) and seeded ``random.Random(...)`` instances are fine (their
  streams are pure functions of the seed).
* **checkpoint-completeness** (AST) — any class that defines both
  ``__init__`` and ``checkpoint`` must reference every attribute its
  ``__init__`` assigns somewhere in its checkpoint/restore machinery,
  or list it in a class-level ``_checkpoint_stable`` tuple (the explicit
  "immutable configuration, not state" marker).  A mutable attribute
  missing from both is exactly the bug that makes trie-executor restores
  diverge from fresh runs.
* **optional-imports** (AST) — optional accelerator dependencies (numpy)
  are never imported at module scope under ``src/repro``: the explorer's
  batch kernel imports numpy lazily inside a probe function, and every core
  module must stay importable on a pure-python install (the CI
  ``tests-no-numpy`` leg runs the explorer suite exactly that way).
* **picklability** (runtime) — every registered program set must survive
  the process boundary the parallel explorer ships it across:
  ``ProgramSetSpec`` round-trips through pickle and the registered builder
  pickles by reference.
* **footprint-coverage** (runtime) — every concrete
  :class:`~repro.engine.programs.Step` subclass either overrides
  ``footprint()`` or carries ``opaque_footprint = True``, the explicit
  "this step is opaque to the static analyzer" marker.  A step with
  neither would silently default to an opaque footprint, quietly degrading
  both partial-order reduction and the static dependency graph.
* **store-records** (runtime) — the campaign store's serialization
  (:mod:`repro.persist.records`) is canonical and lossless:
  ``decode(encode(x)) == x`` exactly, encoding is a pure function, and
  every row element is an SQL-native scalar, across representative
  schedule records, memoized outcomes, classifications, and Table 4 cells
  (stalled and deadlock-aborted shapes included).  This is the invariant
  that makes resumed campaigns byte-identical to uninterrupted ones.
* **lease-records** (runtime) — the distributed runner's lease rows obey
  the same contract: every lease state round-trips losslessly through
  ``lease_to_row``/``lease_from_row``, encoding is pure, row elements are
  SQL-native scalars, and an out-of-vocabulary state is rejected rather
  than silently persisted.  A drifting lease row is how a crashed
  campaign resumes into the wrong work-queue state.
* **certificate-records** (runtime) — the online certifier's anomaly
  certificates obey the same contract: every phenomenon code round-trips
  losslessly through ``certificate_to_row``/``certificate_from_row``,
  encoding is pure, row elements are SQL-native scalars, and an unknown
  certificate code is rejected rather than silently persisted.  A lossy
  certificate row would make persisted service evidence disagree with
  what the classifier actually witnessed.

Run as ``python -m repro.static_analysis.repolint [root]`` (exits non-zero
on any violation); CI runs it repo-wide and requires zero.
"""

from __future__ import annotations

import ast
import importlib
import pickle
import pkgutil
import sys
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, List, Optional, Sequence, Set, Tuple

__all__ = [
    "Violation",
    "lint_determinism",
    "lint_checkpoints",
    "lint_optional_imports",
    "lint_picklability",
    "lint_footprints",
    "lint_store_records",
    "lint_lease_records",
    "lint_certificate_records",
    "lint_tree",
    "lint_paths",
    "lint_repo",
    "main",
]


@dataclass(frozen=True)
class Violation:
    """One invariant breach: which check, where, and what is wrong."""

    check: str
    path: str
    line: int
    message: str

    def render(self) -> str:
        return f"{self.path}:{self.line}: [{self.check}] {self.message}"


# -- determinism ---------------------------------------------------------------------

#: ``module.attr`` calls that read the wall clock or ambient entropy.
_WALL_CLOCK_CALLS = {
    ("time", "time"),
    ("time", "time_ns"),
    ("datetime", "now"),
    ("datetime", "utcnow"),
    ("datetime", "today"),
    ("date", "today"),
}

#: The only ``random.*`` attribute that may be called: seeded generator
#: construction.  Module-level functions (``random.random``, ``shuffle``...)
#: draw from the interpreter-global stream and are banned.
_RANDOM_ALLOWED = {"Random", "SystemRandom"}


def _dotted(node: ast.AST) -> Optional[Tuple[str, str]]:
    """``("time", "time")`` for a ``time.time`` attribute access, else None."""
    if isinstance(node, ast.Attribute) and isinstance(node.value, ast.Name):
        return node.value.id, node.attr
    return None


def lint_determinism(tree: ast.AST, path: str) -> List[Violation]:
    """Wall-clock reads and global-stream randomness, anywhere in a module."""
    violations: List[Violation] = []
    for node in ast.walk(tree):
        if not isinstance(node, ast.Call):
            continue
        target = _dotted(node.func)
        if target is None:
            continue
        if target in _WALL_CLOCK_CALLS:
            violations.append(Violation(
                "determinism", path, node.lineno,
                f"wall-clock call {target[0]}.{target[1]}() breaks the "
                f"explorer's determinism contract (use a logical clock, or "
                f"time.perf_counter for timing stats)"))
        elif target[0] == "random" and target[1] not in _RANDOM_ALLOWED:
            violations.append(Violation(
                "determinism", path, node.lineno,
                f"module-level random.{target[1]}() draws from interpreter-"
                f"global state; use a seeded random.Random instance"))
    return violations


# -- optional imports ----------------------------------------------------------------

#: Dependencies that must stay optional: importing one at module scope would
#: make a core module unimportable on a pure-python install.
_OPTIONAL_DEPENDENCIES = ("numpy",)


def _module_scope_nodes(tree: ast.AST) -> Iterable[ast.AST]:
    """Every node reachable without entering a function or lambda body."""
    stack = list(ast.iter_child_nodes(tree))
    while stack:
        node = stack.pop()
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            continue
        yield node
        stack.extend(ast.iter_child_nodes(node))


def _optional_dependency(name: Optional[str]) -> Optional[str]:
    if name is None:
        return None
    root = name.split(".", 1)[0]
    return root if root in _OPTIONAL_DEPENDENCIES else None


def lint_optional_imports(tree: ast.AST, path: str) -> List[Violation]:
    """Optional accelerator dependencies must be imported lazily.

    An ``import numpy`` (or ``from numpy import ...``) at module scope —
    including under module-level conditionals — would break plain imports of
    that module on installs without the ``fast`` extra.  Function-local
    imports (the lazy-probe pattern in ``repro.explorer.batch_kernel``) are
    the sanctioned form.
    """
    violations: List[Violation] = []
    for node in _module_scope_nodes(tree):
        names: List[str] = []
        if isinstance(node, ast.Import):
            names = [alias.name for alias in node.names]
        elif isinstance(node, ast.ImportFrom):
            names = [node.module] if node.module else []
        for name in names:
            dependency = _optional_dependency(name)
            if dependency is not None:
                violations.append(Violation(
                    "optional-imports", path, node.lineno,
                    f"module-scope import of optional dependency "
                    f"{dependency!r}; import it lazily inside the function "
                    f"that needs it so core modules stay importable without "
                    f"the 'fast' extra"))
    return violations


# -- checkpoint completeness ---------------------------------------------------------


def _assigned_self_attrs(func: ast.FunctionDef) -> List[Tuple[str, int]]:
    """``self.X`` names assigned anywhere in a function, with line numbers."""
    found: List[Tuple[str, int]] = []
    seen: Set[str] = set()
    for node in ast.walk(func):
        targets: List[ast.expr] = []
        if isinstance(node, ast.Assign):
            targets = list(node.targets)
        elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
            targets = [node.target]
        for target in targets:
            if (isinstance(target, ast.Attribute)
                    and isinstance(target.value, ast.Name)
                    and target.value.id == "self"
                    and target.attr not in seen):
                seen.add(target.attr)
                found.append((target.attr, target.lineno))
    return found


def _referenced_self_attrs(funcs: Iterable[ast.FunctionDef]) -> Set[str]:
    """Every ``self.X`` referenced (read or written) across the functions."""
    names: Set[str] = set()
    for func in funcs:
        for node in ast.walk(func):
            if (isinstance(node, ast.Attribute)
                    and isinstance(node.value, ast.Name)
                    and node.value.id == "self"):
                names.add(node.attr)
    return names


def _stable_names(cls: ast.ClassDef) -> Set[str]:
    """The class-level ``_checkpoint_stable`` exemption tuple, if declared."""
    for node in cls.body:
        if isinstance(node, ast.Assign):
            for target in node.targets:
                if isinstance(target, ast.Name) and target.id == "_checkpoint_stable":
                    try:
                        value = ast.literal_eval(node.value)
                    except ValueError:
                        return set()
                    return {str(name) for name in value}
    return set()


def lint_checkpoints(tree: ast.AST, path: str) -> List[Violation]:
    """Every ``__init__``-assigned attribute must reach the checkpoint token.

    The reference scan covers the class's ``checkpoint`` and ``restore``
    methods plus any sibling method whose name mentions ``checkpoint`` (the
    helper pattern), so tokens assembled via ``self._base_checkpoint()``
    count.  ``_checkpoint_stable = ("attr", ...)`` marks immutable
    configuration that deliberately stays out of the token.
    """
    violations: List[Violation] = []
    for cls in ast.walk(tree):
        if not isinstance(cls, ast.ClassDef):
            continue
        methods = {node.name: node for node in cls.body
                   if isinstance(node, ast.FunctionDef)}
        init = methods.get("__init__")
        checkpoint = methods.get("checkpoint")
        if init is None or checkpoint is None:
            continue
        body = [stmt for stmt in checkpoint.body
                if not (isinstance(stmt, ast.Expr)
                        and isinstance(stmt.value, ast.Constant))]
        if all(isinstance(stmt, ast.Raise) for stmt in body):
            continue  # an unsupported-checkpoint stub has no token to audit
        scan = [func for name, func in methods.items()
                if name in ("checkpoint", "restore") or "checkpoint" in name]
        referenced = _referenced_self_attrs(scan)
        stable = _stable_names(cls)
        for attr, line in _assigned_self_attrs(init):
            if attr in referenced or attr in stable:
                continue
            violations.append(Violation(
                "checkpoint-completeness", path, line,
                f"{cls.name}.__init__ assigns self.{attr} but "
                f"{cls.name}.checkpoint/restore never references it; add it "
                f"to the token or declare it in _checkpoint_stable"))
    return violations


# -- runtime checks ------------------------------------------------------------------


def lint_picklability() -> List[Violation]:
    """Registered program sets must cross the worker process boundary."""
    from ..workloads.program_sets import (
        ProgramSetSpec,
        available_program_sets,
        resolve_program_set,
    )

    violations: List[Violation] = []
    for name in available_program_sets():
        spec = ProgramSetSpec.make(name)
        try:
            clone = pickle.loads(pickle.dumps(spec))
        except Exception as error:  # noqa: BLE001 - report, don't crash
            violations.append(Violation(
                "picklability", "repro.workloads.program_sets", 0,
                f"spec for program set {name!r} does not pickle: {error}"))
            continue
        if clone != spec:
            violations.append(Violation(
                "picklability", "repro.workloads.program_sets", 0,
                f"spec for program set {name!r} does not round-trip by value"))
        builder = resolve_program_set(spec)
        try:
            pickle.loads(pickle.dumps(builder))
        except Exception as error:  # noqa: BLE001
            violations.append(Violation(
                "picklability", "repro.workloads.program_sets", 0,
                f"builder for program set {name!r} does not pickle by "
                f"reference: {error}"))
    return violations


def _import_repro_modules() -> None:
    """Import every repro submodule so Step subclasses register themselves."""
    import repro

    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        importlib.import_module(info.name)


def _concrete_subclasses(base: type) -> List[type]:
    found: List[type] = []
    for sub in base.__subclasses__():
        found.append(sub)
        found.extend(_concrete_subclasses(sub))
    return found


def lint_footprints() -> List[Violation]:
    """Every concrete Step overrides ``footprint`` or is marked opaque."""
    _import_repro_modules()
    from ..engine.programs import Step

    violations: List[Violation] = []
    for sub in _concrete_subclasses(Step):
        overrides = "footprint" in sub.__dict__ or any(
            "footprint" in ancestor.__dict__
            for ancestor in sub.__mro__[1:-1] if ancestor is not Step)
        marked = getattr(sub, "opaque_footprint", False)
        if not overrides and not marked:
            violations.append(Violation(
                "footprint-coverage", sys.modules[sub.__module__].__file__ or
                sub.__module__, 0,
                f"Step subclass {sub.__name__} neither overrides footprint() "
                f"nor sets opaque_footprint = True; the static analyzer "
                f"would silently treat it as opaque"))
    return violations


def _store_record_fixtures():
    """Representative campaign-store payloads, worst cases included."""
    from ..analysis.coverage import ExploredCell
    from ..core.isolation import Possibility
    from ..explorer.memo import HistoryClassification, ScheduleOutcome
    from ..explorer.worker import ScheduleRecord

    records = [
        ScheduleRecord((1, 2, 1, 2), "w1[x] r2[x] c1 c2", True, (),
                       (1, 2), (), 0, 0, False),
        ScheduleRecord((1, 2), "w1[x] w2[x] a1 c2", False, ("P0", "P4"),
                       (2,), (1,), 1, 1, False),          # deadlock-aborted
        ScheduleRecord((10, 11, 10), "w10[x] r11[x]", False, ("P1",),
                       (), (10, 11), 3, 0, True),         # stalled, 2-digit txns
    ]
    outcomes = [ScheduleOutcome(r.history, r.serializable, r.phenomena,
                                r.committed, r.aborted, r.blocked_events,
                                r.deadlocks, r.stalled) for r in records]
    classification = HistoryClassification(
        shorthand="w1[x] c1", serializable=True, phenomena=(),
        committed=(1,), aborted=())
    cell = ExploredCell(
        code="P2", possibility=Possibility.SOMETIMES_POSSIBLE, schedules=12,
        manifested=3, stalled=1, witness=("variant-a", (1, 2, 1), "r1[x] w2[x]"),
        variant_frequencies=(("variant-a", 0.5), ("variant-b", 0.0)),
        pruned_variants=1, static_reasons=(("variant-c", "no rw edge"),))
    return records, outcomes, classification, cell


def lint_store_records() -> List[Violation]:
    """Campaign-store serialization is canonical and lossless.

    The persist layer's determinism contract: ``decode(encode(x)) == x``
    exactly, ``encode`` is a pure function (same input → same row twice),
    and every row element is an SQL-native scalar — for schedule records,
    memoized outcomes, shared classifications, and explored Table 4 cells,
    including stalled and deadlock-aborted shapes.  A breach here is the bug
    that makes a resumed campaign's coverage report drift from the
    uninterrupted one.
    """
    from ..persist import records as rec

    where = "repro.persist.records"
    violations: List[Violation] = []

    def check(kind: str, value, encode, decode) -> None:
        row = encode(value)
        again = encode(value)
        if row != again:
            violations.append(Violation(
                "store-records", where, 0,
                f"{kind} encoding is not deterministic: {row!r} != {again!r}"))
        flat = row if isinstance(row, tuple) else (row,)
        for element in flat:
            if not isinstance(element, (int, str, type(None))):
                violations.append(Violation(
                    "store-records", where, 0,
                    f"{kind} row element {element!r} is not an SQL-native "
                    f"scalar (int/str/None)"))
        try:
            decoded = decode(row)
        except Exception as error:  # noqa: BLE001 - report, don't crash
            violations.append(Violation(
                "store-records", where, 0,
                f"{kind} decoding crashed on its own encoding: {error}"))
            return
        if decoded != value:
            violations.append(Violation(
                "store-records", where, 0,
                f"{kind} does not round-trip: {value!r} -> {decoded!r}"))

    records, outcomes, classification, cell = _store_record_fixtures()
    for record in records:
        check("ScheduleRecord", record, rec.record_to_row, rec.record_from_row)
        if rec.record_from_bytes(rec.record_to_bytes(record)) != record:
            violations.append(Violation(
                "store-records", where, 0,
                f"ScheduleRecord bytes round-trip fails for {record!r}"))
    for outcome in outcomes:
        check("ScheduleOutcome", outcome,
              lambda value: rec.outcome_to_row((1, 2, 1), value),
              lambda row: rec.outcome_from_row(row)[1])
    check("HistoryClassification", classification,
          lambda value: rec.classification_to_row(value.shorthand, value),
          lambda row: rec.classification_from_row(row)[1])
    check("ExploredCell", cell, rec.cell_to_payload, rec.cell_from_payload)
    return violations


def lint_lease_records() -> List[Violation]:
    """Lease serialization is canonical, lossless, and state-checked.

    One :class:`~repro.persist.records.LeaseRecord` fixture per legal state
    (pending, leased, done, poisoned — owner present and absent) must
    round-trip exactly through ``lease_to_row``/``lease_from_row`` with a
    pure encoding and SQL-native row elements, and an invalid state must
    raise instead of encoding.  The lease table is what a restarted parent
    trusts to rebuild its work queue; a lossy row here resurrects
    quarantined chunks or re-runs committed ones.
    """
    from ..persist import records as rec

    where = "repro.persist.records"
    violations: List[Violation] = []
    fixtures = [
        rec.LeaseRecord("SERIALIZABLE", 0, "pending", 0),
        rec.LeaseRecord("READ COMMITTED", 3, "leased", 17, owner="w1",
                        attempts=2),
        rec.LeaseRecord("Snapshot Isolation", 11, "done", 4, owner="w0",
                        attempts=1),
        rec.LeaseRecord("REPEATABLE READ", 7, "poisoned", 99, attempts=5),
    ]
    for lease in fixtures:
        row = rec.lease_to_row(lease)
        if row != rec.lease_to_row(lease):
            violations.append(Violation(
                "lease-records", where, 0,
                f"lease encoding is not deterministic for {lease!r}"))
        for element in row:
            if not isinstance(element, (int, str, type(None))):
                violations.append(Violation(
                    "lease-records", where, 0,
                    f"lease row element {element!r} is not an SQL-native "
                    f"scalar (int/str/None)"))
        try:
            decoded = rec.lease_from_row(row)
        except Exception as error:  # noqa: BLE001 - report, don't crash
            violations.append(Violation(
                "lease-records", where, 0,
                f"lease decoding crashed on its own encoding: {error}"))
            continue
        if decoded != lease:
            violations.append(Violation(
                "lease-records", where, 0,
                f"lease does not round-trip: {lease!r} -> {decoded!r}"))
    bogus = rec.LeaseRecord("SERIALIZABLE", 0, "zombie", 1)
    try:
        rec.lease_to_row(bogus)
    except ValueError:
        pass
    else:
        violations.append(Violation(
            "lease-records", where, 0,
            "lease_to_row accepted out-of-vocabulary state 'zombie'; "
            "unknown states must raise, not persist"))
    return violations


def lint_certificate_records() -> List[Violation]:
    """Certificate serialization is canonical, lossless, and code-checked.

    One :class:`~repro.persist.records.CertificateRecord` fixture per legal
    certificate code (every phenomenon plus ``CYCLE``) must round-trip
    exactly through ``certificate_to_row``/``certificate_from_row`` with a
    pure encoding and SQL-native row elements, and an unknown code must
    raise instead of encoding.  Certificates are the service's durable
    evidence; a lossy row here would let the persisted record disagree with
    the verdict the online classifier actually certified.
    """
    from ..persist import records as rec

    where = "repro.persist.records"
    violations: List[Violation] = []
    fixtures = [
        rec.CertificateRecord(f"stream-{index % 3}", index, code,
                              txns=(index + 1, index + 2),
                              items=("x", "y")[: index % 3],
                              op_index=index * 7,
                              witness=f"r{index + 1}[x] w{index + 2}[x]")
        for index, code in enumerate(rec.CERTIFICATE_CODES)
    ]
    for certificate in fixtures:
        row = rec.certificate_to_row(certificate)
        if row != rec.certificate_to_row(certificate):
            violations.append(Violation(
                "certificate-records", where, 0,
                f"certificate encoding is not deterministic for "
                f"{certificate!r}"))
        for element in row:
            if not isinstance(element, (int, str, type(None))):
                violations.append(Violation(
                    "certificate-records", where, 0,
                    f"certificate row element {element!r} is not an "
                    f"SQL-native scalar (int/str/None)"))
        try:
            decoded = rec.certificate_from_row(row)
        except Exception as error:  # noqa: BLE001 - report, don't crash
            violations.append(Violation(
                "certificate-records", where, 0,
                f"certificate decoding crashed on its own encoding: {error}"))
            continue
        if decoded != certificate:
            violations.append(Violation(
                "certificate-records", where, 0,
                f"certificate does not round-trip: {certificate!r} -> "
                f"{decoded!r}"))
    bogus = rec.CertificateRecord("s", 0, "P99", (1,), (), 0, "")
    try:
        rec.certificate_to_row(bogus)
    except ValueError:
        pass
    else:
        violations.append(Violation(
            "certificate-records", where, 0,
            "certificate_to_row accepted unknown code 'P99'; unknown codes "
            "must raise, not persist"))
    return violations


# -- drivers -------------------------------------------------------------------------


def lint_tree(tree: ast.AST, path: str) -> List[Violation]:
    """All AST checks over one parsed module."""
    return (lint_determinism(tree, path) + lint_checkpoints(tree, path)
            + lint_optional_imports(tree, path))


def lint_paths(paths: Iterable[Path]) -> List[Violation]:
    """All AST checks over a set of Python files."""
    violations: List[Violation] = []
    for path in sorted(paths):
        tree = ast.parse(path.read_text(encoding="utf-8"), filename=str(path))
        violations.extend(lint_tree(tree, str(path)))
    return violations


def lint_repo(root: Optional[Path] = None,
              runtime: bool = True) -> List[Violation]:
    """The full pass: AST checks over ``src/repro`` plus the runtime checks."""
    if root is None:
        root = Path(__file__).resolve().parents[2]  # .../src
    violations = lint_paths((root / "repro").rglob("*.py"))
    if runtime:
        violations.extend(lint_picklability())
        violations.extend(lint_footprints())
        violations.extend(lint_store_records())
        violations.extend(lint_lease_records())
        violations.extend(lint_certificate_records())
    return violations


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = list(sys.argv[1:] if argv is None else argv)
    root = Path(args[0]) if args else None
    violations = lint_repo(root)
    for violation in violations:
        print(violation.render())
    if violations:
        print(f"repolint: {len(violations)} violation(s)")
        return 1
    print("repolint: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main())
