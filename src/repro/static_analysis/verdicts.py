"""Per-(phenomenon, level) static verdicts over a dependency graph.

Each rule below answers "can this phenomenon's defining pattern form in any
interleaving of these programs under this level?" by combining three kinds
of argument:

* **Structural**: the pattern's candidate edges simply do not exist (no two
  programs write a common item ⇒ no P0).  Only sound when every footprint is
  exact — one opaque step downgrades a structural ``IMPOSSIBLE`` to
  ``UNKNOWN``.
* **Lock-scope** (Table 2): a lock held to the transaction's terminal makes
  the pattern's required orderings contradictory.  Long exclusive write
  locks leave no room for ``w1[x] .. w2[x]`` before T1's terminal (P0);
  long read locks leave no room for ``r1[x] .. w2[x]`` (P2/P4/A5A/A5B).
  These arguments hold even with opaque footprints, because they constrain
  the operations the pattern itself names.
* **Multiversion semantics**: the engines in :mod:`repro.mvcc` never expose
  uncommitted writes, and the single-valued mapping the classifier applies
  (``repro.explorer.memo``) emits each transaction's writes atomically with
  its terminal — so P0/P1/A1 cannot appear in any mapped history.  Snapshot
  reads additionally pin all of a transaction's foreign reads to one
  instant, killing A2/A5A when no program rereads its own writes.

Two rule sets share those arguments but answer different questions:

* :func:`analyze_programs` — **pattern semantics**: sound with respect to
  the detectors in :mod:`repro.core.phenomena` run on realized (or
  MV-mapped) histories.  This is what justifies dropping a detector from
  :func:`repro.explorer.explorer.explore`'s classification pass.
* :func:`analyze_scenario_programs` — **scenario semantics**: sound with
  respect to a curated scenario's ``manifests`` predicate.  The P2 and P3
  scenarios assert a *committed* reread/re-select observing a change (the
  strict A2/A3 shape), so they inherit the stricter rules; every other
  scenario manifests exactly when its pattern does.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, Optional, Sequence, Tuple

from ..core.isolation import IsolationLevelName
from ..engine.programs import TransactionProgram
from .levels import LevelProfile, profile_for
from .sdg import ConflictEdge, StaticDependencyGraph, Verdict, build_sdg

__all__ = [
    "StaticVerdict",
    "PATTERN_CODES",
    "analyze_sdg",
    "analyze_programs",
    "analyze_scenario_programs",
    "impossible_codes",
]


@dataclass(frozen=True)
class StaticVerdict:
    """One phenomenon's static verdict at one level, with its explanation."""

    code: str
    level: IsolationLevelName
    verdict: Verdict
    reason: str
    edges: Tuple[ConflictEdge, ...] = field(default=())

    def describe(self) -> str:
        """``P4 @ READ COMMITTED: POSSIBLE (reason) [edges]`` for reports."""
        text = f"{self.code} @ {self.level.value}: {self.verdict.value}"
        text += f" — {self.reason}"
        if self.edges:
            text += "".join(f"\n    {edge.describe()}" for edge in self.edges)
        return text


_Rule = Callable[[str, StaticDependencyGraph, LevelProfile], StaticVerdict]


def _impossible(code: str, profile: LevelProfile, reason: str) -> StaticVerdict:
    return StaticVerdict(code, profile.level, Verdict.IMPOSSIBLE, reason)


def _possible(code: str, profile: LevelProfile, reason: str,
              edges: Sequence[ConflictEdge]) -> StaticVerdict:
    return StaticVerdict(code, profile.level, Verdict.POSSIBLE, reason,
                         tuple(edges))


def _unknown(code: str, profile: LevelProfile, reason: str) -> StaticVerdict:
    return StaticVerdict(code, profile.level, Verdict.UNKNOWN, reason)


_OPAQUE_NOTE = ("opaque footprints (predicate / cursor / computed steps) "
                "hide reads and writes from the static graph")


def _edges_on(sdg: StaticDependencyGraph, kind: str, txn: int,
              item: str) -> Tuple[ConflictEdge, ...]:
    return tuple(e for e in sdg.edges_of(kind)
                 if e.src_txn == txn and e.item == item)


# -- the shared rule bodies ----------------------------------------------------------


def _rule_dirty_write(code: str, sdg: StaticDependencyGraph,
                      p: LevelProfile) -> StaticVerdict:
    """P0 ``w1[x] .. w2[x]`` before T1's terminal."""
    ww = sdg.edges_of("ww")
    if not ww and not sdg.has_opaque:
        return _impossible(code, p, "no two programs write a common item, so "
                                    "no w1[x]..w2[x] pair exists")
    if not p.single_version:
        return _impossible(code, p, "multiversion engines keep uncommitted "
                                    "writes private; each transaction's "
                                    "writes are atomic with its terminal in "
                                    "the single-valued mapping")
    if p.write_locks_long:
        return _impossible(code, p, "long exclusive write locks hold every "
                                    "written item to the writer's terminal, "
                                    "so a second write cannot intervene")
    if ww:
        return _possible(code, p, "short write locks release before the "
                                  "terminal; each ww edge is a candidate "
                                  "w1[x]..w2[x]", ww)
    return _unknown(code, p, _OPAQUE_NOTE)


def _rule_dirty_read(code: str, sdg: StaticDependencyGraph,
                     p: LevelProfile) -> StaticVerdict:
    """P1 ``w1[x] .. r2[x]`` before T1's terminal (A1 adds abort/commit
    constraints, which only shrink the pattern — same impossibility rule)."""
    wr = sdg.edges_of("wr")
    if not wr and not sdg.has_opaque:
        return _impossible(code, p, "no program reads an item another "
                                    "program writes, so no w1[x]..r2[x] "
                                    "pair exists")
    if not p.single_version:
        return _impossible(code, p, "multiversion reads only ever return "
                                    "committed versions; uncommitted writes "
                                    "are invisible to other transactions")
    if p.all_reads_locked and p.write_locks_long:
        return _impossible(code, p, "every read takes a shared lock that "
                                    "must wait out the writer's long "
                                    "exclusive lock, so no read of "
                                    "uncommitted data can be realized")
    if wr:
        return _possible(code, p, "reads take no lock (or the writer's lock "
                                  "is short); each wr edge is a candidate "
                                  "w1[x]..r2[x]", wr)
    return _unknown(code, p, _OPAQUE_NOTE)


def _rule_fuzzy_read(code: str, sdg: StaticDependencyGraph,
                     p: LevelProfile) -> StaticVerdict:
    """Broad P2 ``r1[x] .. w2[x]`` before T1's terminal."""
    rw = sdg.edges_of("rw")
    if not rw and not sdg.has_opaque:
        return _impossible(code, p, "no item read by one program is written "
                                    "by another, so no r1[x]..w2[x] pair "
                                    "exists")
    if p.single_version and p.read_locks_long:
        return _impossible(code, p, "long read locks hold every read item "
                                    "to the reader's terminal, so a foreign "
                                    "write cannot intervene")
    if rw:
        return _possible(code, p, "read locks are short or absent (and "
                                  "multiversion engines do not block "
                                  "writers); each rw edge is a candidate "
                                  "r1[x]..w2[x]", rw)
    return _unknown(code, p, _OPAQUE_NOTE)


def _rule_strict_fuzzy_read(code: str, sdg: StaticDependencyGraph,
                            p: LevelProfile) -> StaticVerdict:
    """Strict A2: T1 rereads x after T2's write of x commits, then commits."""
    candidates = [(txn, item) for txn, item in sdg.repeated_reads()
                  if any(other != txn and item in sdg.write_items(other)
                         for other in sdg.txns)]
    if not candidates and not sdg.has_opaque:
        return _impossible(code, p, "no program reads the same item twice "
                                    "while another writes it, so there is "
                                    "nothing to reread inconsistently")
    if p.single_version and p.read_locks_long:
        return _impossible(code, p, "long read locks hold every read item "
                                    "to the reader's terminal, so a foreign "
                                    "write cannot land between two reads")
    if (p.snapshot_reads and not sdg.write_then_read_pairs()
            and not sdg.has_opaque):
        return _impossible(code, p, "snapshot reads are pinned to the "
                                    "transaction-start instant and no "
                                    "program rereads its own writes, so "
                                    "both reads return the same version")
    if candidates:
        edges = tuple(e for txn, item in candidates
                      for e in _edges_on(sdg, "rw", txn, item))
        return _possible(code, p, "a reread can straddle a foreign "
                                  "committed write", edges)
    return _unknown(code, p, _OPAQUE_NOTE)


def _rule_phantom(code: str, sdg: StaticDependencyGraph,
                  p: LevelProfile) -> StaticVerdict:
    """P3/A3: a predicate read whose extent a foreign write changes.

    Predicate reads are exactly the opaque footprints, so structure decides
    the no-opaque case and locks decide the SERIALIZABLE case; anything else
    is statically undecidable.
    """
    if not sdg.has_opaque:
        return _impossible(code, p, "every footprint is exact — no step can "
                                    "issue a predicate read, so no phantom "
                                    "pattern can form")
    if p.single_version and p.predicate_read_locks_long and p.write_locks_long:
        return _impossible(code, p, "long predicate locks hold the "
                                    "predicate's whole extent to the "
                                    "reader's terminal, blocking any write "
                                    "that would change it")
    return _unknown(code, p, "predicate footprints are opaque; the static "
                             "graph cannot bound the predicate's extent")


def _rule_lost_update(code: str, sdg: StaticDependencyGraph,
                      p: LevelProfile) -> StaticVerdict:
    """P4 ``r1[x] .. w2[x] .. w1[x]``, T1 commits."""
    candidates = [(txn, item) for txn, item in sdg.read_then_write_pairs()
                  if any(other != txn and item in sdg.write_items(other)
                         for other in sdg.txns)]
    if not candidates and not sdg.has_opaque:
        return _impossible(code, p, "no program reads an item it later "
                                    "writes while another program also "
                                    "writes it — no RMW race exists")
    if p.single_version and p.read_locks_long:
        return _impossible(code, p, "the long read lock taken at r1[x] "
                                    "holds x to T1's terminal, so w2[x] "
                                    "cannot slip in before w1[x]")
    if candidates:
        edges = tuple(e for txn, item in candidates
                      for e in _edges_on(sdg, "rw", txn, item))
        return _possible(code, p, "a foreign write can land between a "
                                  "program's read and its dependent write",
                         edges)
    return _unknown(code, p, _OPAQUE_NOTE)


def _rule_cursor_lost_update(code: str, sdg: StaticDependencyGraph,
                             p: LevelProfile) -> StaticVerdict:
    """P4C: the cursor variant — ``rc1[x] .. w2[x] .. w1[x]``.

    Cursor reads are opaque footprints, so structure decides the no-opaque
    case; a cursor-duration (or longer) lock on the current row blocks the
    intervening write either way.
    """
    if not sdg.has_opaque:
        return _impossible(code, p, "every footprint is exact — no step "
                                    "reads through a cursor, so no rc1[x] "
                                    "exists")
    if p.single_version and p.cursor_read_locks_long:
        return _impossible(code, p, "cursor read locks are held to the "
                                    "reader's terminal, so no write can "
                                    "intervene while the cursor is on x")
    return _unknown(code, p, "cursor footprints are opaque; cursor-duration "
                             "locks (or their absence) decide dynamically")


def _rule_read_skew(code: str, sdg: StaticDependencyGraph,
                    p: LevelProfile) -> StaticVerdict:
    """A5A: T1 reads x, T2 writes x and y and commits, T1 reads y."""
    candidates = sdg.read_skew_candidates()
    if not candidates and not sdg.has_opaque:
        return _impossible(code, p, "no program reads two distinct items "
                                    "that a single other program writes, so "
                                    "no inconsistent pair can be observed")
    if p.single_version and p.read_locks_long:
        return _impossible(code, p, "the long read lock on the first item "
                                    "holds to the reader's terminal, so the "
                                    "writer cannot commit between the two "
                                    "reads")
    if (p.snapshot_reads and not sdg.write_then_read_pairs()
            and not sdg.has_opaque):
        return _impossible(code, p, "all of a transaction's reads come from "
                                    "one snapshot instant (and no program "
                                    "rereads its own writes), so the pair "
                                    "read is always mutually consistent")
    if candidates:
        edges = []
        for reader, writer, x, y in candidates:
            edges.extend(_edges_on(sdg, "rw", reader, x))
            edges.extend(e for e in sdg.edges_of("wr")
                         if e.src_txn == writer and e.dst_txn == reader
                         and e.item == y)
        return _possible(code, p, "the writer can commit between the "
                                  "reader's two reads", edges)
    return _unknown(code, p, _OPAQUE_NOTE)


def _rule_write_skew(code: str, sdg: StaticDependencyGraph,
                     p: LevelProfile) -> StaticVerdict:
    """A5B: crossed rw-antidependencies on distinct items, both commit."""
    candidates = sdg.write_skew_candidates()
    if not candidates and not sdg.has_opaque:
        return _impossible(code, p, "no pair of programs forms crossed "
                                    "read/write conflicts on two distinct "
                                    "items — no rw-antidependency cycle "
                                    "exists")
    if p.single_version and p.read_locks_long:
        return _impossible(code, p, "long read locks make the crossed "
                                    "orderings contradictory: each read "
                                    "lock holds its item past the other "
                                    "transaction's write")
    if candidates:
        edges = []
        for t1, t2, x, y in candidates:
            edges.extend(_edges_on(sdg, "rw", t1, x))
            edges.extend(_edges_on(sdg, "rw", t2, y))
        return _possible(code, p, "first-committer-wins only arbitrates ww "
                                  "conflicts; the crossed rw edges survive",
                         edges)
    return _unknown(code, p, _OPAQUE_NOTE)


#: Pattern semantics: sound w.r.t. the detectors on realized / mapped
#: histories.  The broad P2 rule covers A2's pattern superset, and P4's
#: pattern does not require the foreign writer to commit — so at SI the lost
#: update *pattern* stays possible (aborted-writer histories) even though
#: the first-committer-wins check stops committed lost updates.
PATTERN_RULES: Dict[str, _Rule] = {
    "P0": _rule_dirty_write,
    "P1": _rule_dirty_read,
    "A1": _rule_dirty_read,
    "P2": _rule_fuzzy_read,
    "A2": _rule_strict_fuzzy_read,
    "P3": _rule_phantom,
    "A3": _rule_phantom,
    "P4": _rule_lost_update,
    "P4C": _rule_cursor_lost_update,
    "A5A": _rule_read_skew,
    "A5B": _rule_write_skew,
}

#: Scenario-manifestation semantics: what the curated scenarios' `manifests`
#: predicates assert.  The P2 scenario requires a committed transaction to
#: observe two different values for one item (the strict A2 shape), and the
#: P3 scenario likewise asserts an observed change across a re-select, so
#: both use the stricter rules; all other scenarios manifest exactly when
#: their pattern occurs.
SCENARIO_RULES: Dict[str, _Rule] = dict(PATTERN_RULES)
SCENARIO_RULES["P2"] = _rule_strict_fuzzy_read

#: The codes the pattern analysis can rule on (== the detector registry).
PATTERN_CODES: Tuple[str, ...] = tuple(PATTERN_RULES)


def analyze_sdg(sdg: StaticDependencyGraph, level: IsolationLevelName,
                codes: Optional[Sequence[str]] = None,
                rules: Optional[Dict[str, _Rule]] = None,
                ) -> Dict[str, StaticVerdict]:
    """Verdicts for ``codes`` (default: all) on a prebuilt graph."""
    profile = profile_for(level)
    table = PATTERN_RULES if rules is None else rules
    selected = tuple(table) if codes is None else tuple(codes)
    verdicts = {}
    for code in selected:
        try:
            rule = table[code]
        except KeyError:
            raise KeyError(f"no static rule for phenomenon {code!r}") from None
        verdicts[code] = rule(code, sdg, profile)
    return verdicts


def analyze_programs(programs: Sequence[TransactionProgram],
                     level: IsolationLevelName,
                     codes: Optional[Sequence[str]] = None,
                     ) -> Dict[str, StaticVerdict]:
    """Pattern-semantics verdicts for a program set at one level.

    ``IMPOSSIBLE`` here licenses skipping the phenomenon's *detector* for
    every history these programs can realize at this level.
    """
    return analyze_sdg(build_sdg(programs), level, codes)


def analyze_scenario_programs(programs: Sequence[TransactionProgram],
                              code: str,
                              level: IsolationLevelName) -> StaticVerdict:
    """Scenario-manifestation verdict for one curated scenario variant.

    ``IMPOSSIBLE`` here licenses skipping the variant's entire interleaving
    space at this level: no schedule can satisfy the scenario's
    ``manifests`` predicate.
    """
    sdg = build_sdg(programs)
    return analyze_sdg(sdg, level, (code,), SCENARIO_RULES)[code]


def impossible_codes(programs: Sequence[TransactionProgram],
                     level: IsolationLevelName,
                     codes: Optional[Sequence[str]] = None) -> Tuple[str, ...]:
    """The codes statically impossible for these programs at this level."""
    verdicts = analyze_programs(programs, level, codes)
    return tuple(code for code, verdict in verdicts.items()
                 if verdict.verdict is Verdict.IMPOSSIBLE)
