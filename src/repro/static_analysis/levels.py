"""Per-level semantic profiles driving the static verdict rules.

A :class:`LevelProfile` distills what the verdict rules need to know about
an engine level into a handful of booleans.  For the six locking levels the
profile is *derived from the Table 2 policy itself* (:data:`POLICIES`), so a
policy change automatically flows into the static analysis; the two
multiversion levels (Snapshot Isolation, Oracle Read Consistency) are
described by the operational semantics of their engines in
:mod:`repro.mvcc`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

from ..core.isolation import IsolationLevelName
from ..locking.modes import LockDuration
from ..locking.policy import POLICIES, LockRule

__all__ = ["LevelProfile", "profile_for", "PROFILED_LEVELS"]


def _long(rule: Optional[LockRule]) -> bool:
    return rule is not None and rule.duration is LockDuration.LONG


@dataclass(frozen=True)
class LevelProfile:
    """The facts about one isolation level the static rules reason from."""

    level: IsolationLevelName
    #: Single-version engine: an uncommitted write is visible in place.
    #: Multiversion engines keep writes private until commit, and the
    #: single-valued history mapping emits them atomically with the terminal.
    single_version: bool
    #: Write locks are exclusive and held to the terminal (all levels above
    #: Degree 0 in Table 2).
    write_locks_long: bool = False
    #: Every kind of read (item, predicate, cursor) takes at least a short
    #: shared lock, so no read can see data under an exclusive lock.
    all_reads_locked: bool = False
    #: Item read locks are held to the terminal.
    item_read_locks_long: bool = False
    #: Cursor read locks are held to the terminal (not merely to cursor move).
    cursor_read_locks_long: bool = False
    #: Predicate read locks are held to the terminal.
    predicate_read_locks_long: bool = False
    #: Reads come from a snapshot fixed at transaction start (SI), so a
    #: transaction's foreign reads are all from one instant.
    snapshot_reads: bool = False

    @property
    def read_locks_long(self) -> bool:
        """Item *and* cursor reads lock to the terminal — kills every
        ``r1[x] .. w2[x]``-before-terminal pattern on exact footprints."""
        return self.item_read_locks_long and self.cursor_read_locks_long


def _locking_profile(level: IsolationLevelName) -> LevelProfile:
    policy = POLICIES[level]
    reads = (policy.item_read, policy.predicate_read, policy.cursor_read)
    return LevelProfile(
        level=level,
        single_version=True,
        write_locks_long=_long(policy.write),
        all_reads_locked=all(rule is not None for rule in reads),
        item_read_locks_long=_long(policy.item_read),
        cursor_read_locks_long=_long(policy.cursor_read),
        predicate_read_locks_long=_long(policy.predicate_read),
    )


_MV_PROFILES = {
    # SI: reads from the transaction-start snapshot, first-committer-wins on
    # ww conflicts, no locks.
    IsolationLevelName.SNAPSHOT_ISOLATION: LevelProfile(
        level=IsolationLevelName.SNAPSHOT_ISOLATION,
        single_version=False,
        snapshot_reads=True,
    ),
    # ORC: statement-level read consistency — each read sees the latest
    # committed version at its own instant, so two reads of one item can
    # straddle a foreign commit.
    IsolationLevelName.ORACLE_READ_CONSISTENCY: LevelProfile(
        level=IsolationLevelName.ORACLE_READ_CONSISTENCY,
        single_version=False,
    ),
}


def profile_for(level: IsolationLevelName) -> LevelProfile:
    """The static-analysis profile for any engine-backed level."""
    if level in POLICIES:
        return _locking_profile(level)
    try:
        return _MV_PROFILES[level]
    except KeyError:
        raise KeyError(
            f"{level.value} has no engine, so no static profile") from None


#: Every level :func:`profile_for` can answer for, in Table 2 + Section 4 order.
PROFILED_LEVELS: Tuple[IsolationLevelName, ...] = (
    tuple(POLICIES) + tuple(_MV_PROFILES))
