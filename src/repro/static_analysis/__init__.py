"""Static anomaly analysis: decide Table 4 cells without executing schedules.

The paper's phenomena are defined over *conflict patterns* — P0 needs two
writes of one item, A5B needs a crossed pair of read/write antidependencies —
which makes much of Table 4 decidable from the transaction programs' static
footprints alone.  :meth:`repro.engine.programs.Step.footprint` already
exposes those footprints for partial-order reduction; this package builds a
level-aware **static dependency graph** (SDG) on top of them:

* :func:`build_sdg` enumerates every possible ww/wr/rw conflict edge between
  program pairs (:class:`ConflictEdge`), tracking the steps whose footprints
  are opaque (predicate selects, cursor fetches, computed inserts).
* :func:`analyze_programs` filters the dangerous edge patterns per isolation
  level — the same lock-scope rules the :class:`~repro.locking.policy`
  tables encode (long write locks kill P0 edges, long read locks kill the
  P2/P4/A5A/A5B patterns) plus the multiversion semantics of the Section 4.2
  engines (snapshot-stable reads, first-committer-wins) — and emits one
  :class:`StaticVerdict` per phenomenon: ``IMPOSSIBLE`` (no edge pattern can
  form; sound, never witnessed dynamically), ``POSSIBLE`` (the pattern
  exists, with the witnessing edges as the explanation), or ``UNKNOWN``
  (opaque footprints leave the question open).
* :func:`analyze_scenario_programs` is the scenario-manifestation flavour
  used to prune :func:`~repro.explorer.scenarios.explore_scenario` and
  :func:`~repro.analysis.matrix.compute_table4_explored`.
* :mod:`repro.static_analysis.repolint` is the repo invariant linter
  (``python -m repro.static_analysis.repolint``): determinism, checkpoint
  completeness, workload picklability, and footprint coverage.

Soundness contract: ``IMPOSSIBLE`` is a proof sketch and is gated in CI
against the dynamically-explored Table 4 (no statically-impossible cell may
ever be witnessed); ``POSSIBLE`` only means "not disproved" and carries the
candidate edges, never a guarantee of manifestation.
"""

from .levels import LevelProfile, profile_for
from .sdg import ConflictEdge, StaticDependencyGraph, Verdict, build_sdg
from .verdicts import (
    PATTERN_CODES,
    StaticVerdict,
    analyze_programs,
    analyze_scenario_programs,
    impossible_codes,
)

__all__ = [
    "Verdict",
    "ConflictEdge",
    "StaticDependencyGraph",
    "build_sdg",
    "LevelProfile",
    "profile_for",
    "StaticVerdict",
    "PATTERN_CODES",
    "analyze_programs",
    "analyze_scenario_programs",
    "impossible_codes",
]
