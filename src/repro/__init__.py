"""repro — a reproduction of "A Critique of ANSI SQL Isolation Levels" (SIGMOD 1995).

The library has four layers:

* :mod:`repro.core` — the paper's formalism: histories and the shorthand
  parser, dependency graphs and serializability, the phenomenon/anomaly
  detectors (P0–P4, P4C, A1–A3, A5A, A5B), the phenomenon-based isolation
  level definitions of Tables 1 and 3, the Figure 2 hierarchy, multiversion
  history analysis, and the paper's catalogued example histories H1–H5.
* :mod:`repro.storage`, :mod:`repro.locking`, :mod:`repro.mvcc`,
  :mod:`repro.engine` — the executable substrate: an in-memory database with
  predicates and constraints, a lock manager with predicate locks and deadlock
  detection, the Table 2 locking scheduler, Snapshot Isolation with
  first-committer-wins, Oracle-style Read Consistency, and a deterministic
  schedule runner.
* :mod:`repro.workloads` — the paper's anomaly scenarios (Table 4's columns)
  and randomized workload generators.
* :mod:`repro.analysis` — the machinery that regenerates Tables 1, 3, and 4
  and verifies the Figure 2 hierarchy and the numbered remarks.

Typical entry points::

    from repro import parse_history, detect_all, is_serializable
    from repro import Database, Session, IsolationLevelName
    from repro.analysis import compute_table4, EXPECTED_TABLE_4
"""

from .core import (
    ALL_PHENOMENA,
    CATALOG,
    History,
    IsolationLevelName,
    Operation,
    OperationKind,
    Possibility,
    build_dependency_graph,
    detect_all,
    is_serializable,
    parse_history,
)
from .storage import Database, Predicate, Row, Table
from .engine import (
    Commit,
    ReadItem,
    ScheduleRunner,
    TransactionProgram,
    WriteItem,
    run_schedule,
)
from .locking import LockingEngine
from .mvcc import ReadConsistencyEngine, SnapshotIsolationEngine
from .testbed import (
    ALL_ENGINE_LEVELS,
    LOCKING_LEVELS,
    Session,
    engine_factory,
    make_engine,
    run_programs,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # core
    "ALL_PHENOMENA", "CATALOG", "History", "IsolationLevelName", "Operation",
    "OperationKind", "Possibility", "build_dependency_graph", "detect_all",
    "is_serializable", "parse_history",
    # storage
    "Database", "Predicate", "Row", "Table",
    # engines and execution
    "Commit", "ReadItem", "ScheduleRunner", "TransactionProgram", "WriteItem",
    "run_schedule", "LockingEngine", "ReadConsistencyEngine",
    "SnapshotIsolationEngine",
    # testbed
    "ALL_ENGINE_LEVELS", "LOCKING_LEVELS", "Session", "engine_factory",
    "make_engine", "run_programs",
]
