"""Seeded load generator for the online certifier service.

Drives :class:`~repro.service.server.CertifierServer` (or an in-process
:class:`~repro.service.online.OnlineClassifier`) with many concurrent client
streams shaped like real contended workloads:

* **zipfian hotspots** — item choice follows a truncated zipf(s) law, so a
  handful of hot keys absorb most of the traffic and actually collide;
* **bursty arrival** — clients emit operations in bursts separated by pauses,
  so transaction lifetimes overlap irregularly instead of in lockstep;
* **configurable mix** — client count, transactions per client, multiplexing
  width, write ratio, abort rate, stall rate, predicate rate.

Everything is driven by ``random.Random(seed + client_index)`` — byte-identical
streams across runs and platforms, which is what lets the bench re-drain the
exact generated streams through the offline classifier to assert byte
equality.
"""

from __future__ import annotations

import asyncio
import json
import random
import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from .online import OnlineClassifier

__all__ = ["LoadConfig", "LoadReport", "generate_stream", "run_load"]

#: Transaction ids are partitioned per client so streams never collide.
_CLIENT_TXN_STRIDE = 1_000_000


@dataclass(frozen=True)
class LoadConfig:
    """Knobs for one load campaign (frozen: a config is a cache key)."""

    clients: int = 50
    transactions_per_client: int = 20
    ops_per_transaction: int = 6
    concurrent_txns: int = 4
    items: int = 12
    zipf_s: float = 1.2
    write_ratio: float = 0.45
    abort_rate: float = 0.08
    stall_rate: float = 0.05
    predicate_rate: float = 0.10
    burst: int = 8
    burst_pause: float = 0.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.clients < 1:
            raise ValueError("clients must be >= 1")
        if self.transactions_per_client < 1:
            raise ValueError("transactions_per_client must be >= 1")
        if self.ops_per_transaction < 1:
            raise ValueError("ops_per_transaction must be >= 1")
        if self.concurrent_txns < 1:
            raise ValueError("concurrent_txns must be >= 1")
        if self.items < 1:
            raise ValueError("items must be >= 1")
        if self.burst < 1:
            raise ValueError("burst must be >= 1")


@dataclass(frozen=True)
class LoadReport:
    """What a load run produced and how fast the certifier kept up."""

    clients: int
    ops: int
    certificates: int
    anomalies_per_sec: float
    p50_classify_us: float
    p99_classify_us: float
    wall_s: float
    byte_equal: Optional[bool]

    def to_dict(self) -> Dict[str, object]:
        return {
            "clients": self.clients,
            "ops": self.ops,
            "certificates": self.certificates,
            "anomalies_per_sec": round(self.anomalies_per_sec, 3),
            "p50_classify_us": round(self.p50_classify_us, 3),
            "p99_classify_us": round(self.p99_classify_us, 3),
            "wall_s": round(self.wall_s, 6),
            "byte_equal": self.byte_equal,
        }


def _zipf_weights(n: int, s: float) -> List[float]:
    return [1.0 / (rank ** s) for rank in range(1, n + 1)]


def generate_stream(config: LoadConfig, client_index: int) -> List[str]:
    """The client's full operation stream as shorthand tokens.

    Deterministic in ``(config, client_index)``.  The stream multiplexes up to
    ``config.concurrent_txns`` transactions so anomalies can actually form
    *within* the stream (each stream gets its own classifier; cross-stream
    interleaving is not observed).
    """
    rng = random.Random(config.seed * 7919 + client_index)
    items = [f"k{i}" for i in range(config.items)]
    weights = _zipf_weights(config.items, config.zipf_s)
    predicates = ["P", "Q"]
    base = client_index * _CLIENT_TXN_STRIDE + 1
    ops: List[str] = []

    remaining = config.transactions_per_client
    next_txn = base
    live: List[Tuple[int, int]] = []   # (txn, ops already emitted)

    def open_txn() -> None:
        nonlocal next_txn, remaining
        live.append((next_txn, 0))
        next_txn += 1
        remaining -= 1

    while remaining > 0 or live:
        while remaining > 0 and len(live) < config.concurrent_txns:
            open_txn()
        slot = rng.randrange(len(live))
        txn, done = live[slot]
        if done >= config.ops_per_transaction:
            roll = rng.random()
            if roll < config.stall_rate:
                pass        # stalled: drop with no terminal
            elif roll < config.stall_rate + config.abort_rate:
                ops.append(f"a{txn}")
            else:
                ops.append(f"c{txn}")
            live.pop(slot)
            continue
        if rng.random() < config.predicate_rate:
            pred = rng.choice(predicates)
            if rng.random() < config.write_ratio:
                (item,) = rng.choices(items, weights)
                ops.append(f"w{txn}[{item}:{pred}]")
            else:
                ops.append(f"r{txn}[{pred}]")
        else:
            (item,) = rng.choices(items, weights)
            if rng.random() < config.write_ratio:
                ops.append(f"w{txn}[{item}]")
            else:
                kind = "rc" if rng.random() < 0.15 else "r"
                ops.append(f"{kind}{txn}[{item}]")
        live[slot] = (txn, done + 1)
    return ops


def drain_offline(config: LoadConfig, client_index: int):
    """The offline classification of the client's realized stream.

    Regenerates the exact stream (same seed), parses it as one history, and
    classifies it with the batch classifier — the byte-equality reference.
    """
    from ..core.history import parse_history
    from ..explorer.memo import BatchClassifier
    text = " ".join(generate_stream(config, client_index))
    history = parse_history(text, name=f"client-{client_index}")
    return BatchClassifier().classify(history)


def _percentile(sorted_values: List[float], q: float) -> float:
    if not sorted_values:
        return 0.0
    pos = min(len(sorted_values) - 1, int(q * (len(sorted_values) - 1) + 0.5))
    return sorted_values[pos]


def run_load(config: LoadConfig, *, verify: bool = True) -> LoadReport:
    """Drive every client stream through in-process classifiers and report.

    The in-process path measures the classifier itself (no socket framing);
    the server bench path goes through :func:`run_load_tcp`.  With
    ``verify=True`` every stream's final verdict is re-checked byte-for-byte
    against the offline classifier.
    """
    latencies: List[float] = []
    total_ops = 0
    total_certs = 0
    byte_equal: Optional[bool] = True if verify else None
    start = time.perf_counter()
    for client in range(config.clients):
        tokens = generate_stream(config, client)
        classifier = OnlineClassifier(f"client-{client}")
        for token in tokens:
            t0 = time.perf_counter()
            classifier.feed_shorthand(token)
            latencies.append((time.perf_counter() - t0) * 1e6)
        total_ops += classifier.ops
        total_certs += len(classifier.certificates)
        if verify:
            off = drain_offline(config, client)
            v = classifier.verdict()
            if v.classification_fields() != (off.serializable, off.phenomena,
                                             off.committed, off.aborted):
                byte_equal = False
    wall = time.perf_counter() - start
    latencies.sort()
    return LoadReport(
        clients=config.clients,
        ops=total_ops,
        certificates=total_certs,
        anomalies_per_sec=total_certs / wall if wall > 0 else 0.0,
        p50_classify_us=_percentile(latencies, 0.50),
        p99_classify_us=_percentile(latencies, 0.99),
        wall_s=wall,
        byte_equal=byte_equal,
    )


async def _drive_client(host: str, port: int, config: LoadConfig,
                        client_index: int) -> Tuple[int, int]:
    """One TCP client session: open, feed bursts, verdict, close."""
    reader, writer = await asyncio.open_connection(host, port)
    stream = f"client-{client_index}"

    async def call(payload: Dict[str, object]) -> Dict[str, object]:
        writer.write((json.dumps(payload) + "\n").encode("utf-8"))
        await writer.drain()
        line = await reader.readline()
        if not line:
            raise ConnectionError("server closed the connection")
        return json.loads(line.decode("utf-8"))

    await call({"type": "open", "stream": stream})
    tokens = generate_stream(config, client_index)
    ops = 0
    certs = 0
    for i in range(0, len(tokens), config.burst):
        burst = tokens[i:i + config.burst]
        reply = await call({"type": "ops", "stream": stream,
                            "ops": " ".join(burst)})
        if reply.get("type") == "error":
            raise RuntimeError(f"server error: {reply.get('error')}")
        ops += int(reply.get("ops", 0))
        certs += len(reply.get("certificates", ()))
        if config.burst_pause > 0:
            await asyncio.sleep(config.burst_pause)
    await call({"type": "close", "stream": stream})
    writer.close()
    try:
        await writer.wait_closed()
    except (ConnectionError, OSError):
        pass
    return ops, certs


async def run_load_tcp(host: str, port: int, config: LoadConfig) -> LoadReport:
    """Drive a running :class:`CertifierServer` with N concurrent clients."""
    start = time.perf_counter()
    results = await asyncio.gather(*(
        _drive_client(host, port, config, client)
        for client in range(config.clients)))
    wall = time.perf_counter() - start
    total_ops = sum(r[0] for r in results)
    total_certs = sum(r[1] for r in results)
    # Pull the server-side classify latency distribution.
    reader, writer = await asyncio.open_connection(host, port)
    writer.write(b'{"type": "stats"}\n')
    await writer.drain()
    stats = json.loads((await reader.readline()).decode("utf-8"))
    writer.close()
    try:
        await writer.wait_closed()
    except (ConnectionError, OSError):
        pass
    return LoadReport(
        clients=config.clients,
        ops=total_ops,
        certificates=total_certs,
        anomalies_per_sec=total_certs / wall if wall > 0 else 0.0,
        p50_classify_us=float(stats.get("p50_classify_us", 0.0)),
        p99_classify_us=float(stats.get("p99_classify_us", 0.0)),
        wall_s=wall,
        byte_equal=None,
    )
