"""``python -m repro serve`` / ``python -m repro bench`` — the service CLI.

``serve`` boots the online certifier server and runs until SIGTERM/SIGINT
(clean shutdown exits 0).  ``bench`` boots an in-process server, drives the
seeded load generator against it over real sockets, and prints the
:class:`~repro.service.loadgen.LoadReport` as JSON.

Exit codes follow the repo convention: 0 success, 1 runtime failure,
2 usage/config error.
"""

from __future__ import annotations

import argparse
import asyncio
import json
import signal
import sys
from typing import Optional, Sequence

from .loadgen import LoadConfig, run_load, run_load_tcp
from .server import CertifierServer

__all__ = ["serve_main", "bench_main"]


def _open_store(path: Optional[str]):
    if path is None:
        return None
    from ..persist import SqliteStore
    return SqliteStore(path)


def _serve_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro serve",
        description="Run the online isolation certifier server.")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=0,
                        help="TCP port (default: 0 = ephemeral; the bound "
                             "port is printed on stdout)")
    parser.add_argument("--store", default=None,
                        help="SQLite store path; closed streams' "
                             "certificates are persisted there")
    parser.add_argument("--campaign", default="service",
                        help="campaign id for persisted certificates")
    parser.add_argument("--evict-interval", type=int, default=256,
                        help="operations between eviction passes")
    return parser


async def _serve(args: argparse.Namespace) -> int:
    store = _open_store(args.store)
    server = CertifierServer(
        args.host, args.port, store=store,
        campaign_id=args.campaign if store is not None else None,
        evict_interval=args.evict_interval)
    await server.start()
    print(f"certifier listening on {server.host}:{server.port}", flush=True)
    stop = asyncio.Event()
    loop = asyncio.get_running_loop()
    for signum in (signal.SIGTERM, signal.SIGINT):
        try:
            loop.add_signal_handler(signum, stop.set)
        except NotImplementedError:     # platforms without signal handlers
            pass
    try:
        await stop.wait()
    finally:
        await server.stop()
        if store is not None:
            store.close()
    print("certifier stopped", flush=True)
    return 0


def serve_main(argv: Optional[Sequence[str]] = None) -> int:
    args = _serve_parser().parse_args(argv)
    try:
        return asyncio.run(_serve(args))
    except KeyboardInterrupt:
        return 0
    except OSError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1


def _bench_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro bench",
        description="Benchmark the online certifier: boot an in-process "
                    "server, drive N concurrent load-generator clients over "
                    "TCP, report anomalies/sec and classify latency.")
    parser.add_argument("--clients", type=int, default=50)
    parser.add_argument("--transactions", type=int, default=20,
                        help="transactions per client")
    parser.add_argument("--ops", type=int, default=6,
                        help="operations per transaction")
    parser.add_argument("--items", type=int, default=12,
                        help="distinct data items (zipfian hotspots)")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--in-process", action="store_true",
                        help="skip the socket layer and bench the "
                             "classifier directly (also re-verifies byte "
                             "equality against the offline classifier)")
    return parser


async def _bench_tcp(config: LoadConfig) -> int:
    server = CertifierServer()
    await server.start()
    try:
        report = await run_load_tcp(server.host, server.port, config)
    finally:
        await server.stop()
    print(json.dumps(report.to_dict(), indent=2, sort_keys=True))
    return 0


def bench_main(argv: Optional[Sequence[str]] = None) -> int:
    args = _bench_parser().parse_args(argv)
    try:
        config = LoadConfig(clients=args.clients,
                            transactions_per_client=args.transactions,
                            ops_per_transaction=args.ops,
                            items=args.items,
                            seed=args.seed)
    except ValueError as error:
        print(f"error: {error}", file=sys.stderr)
        return 2
    try:
        if args.in_process:
            report = run_load(config, verify=True)
            print(json.dumps(report.to_dict(), indent=2, sort_keys=True))
            if report.byte_equal is False:
                print("error: online verdicts diverged from the offline "
                      "classifier", file=sys.stderr)
                return 1
            return 0
        return asyncio.run(_bench_tcp(config))
    except OSError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1
