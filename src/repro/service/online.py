"""The incremental online classifier behind the isolation certifier service.

The offline pipeline (:class:`repro.explorer.memo.BatchClassifier`) re-walks a
complete history: one :class:`~repro.core.phenomena.HistoryIndex` pass, eleven
detector scans, one conflict-graph acyclicity check.  A live stream cannot
afford that per operation, so this module maintains the detector state and the
committed-transaction conflict graph *incrementally*, one operation at a time
(the update-time maintenance idea of Berkholz et al., "FO+MOD queries under
updates") — and proves the paper's detectors admit it:

* Every phenomenon's firing condition is **monotone** under history extension:
  once the forbidden subsequence exists in a prefix, it exists in every
  extension (terminal positions are immutable once set, and each detector's
  position constraints only reference operations at or before the op that
  completes the pattern).  So each code fires exactly once, at the first
  operation that completes it, and the per-stream verdict is the set of fired
  codes — identical to running :func:`~repro.core.phenomena.detect_flags`
  over the drained history.
* Serializability is **monotone decreasing**: conflict edges are only added,
  so the flag is sticky-False.  A cycle becomes fully committed exactly when
  its last member commits, and that member lies on the cycle — one DFS from
  each committing transaction over committed-only edges is a complete check.

**Windowed eviction.**  Long streams must not retain every terminated
transaction.  A terminated transaction's per-item records, pair state, and
graph node are discarded once its whole *conflict component* (the connected
component of recorded conflict pairs, tracked by a union-find) has terminated
before every currently-active transaction started.  Position ordering then
guarantees no future operation can close a cycle or complete a detector
pattern through an evicted transaction: any path back into the component
would need an edge from a transaction with an operation *preceding* the
component's last terminal, and every such transaction is in the component.
Once the stream is non-serializable the graph is dropped entirely and
eviction falls back to the cheaper per-transaction watermark rule (safe for
the remaining detectors, whose patterns all require overlap).  Only the
committed/aborted id sets — part of the verdict contract — grow with the
stream.

**Multiversion streams** (version-subscripted operations, as realized by the
Snapshot Isolation engines) follow the paper's Section 4.2 touchstone: the
verdict is judged on the MV serialization graph and the ``mv_to_sv`` mapping,
neither of which is prefix-monotone (a later commit re-stamps where snapshot
reads land in the mapped history).  Such streams are therefore buffered and
re-classified through the offline core at each terminal operation — byte
equality is structural — and cannot be combined with eviction (pass
``evict=False``).  The single-version path is the fully incremental one.

Certificates are :class:`repro.persist.records.CertificateRecord` rows:
``(stream, seq, code, txns, items, op_index, witness)``, where ``witness`` is
the shorthand fragment of the involved transactions' operations still inside
the bounded witness window.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple

from ..core.history import History, HistoryError, parse_history
from ..core.operations import Operation, OperationKind
from ..core.phenomena import ALL_PHENOMENA, detect_all, detect_flags
from ..persist.records import CertificateRecord

__all__ = [
    "AnomalyCertificate",
    "OnlineClassifier",
    "StreamError",
    "StreamVerdict",
    "PHENOMENON_CODES",
]

#: The certificate type is the persist-layer record — emitted instances can be
#: committed to a CampaignStore without translation.
AnomalyCertificate = CertificateRecord

#: Detector codes in registry order (the verdict sorts them lexically, like
#: the offline classifier does).
PHENOMENON_CODES: Tuple[str, ...] = tuple(ALL_PHENOMENA)


class StreamError(ValueError):
    """A malformed stream: an operation after its transaction terminated, a
    versioned operation on a single-version stream, or an unsupported mode
    combination."""


@dataclass(frozen=True)
class StreamVerdict:
    """The classifier's current verdict over everything fed so far.

    ``serializable``/``phenomena``/``committed``/``aborted`` carry exactly the
    fields of :class:`repro.explorer.memo.HistoryClassification` (shorthand
    excluded — the classifier does not retain the full history), so draining a
    stream and comparing against the offline classifier is a field-for-field
    equality check.
    """

    serializable: bool
    phenomena: Tuple[str, ...]
    committed: Tuple[int, ...]
    aborted: Tuple[int, ...]
    ops: int

    def classification_fields(self) -> Tuple:
        """The comparison currency against an offline ``HistoryClassification``."""
        return (self.serializable, self.phenomena, self.committed, self.aborted)


class _TxnState:
    """Per-transaction live state (dropped at eviction)."""

    __slots__ = ("start", "terminal", "first_reads", "first_cursor_reads",
                 "first_pred_reads", "last_writes", "last_pred_writes")

    def __init__(self, start: int):
        self.start = start
        self.terminal: Optional[int] = None
        #: item -> position of this transaction's first read (any read kind).
        self.first_reads: Dict[str, int] = {}
        #: item -> position of the first *cursor* read (P4C's gate).
        self.first_cursor_reads: Dict[str, int] = {}
        #: predicate -> position of the first predicate read.
        self.first_pred_reads: Dict[str, int] = {}
        #: item -> position of the last write (A2/A5A mark creation).
        self.last_writes: Dict[str, int] = {}
        #: predicate -> position of the last predicate write (A3).
        self.last_pred_writes: Dict[str, int] = {}


class OnlineClassifier:
    """Classify one live transaction stream, one operation at a time.

    ``feed`` accepts a single :class:`~repro.core.operations.Operation` and
    returns the certificates that operation fired (usually none);
    ``feed_shorthand`` parses and feeds a paper-shorthand fragment.
    ``verdict()`` is byte-equal (field-for-field) to classifying the drained
    history offline, at any prefix.

    Streams must be **well-formed**: no operations after a transaction's
    terminal (the same rule :class:`~repro.core.history.History` validates).
    Feeding a violating operation raises :class:`StreamError`.
    """

    def __init__(self, stream: str = "stream", *,
                 multiversion: bool = False,
                 evict: Optional[bool] = None,
                 evict_interval: int = 256,
                 witness_window: int = 32,
                 initial_items: Optional[Sequence[str]] = None):
        if evict is None:
            evict = not multiversion
        if multiversion and evict:
            raise StreamError(
                "windowed eviction is not supported for multiversion streams "
                "(the mv_to_sv mapping is not prefix-monotone); pass "
                "evict=False")
        if evict_interval < 1:
            raise ValueError("evict_interval must be >= 1")
        self.stream = stream
        self.multiversion = multiversion
        self.evict = evict
        self.evict_interval = evict_interval
        self._initial_items = initial_items
        self._ops = 0
        self._witness: deque = deque(maxlen=max(1, witness_window))
        self._certificates: List[CertificateRecord] = []
        self._fired: Dict[str, bool] = {code: False for code in PHENOMENON_CODES}
        self._serializable = True
        self._committed: Set[int] = set()
        self._aborted: Set[int] = set()
        # -- single-version incremental state --------------------------------
        self._txns: Dict[int, _TxnState] = {}
        self._active: Dict[int, int] = {}            # txn -> start position
        self._readers: Dict[str, Dict[int, int]] = {}    # item -> txn -> first pos
        self._writers: Dict[str, Dict[int, int]] = {}    # item -> txn -> first pos
        self._pred_readers: Dict[str, Dict[int, int]] = {}
        self._pred_writers: Dict[str, Dict[int, int]] = {}
        #: item -> (position, txn) of the latest write, plus the latest write
        #: by any *other* transaction — a two-deep top list answering "is
        #: there a foreign write after position p" in O(1) (P4/P4C).
        self._last_write: Dict[str, Tuple[int, int]] = {}
        self._last_write_other: Dict[str, Tuple[int, int]] = {}
        # A1 dirty pairs: (writer, reader) recorded while the writer is active.
        self._dirty_by_writer: Dict[int, Set[int]] = {}
        self._dirty_by_reader: Dict[int, Set[int]] = {}
        self._a1_ready: Dict[int, int] = {}          # reader -> aborted writer
        # A2/A3/A5A marks placed at a writer's commit on still-active readers.
        self._fuzzy_marks: Dict[int, Dict[str, int]] = {}    # txn -> item -> writer
        self._phantom_marks: Dict[int, Dict[str, int]] = {}  # txn -> pred -> writer
        self._a2_armed: Dict[int, Tuple[int, str]] = {}      # txn -> (writer, item)
        self._a3_armed: Dict[int, Tuple[int, str]] = {}
        self._a5a_marks: Dict[int, Dict[str, int]] = {}      # txn -> item -> writer
        # P4/P4C pending: pattern complete, waiting for T1's commit.
        self._p4_pending: Dict[int, Tuple[int, str]] = {}    # txn -> (other, item)
        self._p4c_pending: Dict[int, Tuple[int, str]] = {}
        # A5B: (a, b) -> items a read before b wrote; partner adjacency.
        self._rw_items: Dict[Tuple[int, int], Set[str]] = {}
        self._rw_partners: Dict[int, Set[int]] = {}
        # Committed-transaction conflict graph: recorded (pending) pairs and
        # the committed-only adjacency the cycle check walks.
        self._pairs_out: Dict[int, Set[int]] = {}
        self._pairs_in: Dict[int, Set[int]] = {}
        self._adj: Dict[int, Set[int]] = {}
        # Union-find over conflict components (the eviction closure).
        self._parent: Dict[int, int] = {}
        self._members: Dict[int, List[int]] = {}
        self._agg: Dict[int, List[int]] = {}   # root -> [active_count, max_terminal]
        # -- multiversion buffered state --------------------------------------
        self._mv_ops: List[Operation] = []

    # -- public surface -------------------------------------------------------

    @property
    def ops(self) -> int:
        """Operations fed so far."""
        return self._ops

    @property
    def certificates(self) -> Tuple[CertificateRecord, ...]:
        """Every certificate emitted so far, in firing order."""
        return tuple(self._certificates)

    def feed_shorthand(self, text: str) -> List[CertificateRecord]:
        """Parse a shorthand fragment (``"r1[x] w2[x] c1"``) and feed each op."""
        try:
            fragment = parse_history(text, name=self.stream,
                                     multiversion=self.multiversion)
        except HistoryError as error:
            # A fragment that is malformed on its own (unparseable token, or
            # an op after its transaction's terminal within the fragment) is
            # a stream violation, same as the cross-fragment case feed()
            # detects.
            raise StreamError(str(error)) from error
        fresh: List[CertificateRecord] = []
        for op in fragment:
            fresh.extend(self.feed(op))
        return fresh

    def feed(self, op: Operation) -> List[CertificateRecord]:
        """Ingest one operation; return the certificates it fired."""
        txn = op.txn
        if txn in self._committed or txn in self._aborted:
            raise StreamError(
                f"transaction T{txn} performs {op.to_shorthand()} after "
                f"terminating")
        mark = len(self._certificates)
        pos = self._ops
        self._ops += 1
        self._witness.append((txn, op.to_shorthand()))
        if self.multiversion:
            self._feed_mv(op, pos)
        else:
            self._feed_sv(op, pos)
        return self._certificates[mark:]

    def verdict(self) -> StreamVerdict:
        """The verdict over everything fed so far (offline-byte-equal)."""
        if self.multiversion:
            serializable, flags = self._mv_classify()
            phenomena = tuple(sorted(c for c, f in flags.items() if f))
        else:
            serializable = self._serializable
            phenomena = tuple(sorted(c for c, f in self._fired.items() if f))
        return StreamVerdict(
            serializable=serializable,
            phenomena=phenomena,
            committed=tuple(sorted(self._committed)),
            aborted=tuple(sorted(self._aborted)),
            ops=self._ops,
        )

    # -- certificate plumbing -------------------------------------------------

    def _witness_for(self, txns: Tuple[int, ...]) -> str:
        involved = set(txns)
        return " ".join(sh for t, sh in self._witness if t in involved)

    def _fire(self, code: str, txns: Tuple[int, ...], items: Tuple[str, ...],
              pos: int) -> None:
        if self._fired.get(code):
            return
        self._fired[code] = True
        self._certificates.append(CertificateRecord(
            stream=self.stream,
            seq=len(self._certificates),
            code=code,
            txns=txns,
            items=items,
            op_index=pos,
            witness=self._witness_for(txns),
        ))
        self._drop_state_for(code)

    def _drop_state_for(self, code: str) -> None:
        """A fired flag is sticky — its bookkeeping can be discarded."""
        if code == "A1":
            self._dirty_by_writer.clear()
            self._dirty_by_reader.clear()
            self._a1_ready.clear()
        elif code == "A2":
            self._fuzzy_marks.clear()
            self._a2_armed.clear()
        elif code == "A3":
            self._phantom_marks.clear()
            self._a3_armed.clear()
        elif code == "P4":
            self._p4_pending.clear()
        elif code == "P4C":
            self._p4c_pending.clear()
        elif code == "A5A":
            self._a5a_marks.clear()
        elif code == "A5B":
            self._rw_items.clear()
            self._rw_partners.clear()

    def _fire_cycle(self, cycle: Tuple[int, ...], pos: int) -> None:
        self._serializable = False
        self._certificates.append(CertificateRecord(
            stream=self.stream,
            seq=len(self._certificates),
            code="CYCLE",
            txns=cycle,
            items=(),
            op_index=pos,
            witness=self._witness_for(cycle),
        ))
        # The graph has done its job; eviction falls back to the watermark rule.
        self._pairs_out.clear()
        self._pairs_in.clear()
        self._adj.clear()
        self._parent.clear()
        self._members.clear()
        self._agg.clear()

    # -- union-find over conflict components ----------------------------------

    def _uf_add(self, txn: int) -> None:
        if self._serializable and txn not in self._parent:
            self._parent[txn] = txn
            self._members[txn] = [txn]
            self._agg[txn] = [1, -1]

    def _uf_find(self, txn: int) -> int:
        parent = self._parent
        root = txn
        while parent[root] != root:
            root = parent[root]
        while parent[txn] != root:
            parent[txn], txn = root, parent[txn]
        return root

    def _uf_union(self, a: int, b: int) -> None:
        ra, rb = self._uf_find(a), self._uf_find(b)
        if ra == rb:
            return
        if len(self._members[ra]) < len(self._members[rb]):
            ra, rb = rb, ra
        self._parent[rb] = ra
        self._members[ra].extend(self._members.pop(rb))
        child = self._agg.pop(rb)
        agg = self._agg[ra]
        agg[0] += child[0]
        agg[1] = max(agg[1], child[1])

    def _uf_terminated(self, txn: int, pos: int) -> None:
        if self._serializable and txn in self._parent:
            agg = self._agg[self._uf_find(txn)]
            agg[0] -= 1
            agg[1] = max(agg[1], pos)

    # -- single-version incremental path ---------------------------------------

    def _state_for(self, txn: int, pos: int) -> _TxnState:
        state = self._txns.get(txn)
        if state is None:
            state = self._txns[txn] = _TxnState(pos)
            self._active[txn] = pos
            self._uf_add(txn)
        return state

    def _record_pair(self, earlier: int, later: int) -> None:
        """One conflict-order pair (an op of ``earlier`` precedes a
        conflicting op of ``later``) — the graph edge candidate."""
        if earlier == later or not self._serializable:
            return
        out = self._pairs_out.setdefault(earlier, set())
        if later not in out:
            out.add(later)
            self._pairs_in.setdefault(later, set()).add(earlier)
            self._uf_union(earlier, later)

    def _feed_sv(self, op: Operation, pos: int) -> None:
        kind = op.kind
        if kind is OperationKind.COMMIT:
            self._on_commit(op.txn, pos)
            return
        if kind is OperationKind.ABORT:
            self._on_abort(op.txn, pos)
            return
        if op.version is not None:
            raise StreamError(
                f"versioned operation {op.to_shorthand()} on a single-version "
                f"stream; open the stream with multiversion=True")
        state = self._state_for(op.txn, pos)
        if kind is OperationKind.READ or kind is OperationKind.CURSOR_READ:
            self._on_read(op, state, pos,
                          cursor=kind is OperationKind.CURSOR_READ)
        elif kind is OperationKind.PREDICATE_READ:
            self._on_pred_read(op, state, pos)
        elif kind.is_write:
            self._on_write(op, state, pos)
        if self.evict and self._ops % self.evict_interval == 0:
            self._evict_pass()

    def _on_read(self, op: Operation, state: _TxnState, pos: int,
                 cursor: bool) -> None:
        txn, item = op.txn, op.item
        item_writers = self._writers.get(item)
        active = self._active
        if item_writers:
            # P1: a read of an item some *active* foreign transaction wrote.
            if not self._fired["P1"]:
                for w in item_writers:
                    if w != txn and w in active:
                        self._fire("P1", (w, txn), (item,), pos)
                        break
            # A1 pair: resolved when the writer aborts / the reader commits.
            if not self._fired["A1"]:
                for w in item_writers:
                    if w != txn and w in active:
                        self._dirty_by_writer.setdefault(w, set()).add(txn)
                        self._dirty_by_reader.setdefault(txn, set()).add(w)
            for w in item_writers:
                self._record_pair(w, txn)      # wr edges
        if not self._fired["A5A"]:
            marks = self._a5a_marks.get(txn)
            if marks and item in marks:
                self._fire("A5A", (txn, marks[item]), (item,), pos)
        if not self._fired["A2"] and txn not in self._a2_armed:
            info = self._fuzzy_marks.get(txn)
            if info and item in info:
                self._a2_armed[txn] = (info[item], item)
        item_readers = self._readers.setdefault(item, {})
        if txn not in item_readers:
            item_readers[txn] = pos
        if item not in state.first_reads:
            state.first_reads[item] = pos
        if cursor and item not in state.first_cursor_reads:
            state.first_cursor_reads[item] = pos

    def _on_pred_read(self, op: Operation, state: _TxnState, pos: int) -> None:
        txn, pred = op.txn, op.predicate
        if not self._fired["A3"] and txn not in self._a3_armed:
            info = self._phantom_marks.get(txn)
            if info and pred in info:
                self._a3_armed[txn] = (info[pred], pred)
        pred_writers = self._pred_writers.get(pred)
        if pred_writers:
            for w in pred_writers:
                self._record_pair(w, txn)
        pred_readers = self._pred_readers.setdefault(pred, {})
        if txn not in pred_readers:
            pred_readers[txn] = pos
        if pred not in state.first_pred_reads:
            state.first_pred_reads[pred] = pos

    def _latest_foreign_write(self, item: str, txn: int) -> int:
        """Position of the latest write of ``item`` by another transaction
        (-1 if none) — the P4/P4C "interfering write" probe."""
        last = self._last_write.get(item)
        if last is None:
            return -1
        if last[1] != txn:
            return last[0]
        other = self._last_write_other.get(item)
        return other[0] if other is not None else -1

    def _on_write(self, op: Operation, state: _TxnState, pos: int) -> None:
        txn, item = op.txn, op.item
        active = self._active
        if item is not None:
            item_writers = self._writers.setdefault(item, {})
            item_readers = self._readers.get(item, {})
            if not self._fired["P0"]:
                for w in item_writers:
                    if w != txn and w in active:
                        self._fire("P0", (w, txn), (item,), pos)
                        break
            if not self._fired["P2"]:
                for r in item_readers:
                    if r != txn and r in active:
                        self._fire("P2", (r, txn), (item,), pos)
                        break
            # P4/P4C probe *before* registering this write: the interfering
            # write must be foreign and later than this txn's first read.
            if not self._fired["P4"] and txn not in self._p4_pending:
                first = state.first_reads.get(item)
                if first is not None:
                    foreign = self._latest_foreign_write(item, txn)
                    if foreign > first:
                        other = self._last_write[item]
                        owner = (other[1] if other[1] != txn
                                 else self._last_write_other[item][1])
                        self._p4_pending[txn] = (owner, item)
            if not self._fired["P4C"] and txn not in self._p4c_pending:
                first = state.first_cursor_reads.get(item)
                if first is not None:
                    foreign = self._latest_foreign_write(item, txn)
                    if foreign > first:
                        other = self._last_write[item]
                        owner = (other[1] if other[1] != txn
                                 else self._last_write_other[item][1])
                        self._p4c_pending[txn] = (owner, item)
            if not self._fired["A5B"]:
                for a in item_readers:
                    if a != txn:
                        key = (a, txn)
                        self._rw_items.setdefault(key, set()).add(item)
                        self._rw_partners.setdefault(a, set()).add(txn)
                        self._rw_partners.setdefault(txn, set()).add(a)
            for a in item_readers:
                self._record_pair(a, txn)      # rw edges
            for w in item_writers:
                self._record_pair(w, txn)      # ww edges
            if txn not in item_writers:
                item_writers[txn] = pos
            state.last_writes[item] = pos
            last = self._last_write.get(item)
            if last is not None and last[1] != txn:
                self._last_write_other[item] = last
            self._last_write[item] = (pos, txn)
        pred = op.predicate
        if pred is not None:
            pred_writers = self._pred_writers.setdefault(pred, {})
            pred_readers = self._pred_readers.get(pred, {})
            if not self._fired["P3"]:
                for r in pred_readers:
                    if r != txn and r in active:
                        self._fire("P3", (r, txn),
                                   tuple(filter(None, [item])), pos)
                        break
            for r in pred_readers:
                self._record_pair(r, txn)
            for w in pred_writers:
                self._record_pair(w, txn)
            if txn not in pred_writers:
                pred_writers[txn] = pos
            state.last_pred_writes[pred] = pos

    # -- terminal handling -----------------------------------------------------

    def _on_commit(self, txn: int, pos: int) -> None:
        state = self._state_for(txn, pos)
        state.terminal = pos
        self._active.pop(txn, None)
        self._committed.add(txn)
        self._uf_terminated(txn, pos)
        fired = self._fired
        # Patterns completed earlier that were waiting for this commit.
        if not fired["P4"] and txn in self._p4_pending:
            other, item = self._p4_pending.pop(txn)
            self._fire("P4", (txn, other), (item,), pos)
        if not fired["P4C"] and txn in self._p4c_pending:
            other, item = self._p4c_pending.pop(txn)
            self._fire("P4C", (txn, other), (item,), pos)
        if not fired["A2"] and txn in self._a2_armed:
            writer, item = self._a2_armed.pop(txn)
            self._fire("A2", (txn, writer), (item,), pos)
        if not fired["A3"] and txn in self._a3_armed:
            writer, pred = self._a3_armed.pop(txn)
            self._fire("A3", (txn, writer), (pred,), pos)
        if not fired["A1"] and txn in self._a1_ready:
            writer = self._a1_ready.pop(txn)
            self._fire("A1", (writer, txn), (), pos)
        # A1 pairs where this txn was the dirty *writer* can never fire now.
        if not fired["A1"]:
            for r in self._dirty_by_writer.pop(txn, ()):
                readers = self._dirty_by_reader.get(r)
                if readers is not None:
                    readers.discard(txn)
        # Marks targeting this txn die with it (it cannot read again).
        self._fuzzy_marks.pop(txn, None)
        self._phantom_marks.pop(txn, None)
        self._a5a_marks.pop(txn, None)
        # Mark creation: this commit is the "committed interfering update" of
        # A2/A3/A5A for every still-active reader that read before our write.
        if not fired["A2"]:
            for item, last_pos in state.last_writes.items():
                for a, first_pos in self._readers.get(item, {}).items():
                    if a != txn and a in self._active and first_pos < last_pos:
                        self._fuzzy_marks.setdefault(a, {})[item] = txn
        if not fired["A3"]:
            for pred, last_pos in state.last_pred_writes.items():
                for a, first_pos in self._pred_readers.get(pred, {}).items():
                    if a != txn and a in self._active and first_pos < last_pos:
                        self._phantom_marks.setdefault(a, {})[pred] = txn
        if not fired["A5A"] and len(state.last_writes) >= 2:
            written = state.last_writes
            for item, last_pos in written.items():
                for a, first_pos in self._readers.get(item, {}).items():
                    if a != txn and a in self._active and first_pos < last_pos:
                        marks = self._a5a_marks.setdefault(a, {})
                        for other_item in written:
                            if other_item != item and other_item not in marks:
                                marks[other_item] = txn
        # A5B: both sides committed with mutual rw dependencies on >= 2 items.
        if not fired["A5B"]:
            for p in list(self._rw_partners.get(txn, ())):
                if p in self._committed:
                    forward = self._rw_items.get((txn, p))
                    backward = self._rw_items.get((p, txn))
                    if (forward and backward
                            and len(forward | backward) >= 2):
                        self._fire("A5B", (txn, p),
                                   tuple(sorted(forward | backward)), pos)
                        break
                if p not in self._active:
                    self._drop_rw_pair(txn, p)
        # Conflict-graph edge activation + the one-source cycle check.
        if self._serializable:
            out = self._adj.setdefault(txn, set())
            for b in self._pairs_out.get(txn, ()):
                if b in self._committed and b != txn:
                    out.add(b)
            for a in self._pairs_in.get(txn, ()):
                if a in self._committed and a != txn:
                    self._adj.setdefault(a, set()).add(txn)
            cycle = self._find_cycle(txn)
            if cycle is not None:
                self._fire_cycle(cycle, pos)
        if self.evict and self._ops % self.evict_interval == 0:
            self._evict_pass()

    def _on_abort(self, txn: int, pos: int) -> None:
        state = self._state_for(txn, pos)
        state.terminal = pos
        self._active.pop(txn, None)
        self._aborted.add(txn)
        self._uf_terminated(txn, pos)
        # Aborted transactions leave the graph and every reader/writer index:
        # no detector pattern or committed-graph edge can involve them going
        # forward (only the position-based last-write probe, kept separately).
        for item in state.first_reads:
            group = self._readers.get(item)
            if group is not None:
                group.pop(txn, None)
                if not group:
                    del self._readers[item]
        for item in state.last_writes:
            group = self._writers.get(item)
            if group is not None:
                group.pop(txn, None)
                if not group:
                    del self._writers[item]
        for pred in state.first_pred_reads:
            group = self._pred_readers.get(pred)
            if group is not None:
                group.pop(txn, None)
                if not group:
                    del self._pred_readers[pred]
        for pred in state.last_pred_writes:
            group = self._pred_writers.get(pred)
            if group is not None:
                group.pop(txn, None)
                if not group:
                    del self._pred_writers[pred]
        # A1: an aborted dirty writer fires against already-committed readers
        # and arms still-active ones.
        if not self._fired["A1"]:
            for r in self._dirty_by_writer.pop(txn, ()):
                readers = self._dirty_by_reader.get(r)
                if readers is not None:
                    readers.discard(txn)
                if r in self._committed:
                    self._fire("A1", (txn, r), (), pos)
                elif r in self._active and r not in self._a1_ready:
                    self._a1_ready[r] = txn
            for w in self._dirty_by_reader.pop(txn, ()):
                writers = self._dirty_by_writer.get(w)
                if writers is not None:
                    writers.discard(txn)
        self._a1_ready.pop(txn, None)
        self._fuzzy_marks.pop(txn, None)
        self._phantom_marks.pop(txn, None)
        self._a5a_marks.pop(txn, None)
        self._a2_armed.pop(txn, None)
        self._a3_armed.pop(txn, None)
        self._p4_pending.pop(txn, None)
        self._p4c_pending.pop(txn, None)
        for p in list(self._rw_partners.get(txn, ())):
            self._drop_rw_pair(txn, p)
        if self.evict and self._ops % self.evict_interval == 0:
            self._evict_pass()

    def _drop_rw_pair(self, a: int, b: int) -> None:
        self._rw_items.pop((a, b), None)
        self._rw_items.pop((b, a), None)
        partners = self._rw_partners.get(a)
        if partners is not None:
            partners.discard(b)
            if not partners:
                del self._rw_partners[a]
        partners = self._rw_partners.get(b)
        if partners is not None:
            partners.discard(a)
            if not partners:
                del self._rw_partners[b]

    def _find_cycle(self, source: int) -> Optional[Tuple[int, ...]]:
        """A committed cycle through ``source``, if one exists.

        A cycle becomes fully committed exactly when its last member commits,
        and that member is on the cycle — so checking only the committing
        transaction is complete.
        """
        adj = self._adj
        if source not in adj:
            return None
        stack: List[Tuple[int, List[int]]] = [(source, list(adj[source]))]
        on_path = [source]
        seen = {source}
        while stack:
            node, pending = stack[-1]
            if not pending:
                stack.pop()
                on_path.pop()
                continue
            nxt = pending.pop()
            if nxt == source:
                return tuple(on_path)
            if nxt in seen:
                continue
            seen.add(nxt)
            neighbours = adj.get(nxt)
            if neighbours:
                stack.append((nxt, list(neighbours)))
                on_path.append(nxt)
        return None

    # -- eviction --------------------------------------------------------------

    def _evict_pass(self) -> None:
        bound = min(self._active.values()) if self._active else self._ops
        if self._serializable:
            # Component rule: a conflict component may go only when every
            # member terminated before every active transaction started —
            # then no future edge can reach into it (position ordering).
            for root in list(self._agg):
                active_count, max_terminal = self._agg[root]
                if active_count == 0 and max_terminal < bound:
                    for member in self._members[root]:
                        self._purge_txn(member)
                    del self._agg[root]
                    del self._members[root]
        else:
            # Watermark rule: with the graph gone, every remaining detector
            # pattern requires transaction overlap, so any transaction that
            # terminated before every active one started is inert.
            for txn, state in list(self._txns.items()):
                if state.terminal is not None and state.terminal < bound:
                    self._purge_txn(txn)
        for item in list(self._last_write):
            if self._last_write[item][0] < bound:
                del self._last_write[item]
                self._last_write_other.pop(item, None)
            else:
                other = self._last_write_other.get(item)
                if other is not None and other[0] < bound:
                    del self._last_write_other[item]

    def _purge_txn(self, txn: int) -> None:
        state = self._txns.pop(txn, None)
        if state is None:
            return
        for item in state.first_reads:
            group = self._readers.get(item)
            if group is not None:
                group.pop(txn, None)
                if not group:
                    del self._readers[item]
        for item in state.last_writes:
            group = self._writers.get(item)
            if group is not None:
                group.pop(txn, None)
                if not group:
                    del self._writers[item]
        for pred in state.first_pred_reads:
            group = self._pred_readers.get(pred)
            if group is not None:
                group.pop(txn, None)
                if not group:
                    del self._pred_readers[pred]
        for pred in state.last_pred_writes:
            group = self._pred_writers.get(pred)
            if group is not None:
                group.pop(txn, None)
                if not group:
                    del self._pred_writers[pred]
        self._pairs_out.pop(txn, None)
        self._pairs_in.pop(txn, None)
        self._adj.pop(txn, None)
        self._parent.pop(txn, None)
        for p in list(self._rw_partners.get(txn, ())):
            self._drop_rw_pair(txn, p)
        for r in self._dirty_by_writer.pop(txn, ()):
            readers = self._dirty_by_reader.get(r)
            if readers is not None:
                readers.discard(txn)
        for w in self._dirty_by_reader.pop(txn, ()):
            writers = self._dirty_by_writer.get(w)
            if writers is not None:
                writers.discard(txn)
        self._a1_ready.pop(txn, None)
        self._fuzzy_marks.pop(txn, None)
        self._phantom_marks.pop(txn, None)
        self._a5a_marks.pop(txn, None)
        self._a2_armed.pop(txn, None)
        self._a3_armed.pop(txn, None)
        self._p4_pending.pop(txn, None)
        self._p4c_pending.pop(txn, None)

    # -- multiversion buffered path --------------------------------------------

    def _mv_classify(self) -> Tuple[bool, Dict[str, bool]]:
        from ..explorer.memo import _mv_classify_core
        history = History(tuple(self._mv_ops), name=self.stream,
                          validate=False)
        if not history.is_multiversion():
            # A prefix with no versioned op yet still classifies fine on the
            # MV core's degenerate path; keep the offline dispatch faithful.
            from ..core.phenomena import HistoryIndex
            from ..explorer.memo import _sv_is_serializable
            index = HistoryIndex(history)
            return (_sv_is_serializable(history, index),
                    detect_flags(history, index=index))
        serializable, mapped = _mv_classify_core(
            history, None if self._initial_items is None
            else frozenset(self._initial_items))
        return serializable, detect_flags(mapped)

    def _feed_mv(self, op: Operation, pos: int) -> None:
        self._mv_ops.append(op)
        if op.kind is OperationKind.COMMIT:
            self._committed.add(op.txn)
        elif op.kind is OperationKind.ABORT:
            self._aborted.add(op.txn)
        else:
            return
        # Re-classify at terminal boundaries only; emit first-seen certificates.
        serializable, flags = self._mv_classify()
        if not serializable and self._serializable:
            self._serializable = False
            self._certificates.append(CertificateRecord(
                stream=self.stream, seq=len(self._certificates),
                code="CYCLE", txns=(op.txn,), items=(), op_index=pos,
                witness=self._witness_for((op.txn,))))
        history = History(tuple(self._mv_ops), name=self.stream, validate=False)
        fresh = [code for code, found in flags.items()
                 if found and not self._fired[code]]
        if fresh:
            from ..explorer.memo import _mv_classify_core
            if history.is_multiversion():
                _, target = _mv_classify_core(
                    history, None if self._initial_items is None
                    else frozenset(self._initial_items))
            else:
                target = history
            found = detect_all(target, codes=fresh)
            for code in sorted(fresh):
                occurrences = found.get(code) or []
                first = occurrences[0] if occurrences else None
                self._fired[code] = True
                self._certificates.append(CertificateRecord(
                    stream=self.stream, seq=len(self._certificates),
                    code=code,
                    txns=first.transactions if first else (op.txn,),
                    items=first.items if first else (),
                    op_index=pos,
                    witness=self._witness_for(
                        first.transactions if first else (op.txn,))))
