"""The asyncio online-certifier server.

One TCP endpoint, many concurrent client sessions, newline-delimited JSON
both ways.  Each named stream gets its own
:class:`~repro.service.online.OnlineClassifier`; operations are fed as
shorthand fragments and anomaly certificates come back in the acknowledgement
of the batch that fired them.

Protocol (one JSON object per line)::

    -> {"type": "open",  "stream": "s1", "mv": false, "evict_interval": 256}
    <- {"type": "opened", "stream": "s1"}

    -> {"type": "ops", "stream": "s1", "ops": "r1[x] w2[x] c1 c2"}
    <- {"type": "ack", "stream": "s1", "ops": 4, "classify_us": 12.3,
        "certificates": [{"code": "P4", ...}, ...]}

    -> {"type": "verdict", "stream": "s1"}
    <- {"type": "verdict", "stream": "s1", "serializable": false, ...}

    -> {"type": "close", "stream": "s1"}
    <- {"type": "closed", "stream": "s1", "certificates": 3, "persisted": 3}

    -> {"type": "stats"}
    <- {"type": "stats", "streams": 12, "ops": 48000, "certificates": 117,
        "p50_classify_us": 9.1, "p99_classify_us": 44.0}

Malformed input answers ``{"type": "error", "error": ...}`` and keeps the
connection alive; stream errors (operations after a terminal) poison only the
offending stream.  With a :class:`repro.persist.CampaignStore` attached,
certificates are committed on ``close`` under the configured campaign.
"""

from __future__ import annotations

import asyncio
import json
import time
from collections import deque
from typing import Any, Dict, Optional

from .online import OnlineClassifier, StreamError

__all__ = ["CertifierServer"]

#: Classify-latency samples retained for the stats percentiles.
_LATENCY_WINDOW = 4096


def _certificate_payload(certificate) -> Dict[str, Any]:
    return {
        "stream": certificate.stream,
        "seq": certificate.seq,
        "code": certificate.code,
        "txns": list(certificate.txns),
        "items": list(certificate.items),
        "op_index": certificate.op_index,
        "witness": certificate.witness,
    }


class CertifierServer:
    """Serve the online classifier over TCP to many concurrent clients."""

    def __init__(self, host: str = "127.0.0.1", port: int = 0, *,
                 store=None, campaign_id: Optional[str] = None,
                 evict_interval: int = 256,
                 witness_window: int = 32):
        if store is None and campaign_id is not None:
            raise ValueError("campaign_id requires a store")
        self.host = host
        self.port = port
        self.store = store
        self.campaign_id = campaign_id or "service"
        self.evict_interval = evict_interval
        self.witness_window = witness_window
        self._streams: Dict[str, OnlineClassifier] = {}
        self._poisoned: Dict[str, str] = {}
        self._latencies: deque = deque(maxlen=_LATENCY_WINDOW)
        self._total_ops = 0
        self._total_certificates = 0
        self._closed_streams = 0
        self._persisted = 0
        self._server: Optional[asyncio.AbstractServer] = None

    # -- lifecycle ------------------------------------------------------------

    async def start(self) -> None:
        """Bind and start accepting connections (resolves ``port=0``)."""
        self._server = await asyncio.start_server(
            self._handle_connection, self.host, self.port)
        sockets = self._server.sockets or ()
        if sockets:
            self.port = sockets[0].getsockname()[1]

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None

    async def serve_forever(self) -> None:
        if self._server is None:
            await self.start()
        assert self._server is not None
        async with self._server:
            await self._server.serve_forever()

    # -- per-connection loop --------------------------------------------------

    async def _handle_connection(self, reader: asyncio.StreamReader,
                                 writer: asyncio.StreamWriter) -> None:
        try:
            while True:
                line = await reader.readline()
                if not line:
                    break
                line = line.strip()
                if not line:
                    continue
                try:
                    request = json.loads(line.decode("utf-8"))
                    if not isinstance(request, dict):
                        raise ValueError("request must be a JSON object")
                    reply = self._dispatch(request)
                except StreamError as exc:
                    reply = {"type": "error", "error": str(exc),
                             "kind": "stream"}
                except (ValueError, KeyError, TypeError) as exc:
                    reply = {"type": "error", "error": str(exc),
                             "kind": "request"}
                writer.write((json.dumps(reply) + "\n").encode("utf-8"))
                await writer.drain()
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        finally:
            # close() is fire-and-forget here on purpose: awaiting
            # wait_closed() would leave the handler task alive (and noisily
            # cancelled) when the loop shuts down mid-handshake.
            writer.close()

    # -- request dispatch ------------------------------------------------------

    def _dispatch(self, request: Dict[str, Any]) -> Dict[str, Any]:
        rtype = request.get("type")
        if rtype == "open":
            return self._do_open(request)
        if rtype == "ops":
            return self._do_ops(request)
        if rtype == "verdict":
            return self._do_verdict(request)
        if rtype == "close":
            return self._do_close(request)
        if rtype == "stats":
            return self._do_stats()
        raise ValueError(f"unknown request type {rtype!r}")

    def _stream_name(self, request: Dict[str, Any]) -> str:
        name = request.get("stream")
        if not isinstance(name, str) or not name:
            raise ValueError("request needs a non-empty 'stream' name")
        return name

    def _classifier(self, name: str) -> OnlineClassifier:
        poisoned = self._poisoned.get(name)
        if poisoned is not None:
            raise StreamError(f"stream {name!r} is poisoned: {poisoned}")
        classifier = self._streams.get(name)
        if classifier is None:
            raise ValueError(f"unknown stream {name!r}; send an 'open' first")
        return classifier

    def _do_open(self, request: Dict[str, Any]) -> Dict[str, Any]:
        name = self._stream_name(request)
        if name in self._streams or name in self._poisoned:
            raise ValueError(f"stream {name!r} already open")
        multiversion = bool(request.get("mv", False))
        self._streams[name] = OnlineClassifier(
            name,
            multiversion=multiversion,
            evict_interval=int(request.get("evict_interval",
                                           self.evict_interval)),
            witness_window=int(request.get("witness_window",
                                           self.witness_window)),
            initial_items=request.get("initial_items"),
        )
        return {"type": "opened", "stream": name, "mv": multiversion}

    def _do_ops(self, request: Dict[str, Any]) -> Dict[str, Any]:
        name = self._stream_name(request)
        classifier = self._classifier(name)
        fragment = request.get("ops")
        if not isinstance(fragment, str):
            raise ValueError("'ops' must be a shorthand string")
        before = classifier.ops
        started = time.perf_counter()
        try:
            fresh = classifier.feed_shorthand(fragment)
        except StreamError as exc:
            self._poisoned[name] = str(exc)
            del self._streams[name]
            raise
        elapsed_us = (time.perf_counter() - started) * 1e6
        fed = classifier.ops - before
        self._latencies.append(elapsed_us / fed if fed else elapsed_us)
        self._total_ops += fed
        self._total_certificates += len(fresh)
        return {
            "type": "ack",
            "stream": name,
            "ops": fed,
            "classify_us": round(elapsed_us, 3),
            "certificates": [_certificate_payload(c) for c in fresh],
        }

    def _do_verdict(self, request: Dict[str, Any]) -> Dict[str, Any]:
        name = self._stream_name(request)
        verdict = self._classifier(name).verdict()
        return {
            "type": "verdict",
            "stream": name,
            "serializable": verdict.serializable,
            "phenomena": list(verdict.phenomena),
            "committed": list(verdict.committed),
            "aborted": list(verdict.aborted),
            "ops": verdict.ops,
        }

    def _do_close(self, request: Dict[str, Any]) -> Dict[str, Any]:
        name = self._stream_name(request)
        if name in self._poisoned:
            del self._poisoned[name]
            return {"type": "closed", "stream": name, "certificates": 0,
                    "persisted": 0, "poisoned": True}
        classifier = self._classifier(name)
        certificates = classifier.certificates
        persisted = 0
        if self.store is not None and certificates:
            if self.store.get_campaign(self.campaign_id) is None:
                self.store.open_campaign(self.campaign_id, {"kind": "service"})
            self.store.save_certificates(self.campaign_id, certificates)
            persisted = len(certificates)
            self._persisted += persisted
        del self._streams[name]
        self._closed_streams += 1
        return {"type": "closed", "stream": name,
                "certificates": len(certificates), "persisted": persisted}

    def _do_stats(self) -> Dict[str, Any]:
        samples = sorted(self._latencies)

        def pct(q: float) -> float:
            if not samples:
                return 0.0
            pos = min(len(samples) - 1, int(q * (len(samples) - 1) + 0.5))
            return round(samples[pos], 3)

        return {
            "type": "stats",
            "streams": len(self._streams),
            "closed_streams": self._closed_streams,
            "ops": self._total_ops,
            "certificates": self._total_certificates,
            "persisted": self._persisted,
            "p50_classify_us": pct(0.50),
            "p99_classify_us": pct(0.99),
        }
