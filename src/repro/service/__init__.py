"""The online isolation certifier service.

Turns the offline history classifier into an **online certifier**: live
transaction streams are fed operation by operation through an incremental
classifier whose verdicts are byte-equal to draining the same realized
history through :class:`repro.explorer.memo.BatchClassifier`, with anomaly
certificates (witness fragments included) emitted the moment each phenomenon
first fires.

* :mod:`repro.service.online` — the incremental classifier
  (:class:`OnlineClassifier`): per-stream index maintenance, incremental
  conflict/MVSG edge updates, windowed eviction of committed prefixes.
* :mod:`repro.service.server` — the asyncio TCP server
  (:class:`CertifierServer`): JSON-lines protocol, many concurrent client
  sessions, optional certificate persistence into a
  :class:`repro.persist.CampaignStore`.
* :mod:`repro.service.loadgen` — the seeded load generator: zipfian
  hotspots, bursty arrival, configurable client counts, and the
  ``anomalies/sec`` / p99-classify-latency report the ``service`` bench
  section publishes.
"""

from .online import (
    AnomalyCertificate,
    OnlineClassifier,
    StreamError,
    StreamVerdict,
)
from .server import CertifierServer
from .loadgen import LoadConfig, LoadReport, generate_stream, run_load

__all__ = [
    "AnomalyCertificate",
    "OnlineClassifier",
    "StreamError",
    "StreamVerdict",
    "CertifierServer",
    "LoadConfig",
    "LoadReport",
    "generate_stream",
    "run_load",
]
