"""The concurrency-control engine interface shared by locking and MVCC engines.

Every isolation level in the paper is realized as an *engine*: an object that
accepts the actions of concurrently executing transactions (reads, writes,
predicate selects, cursor fetches, commits, aborts) against a shared
:class:`~repro.storage.database.Database` and decides, action by action,
whether the action proceeds, blocks, or forces the transaction to abort.

The interface is deliberately non-blocking in the threading sense: an action
that cannot proceed returns :attr:`OpStatus.BLOCKED` together with the set of
transactions it is waiting on, and the
:class:`~repro.engine.scheduler.ScheduleRunner` decides when to retry it.
That keeps the whole system deterministic (anomalies are properties of logical
interleavings, not of wall-clock races) while still exercising the same
decision logic a real scheduler would.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Any, Dict, FrozenSet, Iterable, List, Optional

from ..core.isolation import IsolationLevelName
from ..storage.database import Database
from ..storage.predicates import Predicate
from ..storage.rows import Row

__all__ = [
    "OP_READ",
    "OP_WRITE",
    "OP_COMMIT",
    "OP_ABORT",
    "OP_GENERIC",
    "OpStatus",
    "OpResult",
    "TransactionState",
    "Engine",
    "EngineError",
    "CheckpointError",
]

#: Op codes of the compiled slot-program step kernel (see
#: :func:`repro.engine.programs.compile_step`).  Kept here, next to
#: :meth:`Engine.apply_step`, so engines and the compiler share one vocabulary
#: without a circular import.  ``OP_GENERIC`` marks steps the kernel does not
#: specialize; the runner falls back to ``Step.perform`` for those.
OP_READ = 0
OP_WRITE = 1
OP_COMMIT = 2
OP_ABORT = 3
OP_GENERIC = 4


class EngineError(RuntimeError):
    """Raised for protocol violations (acting on an unknown or finished txn, ...)."""


class CheckpointError(EngineError):
    """Raised when an engine cannot checkpoint or restore its state."""


class OpStatus(enum.Enum):
    """The outcome of submitting one action to an engine."""

    OK = "ok"
    BLOCKED = "blocked"
    ABORTED = "aborted"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True)
class OpResult:
    """Result of one action.

    ``value`` carries the value read (for reads / selects / fetches).
    ``blockers`` names the transactions a BLOCKED action waits on.
    ``version`` optionally records which version a multiversion read saw,
    so that realized histories can be rendered as MV histories.
    """

    status: OpStatus
    value: Any = None
    blockers: FrozenSet[int] = frozenset()
    reason: str = ""
    version: Optional[int] = None
    #: For cursor operations: the item the cursor is currently positioned on,
    #: so the schedule runner can record ``rc``/``wc`` history operations.
    item: Optional[str] = None

    @classmethod
    def ok(cls, value: Any = None, version: Optional[int] = None,
           item: Optional[str] = None) -> "OpResult":
        # OK results are immutable values; replaying thousands of schedules
        # realizes the same (value, version, item) payloads over and over, so
        # intern the hashable ones.  Value-only results (the single-version
        # engines' read/write payloads) take a tuple-free fast path.
        if version is None and item is None:
            if value is None:
                return _OK_RESULT
            try:
                cached = _OK_VALUE_CACHE.get(value)
            except TypeError:  # unhashable payload (e.g. a list of rows)
                return cls(OpStatus.OK, value=value)
            if cached is None:
                cached = cls(OpStatus.OK, value=value)
                if len(_OK_VALUE_CACHE) < 100_000:
                    _OK_VALUE_CACHE[value] = cached
            return cached
        key = (value, version, item)
        try:
            cached = _OK_CACHE.get(key)
        except TypeError:  # unhashable payload
            return cls(OpStatus.OK, value=value, version=version, item=item)
        if cached is None:
            cached = cls(OpStatus.OK, value=value, version=version, item=item)
            if len(_OK_CACHE) < 100_000:
                _OK_CACHE[key] = cached
        return cached

    @classmethod
    def blocked(cls, blockers: Iterable[int], reason: str = "") -> "OpResult":
        return cls(OpStatus.BLOCKED, blockers=frozenset(blockers), reason=reason)

    @classmethod
    def aborted(cls, reason: str) -> "OpResult":
        return cls(OpStatus.ABORTED, reason=reason)

    @property
    def is_ok(self) -> bool:
        return self.status is OpStatus.OK

    @property
    def is_blocked(self) -> bool:
        return self.status is OpStatus.BLOCKED

    @property
    def is_aborted(self) -> bool:
        return self.status is OpStatus.ABORTED


#: The shared no-payload OK result (immutable, so one instance serves all).
_OK_RESULT = OpResult(OpStatus.OK)

#: Interned OK results keyed by (value, version, item).
_OK_CACHE: Dict[Any, OpResult] = {}

#: Interned value-only OK results (version=None, item=None), keyed by value.
_OK_VALUE_CACHE: Dict[Any, OpResult] = {}


class TransactionState(enum.Enum):
    """Lifecycle of a transaction inside an engine."""

    ACTIVE = "active"
    COMMITTED = "committed"
    ABORTED = "aborted"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


class Engine:
    """Base class for concurrency-control engines.

    Subclasses implement one isolation level (or a family selected by a
    policy).  All mutating entry points must be tolerant of being called with
    an already-aborted transaction: they return an ABORTED result rather than
    raising, because the schedule runner may race a program step against an
    engine-initiated abort (deadlock victim, first-committer-wins failure).
    """

    #: A short display name, e.g. "Locking READ COMMITTED" or "Snapshot Isolation".
    name: str = "engine"
    #: The isolation level this engine implements.
    level: IsolationLevelName = IsolationLevelName.SERIALIZABLE

    def __init__(self, database: Database):
        self.database = database
        self._states: Dict[int, TransactionState] = {}
        self._abort_reasons: Dict[int, str] = {}

    # -- lifecycle -----------------------------------------------------------------

    def begin(self, txn: int) -> None:
        """Register a new transaction."""
        if txn in self._states and self._states[txn] is TransactionState.ACTIVE:
            raise EngineError(f"transaction T{txn} already active")
        self._states[txn] = TransactionState.ACTIVE

    def commit(self, txn: int) -> OpResult:
        """Attempt to commit; may return BLOCKED or ABORTED."""
        raise NotImplementedError

    def abort(self, txn: int, reason: str = "voluntary abort") -> OpResult:
        """Abort a transaction, rolling back its effects."""
        raise NotImplementedError

    # -- data actions -----------------------------------------------------------------

    def read(self, txn: int, item: str) -> OpResult:
        """Read a named data item."""
        raise NotImplementedError

    def write(self, txn: int, item: str, value: Any) -> OpResult:
        """Write a named data item."""
        raise NotImplementedError

    def select(self, txn: int, predicate: Predicate) -> OpResult:
        """Read the set of rows satisfying a predicate (value = list of Rows)."""
        raise NotImplementedError

    def insert(self, txn: int, table: str, row: Row) -> OpResult:
        """Insert a row into a table."""
        raise NotImplementedError

    def update_row(self, txn: int, table: str, key: str, changes: Dict[str, Any]) -> OpResult:
        """Update attributes of an existing row."""
        raise NotImplementedError

    def delete_row(self, txn: int, table: str, key: str) -> OpResult:
        """Delete a row."""
        raise NotImplementedError

    # -- cursor actions (Section 4.1) ----------------------------------------------------

    def open_cursor(self, txn: int, cursor: str, items: List[str]) -> OpResult:
        """Open a cursor ranging over a list of named items."""
        raise NotImplementedError

    def fetch(self, txn: int, cursor: str) -> OpResult:
        """Advance the cursor to its next item and read it (the paper's ``rc``)."""
        raise NotImplementedError

    def cursor_update(self, txn: int, cursor: str, value: Any) -> OpResult:
        """Write the current item of the cursor (the paper's ``wc``)."""
        raise NotImplementedError

    def close_cursor(self, txn: int, cursor: str) -> OpResult:
        """Close a cursor, releasing any cursor-held locks."""
        raise NotImplementedError

    # -- compiled-kernel entry point ---------------------------------------------------------

    def apply_step(self, opcode: int, txn: int, item: Optional[str] = None,
                   value: Any = None) -> OpResult:
        """Narrow monomorphic entry point of the compiled step kernel.

        Dispatches one compiled op code to the engine.  The base
        implementation routes to the polymorphic methods, so every engine
        supports compiled execution out of the box; the built-in engines
        override it with fused fast paths.  Whatever the implementation, the
        returned :class:`OpResult` (and every engine side effect) must be
        identical to the corresponding stepwise call — the kernel's
        byte-equality contract.
        """
        if opcode == OP_READ:
            return self.read(txn, item)
        if opcode == OP_WRITE:
            return self.write(txn, item, value)
        if opcode == OP_COMMIT:
            return self.commit(txn)
        if opcode == OP_ABORT:
            # Matches Abort.perform: a scripted abort, not an engine-initiated one.
            return self.abort(txn, reason="program abort")
        raise EngineError(f"apply_step cannot dispatch opcode {opcode!r}")

    # -- blocking fingerprint ----------------------------------------------------------------

    def blocking_version(self) -> Optional[int]:
        """A version stamp of the state a BLOCKED result depends on, or None.

        Engines whose blocked outcomes are a pure function of some versioned
        internal state (the locking engines' granted-lock table) return its
        monotonic version; the schedule runner then skips re-submitting a
        blocked step whose version has not changed, reusing the previous
        result.  ``None`` (the default, and for engines that never block)
        disables the fast path.
        """
        return None

    def blocking_version_for(self, item: Optional[str]) -> Optional[int]:
        """The :meth:`blocking_version` stamp restricted to one item, or None.

        A blocked *item* operation can only depend on state attached to that
        item (for the locking engines, the item's own locks) — engines with
        per-item version counters return the item's counter so a parked
        blocked attempt survives lock traffic on unrelated items.  ``None``
        as the item (a non-item step) and the default implementation both
        fall back to the whole-state :meth:`blocking_version`.
        """
        return self.blocking_version()

    # -- checkpoint / restore (the prefix-sharing executor contract) ------------------------

    #: Whether this engine implements :meth:`checkpoint` / :meth:`restore`.
    supports_checkpoints: bool = False

    def checkpoint(self) -> Any:
        """Capture the engine's full state (database included) as an opaque token.

        The token is a *value*: it must stay valid however the live state is
        mutated afterwards, and restoring it twice must be possible.  Tokens
        are cheap — engines copy only the small mutable structures and record
        truncation lengths for append-only ones (version chains), which is
        what makes the schedule explorer's prefix-sharing trie executor
        profitable.

        Restore discipline: a token may only be restored on the engine that
        produced it, and only to roll the engine *backwards* to a state on the
        current execution path (the trie executor's DFS discipline).  Engines
        whose stores are restored by truncation rely on this.
        """
        raise CheckpointError(f"{type(self).__name__} does not support checkpoints")

    def restore(self, token: Any) -> None:
        """Reset the engine (database included) to a previously captured token."""
        raise CheckpointError(f"{type(self).__name__} does not support checkpoints")

    def _base_checkpoint(self) -> Any:
        """Checkpoint of the lifecycle bookkeeping shared by all engines."""
        return dict(self._states), dict(self._abort_reasons)

    def _base_restore(self, token: Any) -> None:
        states, abort_reasons = token
        self._states = dict(states)
        self._abort_reasons = dict(abort_reasons)

    # -- bookkeeping shared by subclasses ---------------------------------------------------

    def state_of(self, txn: int) -> TransactionState:
        """The lifecycle state of a transaction."""
        try:
            return self._states[txn]
        except KeyError:
            raise EngineError(f"unknown transaction T{txn}") from None

    def abort_reason(self, txn: int) -> Optional[str]:
        """Why a transaction was aborted, when it was."""
        return self._abort_reasons.get(txn)

    def active_transactions(self) -> List[int]:
        """Transactions currently active."""
        return [
            txn for txn, state in self._states.items()
            if state is TransactionState.ACTIVE
        ]

    def is_active(self, txn: int) -> bool:
        """True when the transaction has begun and not yet terminated."""
        return self._states.get(txn) is TransactionState.ACTIVE

    def _require_active(self, txn: int) -> Optional[OpResult]:
        """Shared guard: a non-active transaction gets an ABORTED/errored result."""
        state = self._states.get(txn)
        if state is TransactionState.ACTIVE:
            return None
        if state is TransactionState.ABORTED:
            return OpResult.aborted(self._abort_reasons.get(txn, "transaction aborted"))
        if state is TransactionState.COMMITTED:
            raise EngineError(f"transaction T{txn} already committed")
        raise EngineError(f"transaction T{txn} never began")

    def _mark_committed(self, txn: int) -> None:
        self._states[txn] = TransactionState.COMMITTED

    def _mark_aborted(self, txn: int, reason: str) -> None:
        self._states[txn] = TransactionState.ABORTED
        self._abort_reasons[txn] = reason
