"""The concurrency-control engine interface shared by locking and MVCC engines.

Every isolation level in the paper is realized as an *engine*: an object that
accepts the actions of concurrently executing transactions (reads, writes,
predicate selects, cursor fetches, commits, aborts) against a shared
:class:`~repro.storage.database.Database` and decides, action by action,
whether the action proceeds, blocks, or forces the transaction to abort.

The interface is deliberately non-blocking in the threading sense: an action
that cannot proceed returns :attr:`OpStatus.BLOCKED` together with the set of
transactions it is waiting on, and the
:class:`~repro.engine.scheduler.ScheduleRunner` decides when to retry it.
That keeps the whole system deterministic (anomalies are properties of logical
interleavings, not of wall-clock races) while still exercising the same
decision logic a real scheduler would.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Dict, FrozenSet, Iterable, List, Optional

from ..core.isolation import IsolationLevelName
from ..storage.database import Database
from ..storage.predicates import Predicate
from ..storage.rows import Row

__all__ = ["OpStatus", "OpResult", "TransactionState", "Engine", "EngineError"]


class EngineError(RuntimeError):
    """Raised for protocol violations (acting on an unknown or finished txn, ...)."""


class OpStatus(enum.Enum):
    """The outcome of submitting one action to an engine."""

    OK = "ok"
    BLOCKED = "blocked"
    ABORTED = "aborted"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True)
class OpResult:
    """Result of one action.

    ``value`` carries the value read (for reads / selects / fetches).
    ``blockers`` names the transactions a BLOCKED action waits on.
    ``version`` optionally records which version a multiversion read saw,
    so that realized histories can be rendered as MV histories.
    """

    status: OpStatus
    value: Any = None
    blockers: FrozenSet[int] = frozenset()
    reason: str = ""
    version: Optional[int] = None
    #: For cursor operations: the item the cursor is currently positioned on,
    #: so the schedule runner can record ``rc``/``wc`` history operations.
    item: Optional[str] = None

    @classmethod
    def ok(cls, value: Any = None, version: Optional[int] = None,
           item: Optional[str] = None) -> "OpResult":
        return cls(OpStatus.OK, value=value, version=version, item=item)

    @classmethod
    def blocked(cls, blockers: Iterable[int], reason: str = "") -> "OpResult":
        return cls(OpStatus.BLOCKED, blockers=frozenset(blockers), reason=reason)

    @classmethod
    def aborted(cls, reason: str) -> "OpResult":
        return cls(OpStatus.ABORTED, reason=reason)

    @property
    def is_ok(self) -> bool:
        return self.status is OpStatus.OK

    @property
    def is_blocked(self) -> bool:
        return self.status is OpStatus.BLOCKED

    @property
    def is_aborted(self) -> bool:
        return self.status is OpStatus.ABORTED


class TransactionState(enum.Enum):
    """Lifecycle of a transaction inside an engine."""

    ACTIVE = "active"
    COMMITTED = "committed"
    ABORTED = "aborted"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


class Engine:
    """Base class for concurrency-control engines.

    Subclasses implement one isolation level (or a family selected by a
    policy).  All mutating entry points must be tolerant of being called with
    an already-aborted transaction: they return an ABORTED result rather than
    raising, because the schedule runner may race a program step against an
    engine-initiated abort (deadlock victim, first-committer-wins failure).
    """

    #: A short display name, e.g. "Locking READ COMMITTED" or "Snapshot Isolation".
    name: str = "engine"
    #: The isolation level this engine implements.
    level: IsolationLevelName = IsolationLevelName.SERIALIZABLE

    def __init__(self, database: Database):
        self.database = database
        self._states: Dict[int, TransactionState] = {}
        self._abort_reasons: Dict[int, str] = {}

    # -- lifecycle -----------------------------------------------------------------

    def begin(self, txn: int) -> None:
        """Register a new transaction."""
        if txn in self._states and self._states[txn] is TransactionState.ACTIVE:
            raise EngineError(f"transaction T{txn} already active")
        self._states[txn] = TransactionState.ACTIVE

    def commit(self, txn: int) -> OpResult:
        """Attempt to commit; may return BLOCKED or ABORTED."""
        raise NotImplementedError

    def abort(self, txn: int, reason: str = "voluntary abort") -> OpResult:
        """Abort a transaction, rolling back its effects."""
        raise NotImplementedError

    # -- data actions -----------------------------------------------------------------

    def read(self, txn: int, item: str) -> OpResult:
        """Read a named data item."""
        raise NotImplementedError

    def write(self, txn: int, item: str, value: Any) -> OpResult:
        """Write a named data item."""
        raise NotImplementedError

    def select(self, txn: int, predicate: Predicate) -> OpResult:
        """Read the set of rows satisfying a predicate (value = list of Rows)."""
        raise NotImplementedError

    def insert(self, txn: int, table: str, row: Row) -> OpResult:
        """Insert a row into a table."""
        raise NotImplementedError

    def update_row(self, txn: int, table: str, key: str, changes: Dict[str, Any]) -> OpResult:
        """Update attributes of an existing row."""
        raise NotImplementedError

    def delete_row(self, txn: int, table: str, key: str) -> OpResult:
        """Delete a row."""
        raise NotImplementedError

    # -- cursor actions (Section 4.1) ----------------------------------------------------

    def open_cursor(self, txn: int, cursor: str, items: List[str]) -> OpResult:
        """Open a cursor ranging over a list of named items."""
        raise NotImplementedError

    def fetch(self, txn: int, cursor: str) -> OpResult:
        """Advance the cursor to its next item and read it (the paper's ``rc``)."""
        raise NotImplementedError

    def cursor_update(self, txn: int, cursor: str, value: Any) -> OpResult:
        """Write the current item of the cursor (the paper's ``wc``)."""
        raise NotImplementedError

    def close_cursor(self, txn: int, cursor: str) -> OpResult:
        """Close a cursor, releasing any cursor-held locks."""
        raise NotImplementedError

    # -- bookkeeping shared by subclasses ---------------------------------------------------

    def state_of(self, txn: int) -> TransactionState:
        """The lifecycle state of a transaction."""
        try:
            return self._states[txn]
        except KeyError:
            raise EngineError(f"unknown transaction T{txn}") from None

    def abort_reason(self, txn: int) -> Optional[str]:
        """Why a transaction was aborted, when it was."""
        return self._abort_reasons.get(txn)

    def active_transactions(self) -> List[int]:
        """Transactions currently active."""
        return [
            txn for txn, state in self._states.items()
            if state is TransactionState.ACTIVE
        ]

    def is_active(self, txn: int) -> bool:
        """True when the transaction has begun and not yet terminated."""
        return self._states.get(txn) is TransactionState.ACTIVE

    def _require_active(self, txn: int) -> Optional[OpResult]:
        """Shared guard: a non-active transaction gets an ABORTED/errored result."""
        state = self._states.get(txn)
        if state is TransactionState.ACTIVE:
            return None
        if state is TransactionState.ABORTED:
            return OpResult.aborted(self._abort_reasons.get(txn, "transaction aborted"))
        if state is TransactionState.COMMITTED:
            raise EngineError(f"transaction T{txn} already committed")
        raise EngineError(f"transaction T{txn} never began")

    def _mark_committed(self, txn: int) -> None:
        self._states[txn] = TransactionState.COMMITTED

    def _mark_aborted(self, txn: int, reason: str) -> None:
        self._states[txn] = TransactionState.ABORTED
        self._abort_reasons[txn] = reason
