"""Transaction programs: scripted sequences of steps the schedule runner drives.

The paper's scenarios are small application programs — "transfer 40 from x to
y", "insert an employee and bump the count", "add a task if the total is under
8 hours" — executed under a particular interleaving.  A
:class:`TransactionProgram` captures one such program as a list of
:class:`Step` objects.  Steps can reference values read earlier in the same
transaction through the per-transaction *context* (a plain dict), so programs
can express read-modify-write logic ("write x := x + 30") exactly the way the
anomalies require.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, FrozenSet, List, Optional, Sequence, Tuple, Union

from ..storage.predicates import Predicate
from ..storage.rows import Row
from .interface import Engine, OpResult

__all__ = [
    "StepFootprint",
    "Step",
    "ReadItem",
    "WriteItem",
    "SelectPredicate",
    "InsertRow",
    "UpdateRow",
    "DeleteRow",
    "OpenCursor",
    "Fetch",
    "CursorUpdate",
    "CloseCursor",
    "Commit",
    "Abort",
    "TransactionProgram",
]

#: A value in a step may be a literal or a callable computing it from the
#: transaction's context (the dict of values read so far).
ValueSpec = Union[Any, Callable[[Dict[str, Any]], Any]]


def _resolve(value: ValueSpec, context: Dict[str, Any]) -> Any:
    """Evaluate a ValueSpec against the transaction's context."""
    return value(context) if callable(value) else value


@dataclass(frozen=True)
class StepFootprint:
    """The statically-known data footprint of one program step.

    ``reads`` / ``writes`` name the items (or ``table/key`` rows) the step is
    guaranteed to touch.  ``opaque`` marks steps whose footprint cannot be
    determined without running them (predicate selects, cursor fetches,
    computed inserts); consumers such as the explorer's partial-order reducer
    must treat an opaque step as potentially touching everything.
    """

    reads: FrozenSet[str] = frozenset()
    writes: FrozenSet[str] = frozenset()
    opaque: bool = False

    def conflicts_with(self, other: "StepFootprint") -> bool:
        """Write-involved overlap — the commutation test of Section 2.1.

        Opaque footprints conflict with everything; otherwise two footprints
        conflict when one's writes intersect the other's reads or writes.
        Read/read overlap is *not* a conflict: shared locks are compatible and
        swapping two reads never changes either value read.
        """
        if self.opaque or other.opaque:
            return True
        return bool(self.writes & (other.reads | other.writes)) or bool(
            other.writes & self.reads
        )


class Step:
    """One action of a transaction program."""

    def perform(self, engine: Engine, txn: int, context: Dict[str, Any]) -> OpResult:
        """Submit the action to the engine; store results into the context."""
        raise NotImplementedError

    def describe(self) -> str:
        """Short rendering used in traces and failure messages."""
        return type(self).__name__

    def footprint(self) -> StepFootprint:
        """The step's static data footprint (opaque unless a subclass knows better)."""
        return StepFootprint(opaque=True)


@dataclass
class ReadItem(Step):
    """Read a named item, optionally binding the value to a context variable."""

    item: str
    into: Optional[str] = None

    def perform(self, engine: Engine, txn: int, context: Dict[str, Any]) -> OpResult:
        result = engine.read(txn, self.item)
        if result.is_ok:
            context[self.into or self.item] = result.value
        return result

    def describe(self) -> str:
        return f"read {self.item}"

    def footprint(self) -> StepFootprint:
        return StepFootprint(reads=frozenset((self.item,)))


@dataclass
class WriteItem(Step):
    """Write a named item; the value may be computed from the context."""

    item: str
    value: ValueSpec = None

    def perform(self, engine: Engine, txn: int, context: Dict[str, Any]) -> OpResult:
        return engine.write(txn, self.item, _resolve(self.value, context))

    def describe(self) -> str:
        return f"write {self.item}"

    def footprint(self) -> StepFootprint:
        return StepFootprint(writes=frozenset((self.item,)))


@dataclass
class SelectPredicate(Step):
    """Read the rows satisfying a predicate, binding the list to a variable."""

    predicate: Predicate
    into: Optional[str] = None

    def perform(self, engine: Engine, txn: int, context: Dict[str, Any]) -> OpResult:
        result = engine.select(txn, self.predicate)
        if result.is_ok:
            context[self.into or self.predicate.name] = result.value
        return result

    def describe(self) -> str:
        return f"select {self.predicate.name}"


@dataclass
class InsertRow(Step):
    """Insert a row; the row may be computed from the context."""

    table: str
    row: ValueSpec

    def perform(self, engine: Engine, txn: int, context: Dict[str, Any]) -> OpResult:
        row = _resolve(self.row, context)
        if not isinstance(row, Row):
            raise TypeError(f"InsertRow expects a Row, got {type(row).__name__}")
        return engine.insert(txn, self.table, row)

    def describe(self) -> str:
        return f"insert into {self.table}"


@dataclass
class UpdateRow(Step):
    """Update attributes of a row; changes may be computed from the context."""

    table: str
    key: str
    changes: ValueSpec

    def perform(self, engine: Engine, txn: int, context: Dict[str, Any]) -> OpResult:
        changes = _resolve(self.changes, context)
        return engine.update_row(txn, self.table, self.key, dict(changes))

    def describe(self) -> str:
        return f"update {self.table}/{self.key}"

    def footprint(self) -> StepFootprint:
        return StepFootprint(writes=frozenset((f"{self.table}/{self.key}",)))


@dataclass
class DeleteRow(Step):
    """Delete a row by key."""

    table: str
    key: str

    def perform(self, engine: Engine, txn: int, context: Dict[str, Any]) -> OpResult:
        return engine.delete_row(txn, self.table, self.key)

    def describe(self) -> str:
        return f"delete {self.table}/{self.key}"

    def footprint(self) -> StepFootprint:
        return StepFootprint(writes=frozenset((f"{self.table}/{self.key}",)))


@dataclass
class OpenCursor(Step):
    """Open a cursor over a list of named items."""

    cursor: str
    items: Sequence[str]

    def perform(self, engine: Engine, txn: int, context: Dict[str, Any]) -> OpResult:
        return engine.open_cursor(txn, self.cursor, list(self.items))

    def describe(self) -> str:
        return f"open cursor {self.cursor}"


@dataclass
class Fetch(Step):
    """Fetch the next item of a cursor (the paper's ``rc``)."""

    cursor: str
    into: Optional[str] = None

    def perform(self, engine: Engine, txn: int, context: Dict[str, Any]) -> OpResult:
        result = engine.fetch(txn, self.cursor)
        if result.is_ok and self.into:
            context[self.into] = result.value
        return result

    def describe(self) -> str:
        return f"fetch {self.cursor}"


@dataclass
class CursorUpdate(Step):
    """Write the current item of a cursor (the paper's ``wc``)."""

    cursor: str
    value: ValueSpec = None

    def perform(self, engine: Engine, txn: int, context: Dict[str, Any]) -> OpResult:
        return engine.cursor_update(txn, self.cursor, _resolve(self.value, context))

    def describe(self) -> str:
        return f"cursor-update {self.cursor}"


@dataclass
class CloseCursor(Step):
    """Close a cursor."""

    cursor: str

    def perform(self, engine: Engine, txn: int, context: Dict[str, Any]) -> OpResult:
        return engine.close_cursor(txn, self.cursor)

    def describe(self) -> str:
        return f"close cursor {self.cursor}"


@dataclass
class Commit(Step):
    """Commit the transaction."""

    def perform(self, engine: Engine, txn: int, context: Dict[str, Any]) -> OpResult:
        return engine.commit(txn)

    def describe(self) -> str:
        return "commit"

    def footprint(self) -> StepFootprint:
        # A terminal step touches no new data; the locks it releases cover
        # items earlier steps already claimed, which occurrence-level analyses
        # (see repro.explorer.reduction) account for by accumulation.
        return StepFootprint()


@dataclass
class Abort(Step):
    """Voluntarily abort the transaction (e.g. the A1 dirty-read scenario)."""

    def perform(self, engine: Engine, txn: int, context: Dict[str, Any]) -> OpResult:
        return engine.abort(txn, reason="program abort")

    def describe(self) -> str:
        return "abort"

    def footprint(self) -> StepFootprint:
        return StepFootprint()


@dataclass
class TransactionProgram:
    """A transaction: an identifier plus an ordered list of steps."""

    txn: int
    steps: List[Step]
    label: str = ""

    def __post_init__(self) -> None:
        if not self.steps:
            raise ValueError("a transaction program needs at least one step")

    @property
    def display_name(self) -> str:
        """``T<id>`` or the provided label."""
        return self.label or f"T{self.txn}"

    def __len__(self) -> int:
        return len(self.steps)

    def footprints(self) -> Tuple[StepFootprint, ...]:
        """The static footprint of every step, in program order."""
        return tuple(step.footprint() for step in self.steps)
