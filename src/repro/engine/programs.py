"""Transaction programs: scripted sequences of steps the schedule runner drives.

The paper's scenarios are small application programs — "transfer 40 from x to
y", "insert an employee and bump the count", "add a task if the total is under
8 hours" — executed under a particular interleaving.  A
:class:`TransactionProgram` captures one such program as a list of
:class:`Step` objects.  Steps can reference values read earlier in the same
transaction through the per-transaction *context* (a plain dict), so programs
can express read-modify-write logic ("write x := x + 30") exactly the way the
anomalies require.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Dict, FrozenSet, List, Optional, Sequence, Tuple, Union

from ..core.operations import OperationKind
from ..storage.predicates import Predicate
from ..storage.rows import Row
from .interface import (
    OP_ABORT,
    OP_COMMIT,
    OP_GENERIC,
    OP_READ,
    OP_WRITE,
    Engine,
    OpResult,
)

__all__ = [
    "StepFootprint",
    "Step",
    "ReadItem",
    "WriteItem",
    "SelectPredicate",
    "InsertRow",
    "UpdateRow",
    "DeleteRow",
    "OpenCursor",
    "Fetch",
    "CursorUpdate",
    "CloseCursor",
    "Commit",
    "Abort",
    "TransactionProgram",
    "CompiledStep",
    "CompiledProgram",
    "CompiledProgramSet",
    "compile_step",
    "compile_program",
    "compile_programs",
    "BatchProgram",
    "BatchTableSet",
    "emit_batch_tables",
]

#: A value in a step may be a literal or a callable computing it from the
#: transaction's context (the dict of values read so far).
ValueSpec = Union[Any, Callable[[Dict[str, Any]], Any]]


def _resolve(value: ValueSpec, context: Dict[str, Any]) -> Any:
    """Evaluate a ValueSpec against the transaction's context."""
    return value(context) if callable(value) else value


@dataclass(frozen=True)
class StepFootprint:
    """The statically-known data footprint of one program step.

    ``reads`` / ``writes`` name the items (or ``table/key`` rows) the step is
    guaranteed to touch.  ``opaque`` marks steps whose footprint cannot be
    determined without running them (predicate selects, cursor fetches,
    computed inserts); consumers such as the explorer's partial-order reducer
    must treat an opaque step as potentially touching everything.
    """

    reads: FrozenSet[str] = frozenset()
    writes: FrozenSet[str] = frozenset()
    opaque: bool = False

    def conflicts_with(self, other: "StepFootprint") -> bool:
        """Write-involved overlap — the commutation test of Section 2.1.

        Opaque footprints conflict with everything; otherwise two footprints
        conflict when one's writes intersect the other's reads or writes.
        Read/read overlap is *not* a conflict: shared locks are compatible and
        swapping two reads never changes either value read.
        """
        if self.opaque or other.opaque:
            return True
        return bool(self.writes & (other.reads | other.writes)) or bool(
            other.writes & self.reads
        )


class Step:
    """One action of a transaction program."""

    def perform(self, engine: Engine, txn: int, context: Dict[str, Any]) -> OpResult:
        """Submit the action to the engine; store results into the context."""
        raise NotImplementedError

    def describe(self) -> str:
        """Short rendering used in traces and failure messages."""
        return type(self).__name__

    def footprint(self) -> StepFootprint:
        """The step's static data footprint (opaque unless a subclass knows better)."""
        return StepFootprint(opaque=True)


@dataclass
class ReadItem(Step):
    """Read a named item, optionally binding the value to a context variable."""

    item: str
    into: Optional[str] = None

    def perform(self, engine: Engine, txn: int, context: Dict[str, Any]) -> OpResult:
        result = engine.read(txn, self.item)
        if result.is_ok:
            context[self.into or self.item] = result.value
        return result

    def describe(self) -> str:
        return f"read {self.item}"

    def footprint(self) -> StepFootprint:
        return StepFootprint(reads=frozenset((self.item,)))


@dataclass
class WriteItem(Step):
    """Write a named item; the value may be computed from the context."""

    item: str
    value: ValueSpec = None

    def perform(self, engine: Engine, txn: int, context: Dict[str, Any]) -> OpResult:
        return engine.write(txn, self.item, _resolve(self.value, context))

    def describe(self) -> str:
        return f"write {self.item}"

    def footprint(self) -> StepFootprint:
        return StepFootprint(writes=frozenset((self.item,)))


@dataclass
class SelectPredicate(Step):
    """Read the rows satisfying a predicate, binding the list to a variable."""

    #: The matched row set depends on runtime table contents, so the static
    #: analyzer must treat the footprint as opaque (explicit marker audited
    #: by repolint's footprint-coverage check).
    opaque_footprint = True

    predicate: Predicate
    into: Optional[str] = None

    def perform(self, engine: Engine, txn: int, context: Dict[str, Any]) -> OpResult:
        result = engine.select(txn, self.predicate)
        if result.is_ok:
            context[self.into or self.predicate.name] = result.value
        return result

    def describe(self) -> str:
        return f"select {self.predicate.name}"


@dataclass
class InsertRow(Step):
    """Insert a row; the row may be computed from the context."""

    #: The row (and hence its key) may be computed from the runtime context,
    #: so the written item is statically unknown: opaque by declaration.
    opaque_footprint = True

    table: str
    row: ValueSpec

    def perform(self, engine: Engine, txn: int, context: Dict[str, Any]) -> OpResult:
        row = _resolve(self.row, context)
        if not isinstance(row, Row):
            raise TypeError(f"InsertRow expects a Row, got {type(row).__name__}")
        return engine.insert(txn, self.table, row)

    def describe(self) -> str:
        return f"insert into {self.table}"


@dataclass
class UpdateRow(Step):
    """Update attributes of a row; changes may be computed from the context."""

    table: str
    key: str
    changes: ValueSpec

    def perform(self, engine: Engine, txn: int, context: Dict[str, Any]) -> OpResult:
        changes = _resolve(self.changes, context)
        return engine.update_row(txn, self.table, self.key, dict(changes))

    def describe(self) -> str:
        return f"update {self.table}/{self.key}"

    def footprint(self) -> StepFootprint:
        return StepFootprint(writes=frozenset((f"{self.table}/{self.key}",)))


@dataclass
class DeleteRow(Step):
    """Delete a row by key."""

    table: str
    key: str

    def perform(self, engine: Engine, txn: int, context: Dict[str, Any]) -> OpResult:
        return engine.delete_row(txn, self.table, self.key)

    def describe(self) -> str:
        return f"delete {self.table}/{self.key}"

    def footprint(self) -> StepFootprint:
        return StepFootprint(writes=frozenset((f"{self.table}/{self.key}",)))


@dataclass
class OpenCursor(Step):
    """Open a cursor over a list of named items."""

    #: Which item a later Fetch/CursorUpdate touches depends on cursor
    #: position at runtime; the whole cursor family is opaque by declaration.
    opaque_footprint = True

    cursor: str
    items: Sequence[str]

    def perform(self, engine: Engine, txn: int, context: Dict[str, Any]) -> OpResult:
        return engine.open_cursor(txn, self.cursor, list(self.items))

    def describe(self) -> str:
        return f"open cursor {self.cursor}"


@dataclass
class Fetch(Step):
    """Fetch the next item of a cursor (the paper's ``rc``)."""

    opaque_footprint = True  # reads whichever item the cursor points at

    cursor: str
    into: Optional[str] = None

    def perform(self, engine: Engine, txn: int, context: Dict[str, Any]) -> OpResult:
        result = engine.fetch(txn, self.cursor)
        if result.is_ok and self.into:
            context[self.into] = result.value
        return result

    def describe(self) -> str:
        return f"fetch {self.cursor}"


@dataclass
class CursorUpdate(Step):
    """Write the current item of a cursor (the paper's ``wc``)."""

    opaque_footprint = True  # writes whichever item the cursor points at

    cursor: str
    value: ValueSpec = None

    def perform(self, engine: Engine, txn: int, context: Dict[str, Any]) -> OpResult:
        return engine.cursor_update(txn, self.cursor, _resolve(self.value, context))

    def describe(self) -> str:
        return f"cursor-update {self.cursor}"


@dataclass
class CloseCursor(Step):
    """Close a cursor."""

    opaque_footprint = True  # releases cursor state; no statically known items

    cursor: str

    def perform(self, engine: Engine, txn: int, context: Dict[str, Any]) -> OpResult:
        return engine.close_cursor(txn, self.cursor)

    def describe(self) -> str:
        return f"close cursor {self.cursor}"


@dataclass
class Commit(Step):
    """Commit the transaction."""

    def perform(self, engine: Engine, txn: int, context: Dict[str, Any]) -> OpResult:
        return engine.commit(txn)

    def describe(self) -> str:
        return "commit"

    def footprint(self) -> StepFootprint:
        # A terminal step touches no new data; the locks it releases cover
        # items earlier steps already claimed, which occurrence-level analyses
        # (see repro.explorer.reduction) account for by accumulation.
        return StepFootprint()


@dataclass
class Abort(Step):
    """Voluntarily abort the transaction (e.g. the A1 dirty-read scenario)."""

    def perform(self, engine: Engine, txn: int, context: Dict[str, Any]) -> OpResult:
        return engine.abort(txn, reason="program abort")

    def describe(self) -> str:
        return "abort"

    def footprint(self) -> StepFootprint:
        return StepFootprint()


@dataclass
class TransactionProgram:
    """A transaction: an identifier plus an ordered list of steps."""

    txn: int
    steps: List[Step]
    label: str = ""

    def __post_init__(self) -> None:
        if not self.steps:
            raise ValueError("a transaction program needs at least one step")

    @property
    def display_name(self) -> str:
        """``T<id>`` or the provided label."""
        return self.label or f"T{self.txn}"

    def __len__(self) -> int:
        return len(self.steps)

    def footprints(self) -> Tuple[StepFootprint, ...]:
        """The static footprint of every step, in program order."""
        return tuple(step.footprint() for step in self.steps)


# -- the compile pass (the scheduler's slot-program step kernel) ------------------------
#
# The schedule explorer replays the same programs under thousands of
# interleavings; per attempt, the stepwise path pays a polymorphic
# ``step.perform`` dispatch, a second dispatch into the engine method, a
# ``_resolve`` call, and an ``isinstance`` chain mapping the completed step to
# its history operation.  Compilation flattens each program into monomorphic
# step tables — op codes, item names, interned item ids, value specs, realized
# operation kinds, and footprints as tuples of ints — that
# :meth:`repro.engine.scheduler.ScheduleRunner.run_compiled` dispatches on
# directly and engines consume through their narrow
# :meth:`~repro.engine.interface.Engine.apply_step` entry point.  The stepwise
# API stays the source of truth: a compiled run must be byte-equal to the
# stepwise run of the same schedule (gated by tests/engine and
# tests/explorer).

#: Tuple layout of one compiled step (plain tuples: hot-path indexing).
#: ``(opcode, item, value_spec, value_is_callable, into, op_kind, step,
#: describe, op_cache)`` — ``op_cache`` is a per-step dict interning the
#: realized Operation by (value, version): opcode, kind, txn, and item are
#: fixed per step, so the remaining pair identifies the operation.
CompiledStep = Tuple[int, Optional[str], Any, bool, Optional[str],
                     Optional[OperationKind], Step, str, Dict[Any, Any]]


def compile_step(step: Step) -> CompiledStep:
    """Flatten one step into its monomorphic dispatch record.

    Only the exact core step types compile to dedicated op codes — a subclass
    overriding :meth:`Step.perform` falls back to :data:`OP_GENERIC`, which
    preserves its behaviour by calling ``perform`` as the stepwise path does.
    """
    cls = type(step)
    if cls is ReadItem:
        return (OP_READ, step.item, None, False, step.into or step.item,
                OperationKind.READ, step, f"read {step.item}", {})
    if cls is WriteItem:
        return (OP_WRITE, step.item, step.value, callable(step.value), None,
                OperationKind.WRITE, step, f"write {step.item}", {})
    if cls is Commit:
        return (OP_COMMIT, None, None, False, None,
                OperationKind.COMMIT, step, "commit", {})
    if cls is Abort:
        return (OP_ABORT, None, None, False, None,
                OperationKind.ABORT, step, "abort", {})
    return (OP_GENERIC, None, None, False, None, None, step, step.describe(), {})


@dataclass(frozen=True)
class CompiledProgram:
    """One transaction program flattened into step tables.

    ``read_ids`` / ``write_ids`` carry each step's footprint as tuples of item
    ids (indices into the program set's item table); ``opaque`` marks steps
    whose footprint is unknowable statically.  Together they are the integer
    form of :meth:`TransactionProgram.footprints`, cheap to turn into bitmask
    commutation tables (see :mod:`repro.explorer.reduction`).
    """

    txn: int
    steps: Tuple[CompiledStep, ...]
    read_ids: Tuple[Tuple[int, ...], ...]
    write_ids: Tuple[Tuple[int, ...], ...]
    opaque: Tuple[bool, ...]

    def __len__(self) -> int:
        return len(self.steps)


@dataclass(frozen=True)
class CompiledProgramSet:
    """Every program of a set compiled against one shared item-id table."""

    programs: Tuple[CompiledProgram, ...]
    item_ids: Dict[str, int]

    def by_txn(self) -> Dict[int, CompiledProgram]:
        return {program.txn: program for program in self.programs}


def compile_program(program: TransactionProgram,
                    item_ids: Dict[str, int]) -> CompiledProgram:
    """Compile one program, interning item names into ``item_ids`` (mutated)."""
    read_ids: List[Tuple[int, ...]] = []
    write_ids: List[Tuple[int, ...]] = []
    opaque: List[bool] = []

    def intern(names: FrozenSet[str]) -> Tuple[int, ...]:
        ids = []
        for name in sorted(names):
            idx = item_ids.get(name)
            if idx is None:
                idx = item_ids[name] = len(item_ids)
            ids.append(idx)
        return tuple(ids)

    for step in program.steps:
        footprint = step.footprint()
        opaque.append(footprint.opaque)
        read_ids.append(intern(footprint.reads) if not footprint.opaque else ())
        write_ids.append(intern(footprint.writes) if not footprint.opaque else ())
    return CompiledProgram(
        txn=program.txn,
        steps=tuple(compile_step(step) for step in program.steps),
        read_ids=tuple(read_ids),
        write_ids=tuple(write_ids),
        opaque=tuple(opaque),
    )


def compile_programs(programs: Sequence[TransactionProgram]) -> CompiledProgramSet:
    """Compile a whole program set against one shared item-id table."""
    item_ids: Dict[str, int] = {}
    return CompiledProgramSet(
        programs=tuple(compile_program(program, item_ids) for program in programs),
        item_ids=item_ids,
    )


# -- batch table emission (the explorer's vectorized batch-drain kernel) -----------------
#
# The batch kernel (repro.explorer.batch_kernel) executes many schedules of
# one program set against flat per-transaction step tables: plain int tuples
# of op codes and item ids that pack directly into numpy arrays.  Emission
# lives here, next to compile_step, because the tables are a projection of the
# compiled step tables — the kernel reaches value specs, ``into`` bindings,
# and the per-step operation-interning caches through the CompiledProgramSet
# it was built from, so both kernels share one set of interned Operations.

@dataclass(frozen=True)
class BatchProgram:
    """One program's steps as flat int tables (indices into the item table).

    ``item_ids[i]`` is ``-1`` for steps without an item (commit/abort);
    ``supported`` is False when any step compiles to :data:`OP_GENERIC` —
    such programs cannot run on the batch kernel and must take the stepwise
    path.
    """

    txn: int
    opcodes: Tuple[int, ...]
    item_ids: Tuple[int, ...]
    supported: bool


@dataclass(frozen=True)
class BatchTableSet:
    """Every program of a set as batch tables over one shared item table.

    ``item_names`` maps item id -> name (the table's own interning order:
    first encounter across programs in step order).  The set is numpy-free by
    design — packing into arrays happens lazily inside the batch kernel, so
    importing this module never pulls in the optional dependency.
    """

    programs: Tuple[BatchProgram, ...]
    item_names: Tuple[str, ...]
    supported: bool

    def by_txn(self) -> Dict[int, BatchProgram]:
        return {program.txn: program for program in self.programs}


def emit_batch_tables(compiled: CompiledProgramSet) -> BatchTableSet:
    """Project a compiled program set onto flat batch tables.

    Item names are interned into a fresh table (the compiled set's
    ``item_ids`` covers only static footprints, which by construction agree
    with step items for the core step types — but the batch tables stand on
    their own mapping so emission never depends on footprint completeness).
    """
    ids: Dict[str, int] = {}
    programs: List[BatchProgram] = []
    all_supported = True
    for program in compiled.programs:
        opcodes: List[int] = []
        items: List[int] = []
        supported = True
        for cstep in program.steps:
            opcode = cstep[0]
            opcodes.append(opcode)
            name = cstep[1]
            if name is None:
                items.append(-1)
            else:
                idx = ids.get(name)
                if idx is None:
                    idx = ids[name] = len(ids)
                items.append(idx)
            if opcode == OP_GENERIC:
                supported = False
        all_supported = all_supported and supported
        programs.append(BatchProgram(
            txn=program.txn,
            opcodes=tuple(opcodes),
            item_ids=tuple(items),
            supported=supported,
        ))
    names = [""] * len(ids)
    for name, idx in ids.items():
        names[idx] = name
    return BatchTableSet(
        programs=tuple(programs),
        item_names=tuple(names),
        supported=all_supported,
    )
