"""Execution outcomes: everything a scenario needs to decide whether an anomaly occurred.

Running a set of transaction programs under an engine produces an
:class:`ExecutionOutcome`: the realized history (the actions that actually
executed, in order), the final state of every transaction, the values each
transaction observed, the final database, and the blocking / deadlock
statistics.  Scenario ``manifests`` predicates and the performance benchmarks
all consume this object.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List

from ..core.history import History
from ..locking.deadlock import Deadlock
from ..storage.database import Database
from .interface import OpStatus, TransactionState

__all__ = ["StepTrace", "ExecutionOutcome"]


@dataclass(frozen=True)
class StepTrace:
    """One attempt at executing one step of one program."""

    txn: int
    step: str
    status: OpStatus
    value: Any = None
    reason: str = ""

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"T{self.txn} {self.step} -> {self.status.value}"


@dataclass
class ExecutionOutcome:
    """The result of driving a set of programs to completion under an engine."""

    #: Name of the engine that produced the outcome.
    engine_name: str
    #: The realized history: only actions that actually executed, in execution order.
    history: History
    #: Final lifecycle state per transaction.
    statuses: Dict[int, TransactionState]
    #: Per-transaction context: the values bound by ReadItem/Fetch/Select steps.
    contexts: Dict[int, Dict[str, Any]]
    #: The shared database after the run.
    database: Database
    #: Why each aborted transaction aborted.
    abort_reasons: Dict[int, str] = field(default_factory=dict)
    #: Number of step attempts that came back BLOCKED.
    blocked_events: int = 0
    #: Deadlocks detected (victim aborted for each).
    deadlocks: List[Deadlock] = field(default_factory=list)
    #: Every step attempt, in order (for debugging and fine-grained assertions).
    traces: List[StepTrace] = field(default_factory=list)
    #: True when the runner had to give up (no progress, no deadlock) — this
    #: indicates a bug in an engine or a program and is asserted against in tests.
    stalled: bool = False

    # -- convenience queries --------------------------------------------------------

    def committed(self, txn: int) -> bool:
        """True when the transaction committed."""
        return self.statuses.get(txn) is TransactionState.COMMITTED

    def aborted(self, txn: int) -> bool:
        """True when the transaction aborted (voluntarily or not)."""
        return self.statuses.get(txn) is TransactionState.ABORTED

    def all_committed(self, *txns: int) -> bool:
        """True when every listed transaction (or every transaction) committed."""
        targets = txns or tuple(self.statuses)
        return all(self.committed(txn) for txn in targets)

    def committed_transactions(self) -> List[int]:
        """The transactions that committed."""
        return [txn for txn in self.statuses if self.committed(txn)]

    def observed(self, txn: int, variable: str, default: Any = None) -> Any:
        """The value a transaction bound to a context variable, if any."""
        return self.contexts.get(txn, {}).get(variable, default)

    def reads_observed(self, txn: int) -> Dict[str, Any]:
        """All context bindings of a transaction."""
        return dict(self.contexts.get(txn, {}))

    def blocked(self) -> bool:
        """True when any step attempt was ever blocked."""
        return self.blocked_events > 0

    def deadlocked(self) -> bool:
        """True when at least one deadlock was detected."""
        return bool(self.deadlocks)

    def summary(self) -> str:
        """A one-line, human-readable summary (used by examples)."""
        states = ", ".join(
            f"T{txn}={state.value}" for txn, state in sorted(self.statuses.items())
        )
        return (
            f"[{self.engine_name}] {states}; blocked={self.blocked_events}; "
            f"deadlocks={len(self.deadlocks)}; history={self.history.to_shorthand()}"
        )
