"""The schedule runner: deterministic interleaved execution of transaction programs.

The runner is the reproduction's stand-in for "several clients hitting the
database at once".  It takes an engine, a set of
:class:`~repro.engine.programs.TransactionProgram` objects, and an optional
*interleaving* — a sequence of transaction ids saying whose step should be
attempted next — and drives every program to completion:

* A step whose engine call returns OK advances that program's program counter
  and is recorded into the realized history.
* A BLOCKED step leaves the program counter where it is; the blocking
  transactions are recorded in the waits-for graph and the step is retried the
  next time the transaction is scheduled.
* Deadlocks are detected on the waits-for graph after every blocked attempt;
  the victim is aborted through the engine and its remaining steps are skipped.
* An ABORTED result (engine-initiated: first-committer-wins failure, cursor
  conflict, deadlock victim) terminates that program immediately.

After the explicit interleaving is exhausted, remaining steps are drained
round-robin, so an interleaving only needs to pin down the order of the
*interesting* prefix of the schedule.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import (
    Any,
    Callable,
    Dict,
    FrozenSet,
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
)

from ..core.history import History
from ..core.operations import Operation, OperationKind
from ..locking.deadlock import Deadlock, WaitsForGraph
from .interface import (
    OP_ABORT,
    OP_COMMIT,
    OP_GENERIC,
    OP_READ,
    OP_WRITE,
    Engine,
    OpResult,
    OpStatus,
    TransactionState,
)
from .outcomes import ExecutionOutcome, StepTrace
from .programs import (
    Abort,
    Commit,
    CompiledStep,
    CursorUpdate,
    DeleteRow,
    Fetch,
    InsertRow,
    ReadItem,
    SelectPredicate,
    Step,
    TransactionProgram,
    UpdateRow,
    WriteItem,
    compile_step,
)

__all__ = ["ScheduleRunner", "RunnerCheckpoint", "run_schedule", "replay_schedules"]


class _ProgramState:
    """The runner's bookkeeping for one program (slotted: hot-path attribute access)."""

    __slots__ = ("program", "steps", "total", "counter", "finished", "context",
                 "compiled", "parked", "commit_op", "abort_op")

    def __init__(self, program: TransactionProgram,
                 compiled: Optional[Tuple[CompiledStep, ...]] = None):
        self.program = program
        self.steps = program.steps
        self.total = len(program.steps)
        self.counter = 0
        self.finished = False
        self.context: Dict[str, Any] = {}
        #: Compiled step table (see repro.engine.programs.compile_step), or
        #: None when the runner drives the stepwise path.
        self.compiled = compiled
        #: (step counter, blocking version, result, item) of the last blocked
        #: attempt — the runner's blocked-result memo, stored on the state
        #: slot so the hot path skips a dict lookup per attempt.  The version
        #: is per-item (``blocking_version_for(item)``) when the blocked step
        #: names an item, so parked attempts survive unrelated lock traffic;
        #: ``item`` is None for non-item steps, falling back to the global
        #: blocking version.
        self.parked: Optional[Tuple[int, int, OpResult, Optional[str]]] = None
        #: Precomputed terminal operations: a committed/aborted terminal
        #: realizes the same value-equal Operation every time.
        self.commit_op = Operation(OperationKind.COMMIT, program.txn)
        self.abort_op = Operation(OperationKind.ABORT, program.txn)

    @property
    def txn(self) -> int:
        return self.program.txn

    @property
    def exhausted(self) -> bool:
        return self.counter >= self.total


@dataclass(frozen=True)
class RunnerCheckpoint:
    """A value token of a :class:`ScheduleRunner` mid-run, engine included.

    Captured by :meth:`ScheduleRunner.checkpoint` after some prefix of slots
    has been applied; :meth:`ScheduleRunner.restore` rolls the runner (and its
    engine, and the engine's database) back to exactly that point.  Append-only
    structures (operations, traces, deadlocks) are restored by truncation, so a
    token is only valid for rolling *backwards* along the same execution path —
    the trie executor's DFS discipline.
    """

    engine_token: Any
    program_states: Tuple[Tuple[int, int, bool], ...]  # (txn, counter, finished)
    contexts: Tuple[Tuple[int, Dict[str, Any]], ...]
    waits_token: Any
    operations_len: int
    traces_len: int
    deadlocks_len: int
    blocked_events: int
    abort_reasons: Tuple[Tuple[int, str], ...]
    attempts: int
    stalled: bool
    waits_maybe_cyclic: bool
    terminal_recorded: FrozenSet[int] = frozenset()
    blocked_memo: Tuple[Tuple[int, Tuple[int, int, OpResult, Optional[str]]], ...] = ()


class ScheduleRunner:
    """Drives a set of programs through an engine under a chosen interleaving."""

    #: Deliberately outside the checkpoint token (see repolint's
    #: checkpoint-completeness check): the programs, their order, and the
    #: attempt budget are per-runner configuration; the compiled-step tables
    #: and the dispatch function are one-way setup (enable_compiled); the
    #: operation-interning cache memoizes a pure function, so a stale entry
    #: can never change a realized operation.
    _checkpoint_stable = ("_programs", "_order", "_max_attempts",
                          "_collect_traces", "_compiled", "_compiled_tables",
                          "_attempt_fn", "_op_cache")

    def __init__(self, engine: Engine, programs: Sequence[TransactionProgram],
                 interleaving: Optional[Sequence[int]] = None,
                 max_attempts: Optional[int] = None,
                 collect_traces: bool = True,
                 compiled: bool = False):
        if not programs:
            raise ValueError("at least one transaction program is required")
        txns = [program.txn for program in programs]
        if len(set(txns)) != len(txns):
            raise ValueError("transaction identifiers must be unique")
        self.engine = engine
        self._programs = list(programs)
        self._order = list(txns)
        total_steps = sum(len(program) for program in programs)
        self._max_attempts = max_attempts or (total_steps * 20 + 100)
        #: The schedule explorer turns traces off: records never consult them,
        #: and skipping a StepTrace per attempt is measurable on the hot path.
        self._collect_traces = collect_traces
        #: Compiled step tables, one per program (see programs.compile_step).
        #: Compiled once per runner and reused across reset()/replay().
        self._compiled = False
        self._compiled_tables: Optional[Dict[int, Tuple[CompiledStep, ...]]] = None
        self._attempt_fn: Callable[[int], int] = self._attempt
        if compiled:
            self.enable_compiled()
        #: Interned realized operations, shared across runs of this runner:
        #: replaying thousands of schedules of the same programs realizes the
        #: same (kind, txn, item, value, version) operations over and over,
        #: and reusing the instances also reuses their cached hashes.
        #: Survives reset()/restore() — interning is pure.  Keyed by kind
        #: first so the per-call tuple key avoids hashing the enum.
        self._op_cache: Dict[OperationKind, Dict[Tuple, Operation]] = {}
        self._reset_state(interleaving)

    def _reset_state(self, interleaving: Optional[Sequence[int]]) -> None:
        """(Re)initialize all per-run bookkeeping."""
        tables = self._compiled_tables
        self._states = {
            program.txn: _ProgramState(
                program, tables[program.txn] if tables is not None else None)
            for program in self._programs
        }
        self._interleaving = list(interleaving) if interleaving is not None else []
        self._waits = WaitsForGraph()
        self._operations: List[Operation] = []
        self._traces: List[StepTrace] = []
        self._blocked_events = 0
        self._deadlocks: List[Deadlock] = []
        self._abort_reasons: Dict[int, str] = {}
        self._attempts = 0
        self._stalled = False
        self._begun = False
        #: Transactions whose terminal operation is already in _operations.
        self._terminal_recorded: set = set()
        #: True while a broken deadlock may have left another cycle behind;
        #: while False the waits-for graph is provably acyclic and detection
        #: can be skipped for blocked attempts whose blockers are all running.
        self._waits_maybe_cyclic = False

    # -- public API -----------------------------------------------------------------

    def reset(self, engine: Optional[Engine] = None,
              interleaving: Optional[Sequence[int]] = None) -> "ScheduleRunner":
        """Re-arm the runner for another run, skipping program re-validation.

        The schedule-space explorer replays the same program set under
        thousands of different interleavings; ``reset`` swaps in a fresh
        engine and the next interleaving without rebuilding program state
        dictionaries from scratch.  Returns ``self`` for chaining.
        """
        if engine is not None:
            self.engine = engine
        self._reset_state(interleaving)
        return self

    def replay(self, engine: Engine,
               interleaving: Optional[Sequence[int]] = None) -> ExecutionOutcome:
        """Reset against a fresh engine and run one more interleaving."""
        return self.reset(engine, interleaving).run()

    def run(self) -> ExecutionOutcome:
        """Execute every program to completion and return the outcome."""
        self.begin_all()
        # Phase 1: the explicit interleaving.
        for txn in self._interleaving:
            if self._attempts >= self._max_attempts:
                break
            self.apply_slot(txn)
        return self.drain()

    # -- the compiled step kernel -----------------------------------------------------

    def enable_compiled(self) -> None:
        """Switch this runner onto the compiled slot-program step kernel.

        Programs are flattened once (see
        :func:`repro.engine.programs.compile_step`) and every subsequent
        attempt dispatches on the step tables through the engines' narrow
        :meth:`~repro.engine.interface.Engine.apply_step` entry point instead
        of the polymorphic ``Step.perform`` path.  Execution stays byte-equal
        to the stepwise path — same results, operations, traces, blocked
        counts, deadlocks — which ``tests/engine/test_compiled_kernel.py``
        gates for every engine level.
        """
        if self._compiled:
            return
        self._compiled = True
        self._compiled_tables = {
            program.txn: tuple(compile_step(step) for step in program.steps)
            for program in self._programs
        }
        self._attempt_fn = self._attempt_compiled
        for txn, state in getattr(self, "_states", {}).items():
            state.compiled = self._compiled_tables[txn]

    def run_compiled(self) -> ExecutionOutcome:
        """:meth:`run`, forced onto the compiled kernel (compiling on first use)."""
        self.enable_compiled()
        return self.run()

    # -- stepwise API (the trie executor's entry points) ------------------------------------

    def begin_all(self) -> None:
        """Register every program's transaction with the engine (idempotent)."""
        if self._begun:
            return
        for state in self._states.values():
            self.engine.begin(state.txn)
        self._begun = True

    def apply_slot(self, txn: int) -> int:
        """Apply one interleaving slot (one attempt of ``txn``'s next step).

        Returns 1 when an engine call was made, 0 when the transaction had
        nothing left to do.  Equivalent to one iteration of :meth:`run`'s
        phase-1 loop; callers driving slots directly must call
        :meth:`begin_all` first and :meth:`drain` afterwards.
        """
        if self._attempts >= self._max_attempts:
            return 0
        made = self._attempt_fn(txn)
        self._attempts += made
        return made

    def apply_many(self, txns: Sequence[int]) -> None:
        """Apply a run of interleaving slots (one :meth:`apply_slot` each).

        The trie executor applies whole divergent suffixes at once; hoisting
        the per-slot wrapper out of that loop is measurable at explorer scale.
        """
        attempt = self._attempt_fn
        attempts = self._attempts
        limit = self._max_attempts
        for txn in txns:
            if attempts >= limit:
                break
            attempts += attempt(txn)
        self._attempts = attempts

    def drain(self) -> ExecutionOutcome:
        """Phase 2: drain remaining work round-robin until done or stuck.

        Retries are *version-gated*: a transaction whose last attempt came
        back blocked is only re-attempted once the engine's blocking state
        *for the blocked item* has changed (a lock on that item was granted,
        strengthened, or released) — an unchanged per-item version makes the
        retry a provable no-op, so skipping it leaves the realized history,
        statuses, and deadlocks untouched and only stops inflating
        ``blocked_events`` with futile submissions; unrelated lock traffic no
        longer wakes parked attempts.  Deadlocks formed while every blocked
        transaction is parked are still caught: the no-progress branch below
        runs full detection, and breaking a victim releases its locks, which
        bumps its items' versions and wakes the transactions it blocked.
        """
        states = self._states
        attempt = self._attempt_fn
        blocking_version_for = self.engine.blocking_version_for
        while self._attempts < self._max_attempts:
            # Attempting only unfinished transactions, in schedule order, makes
            # exactly the same effectful attempts as iterating the full order
            # (an _attempt on a finished transaction is a guaranteed no-op).
            active = [txn for txn in self._order
                      if not states[txn].finished
                      and states[txn].counter < states[txn].total]
            if not active:
                break
            progressed = False
            for txn in active:
                if self._attempts >= self._max_attempts:
                    break
                state = states[txn]
                parked = state.parked
                if (parked is not None
                        and parked[0] == state.counter
                        and parked[1] == blocking_version_for(parked[3])):
                    continue
                made = attempt(txn)
                self._attempts += made
                if made and not self._is_blocked_state(txn):
                    progressed = True
            if not progressed:
                if not self._resolve_deadlock():
                    # No progress and no cycle: whether transactions were
                    # re-attempted or parked on an unchanged lock table,
                    # nothing can ever wake them.
                    self._stalled = True
                    break
        return self._build_outcome()

    # -- checkpoint / restore ----------------------------------------------------------------

    def checkpoint(self) -> RunnerCheckpoint:
        """Capture runner + engine state after the slots applied so far."""
        return RunnerCheckpoint(
            engine_token=self.engine.checkpoint(),
            program_states=tuple(
                (txn, state.counter, state.finished)
                for txn, state in self._states.items()
            ),
            contexts=tuple(
                (txn, dict(state.context)) for txn, state in self._states.items()
            ),
            waits_token=self._waits.checkpoint(),
            operations_len=len(self._operations),
            traces_len=len(self._traces),
            deadlocks_len=len(self._deadlocks),
            blocked_events=self._blocked_events,
            abort_reasons=tuple(self._abort_reasons.items()),
            attempts=self._attempts,
            stalled=self._stalled,
            waits_maybe_cyclic=self._waits_maybe_cyclic,
            terminal_recorded=frozenset(self._terminal_recorded),
            blocked_memo=tuple(
                (txn, state.parked) for txn, state in self._states.items()
                if state.parked is not None
            ),
        )

    def restore(self, token: RunnerCheckpoint) -> None:
        """Roll runner + engine back to a checkpoint on the current run's path."""
        self.engine.restore(token.engine_token)
        for txn, counter, finished in token.program_states:
            state = self._states[txn]
            state.counter = counter
            state.finished = finished
        for txn, context in token.contexts:
            self._states[txn].context = dict(context)
        self._waits.restore(token.waits_token)
        del self._operations[token.operations_len:]
        del self._traces[token.traces_len:]
        del self._deadlocks[token.deadlocks_len:]
        self._blocked_events = token.blocked_events
        self._abort_reasons = dict(token.abort_reasons)
        self._attempts = token.attempts
        self._stalled = token.stalled
        self._waits_maybe_cyclic = token.waits_maybe_cyclic
        self._terminal_recorded = set(token.terminal_recorded)
        # The memo is observable state — whether a drain retry is parked or
        # re-submitted shows up in blocked_events — so it round-trips exactly,
        # together with the engine-side version counter it is keyed on.
        for state in self._states.values():
            state.parked = None
        for txn, parked in token.blocked_memo:
            self._states[txn].parked = parked

    # -- single-step execution -----------------------------------------------------------

    def _attempt(self, txn: int) -> int:
        """Try to execute the next step of a transaction.  Returns 1 if an
        engine call was made (whatever its outcome), 0 if nothing to do."""
        state = self._states.get(txn)
        if state is None or state.finished or state.counter >= state.total:
            return 0
        counter = state.counter
        step = state.steps[counter]
        # A blocked outcome is a pure function of the engine's versioned
        # blocking state; when neither the step nor that version has changed
        # since this transaction's last blocked attempt, skip the engine call
        # and replay the identical result (all runner-side effects still run).
        memo = state.parked
        replayed = False
        if memo is not None and memo[0] == counter:
            version = self.engine.blocking_version_for(memo[3])
            if version is not None and version == memo[1]:
                result = memo[2]
                replayed = True
            else:
                result = step.perform(self.engine, txn, state.context)
        else:
            result = step.perform(self.engine, txn, state.context)
        if self._collect_traces:
            self._traces.append(
                StepTrace(txn, step.describe(), result.status, result.value, result.reason)
            )

        status = result.status
        if status is OpStatus.BLOCKED:
            if not replayed:
                item = getattr(step, "item", None)
                version = self.engine.blocking_version_for(item)
                if version is not None:
                    state.parked = (counter, version, result, item)
            self._blocked_events += 1
            self._waits.set_waits(txn, result.blockers)
            # Detection is skippable when the graph is provably acyclic: a new
            # cycle must run through ``txn``, whose first hop is a blocker, so
            # with no blocker itself waiting the graph stays acyclic and
            # detect() would return None anyway.
            if self._waits_maybe_cyclic or self._waits.any_waiting(result.blockers):
                self._resolve_deadlock()
            return 1

        self._waits.clear_waits(txn)

        if status is OpStatus.ABORTED:
            self._record_abort(txn, result.reason or "engine abort")
            state.finished = True
            self._waits.remove_transaction(txn)
            return 1

        # OK: record the realized operation and advance.
        operation = self._to_operation(txn, step, result)
        if operation is not None:
            self._operations.append(operation)
            if operation.kind is OperationKind.COMMIT or operation.kind is OperationKind.ABORT:
                self._terminal_recorded.add(txn)
        state.counter += 1
        if isinstance(step, (Commit, Abort)) or state.counter >= state.total:
            state.finished = True
            self._waits.remove_transaction(txn)
            if isinstance(step, Abort):
                self._abort_reasons.setdefault(txn, "program abort")
        return 1

    def _attempt_compiled(self, txn: int) -> int:
        """Compiled twin of :meth:`_attempt`: dispatch on flattened step tables.

        Behaviour-identical to :meth:`_attempt` by construction — every
        branch below mirrors one of its branches, with the polymorphic
        ``step.perform`` / ``_to_operation`` dispatches replaced by the
        precomputed op code, item, value spec, describe string, and realized
        operation kind of the compiled step.  The byte-equality tests in
        tests/engine and tests/explorer hold the two in lockstep; change them
        together.
        """
        state = self._states.get(txn)
        if state is None or state.finished or state.counter >= state.total:
            return 0
        counter = state.counter
        cstep = state.compiled[counter]
        opcode = cstep[0]
        engine = self.engine
        # Blocked-result memo fast path — same rule as the stepwise attempt.
        memo = state.parked
        result = None
        replayed = False
        if memo is not None and memo[0] == counter:
            version = engine.blocking_version_for(memo[3])
            if version is not None and version == memo[1]:
                result = memo[2]
                replayed = True
        if result is None:
            if opcode == OP_READ:
                result = engine.apply_step(OP_READ, txn, cstep[1])
                if result.status is OpStatus.OK:
                    state.context[cstep[4]] = result.value
            elif opcode == OP_WRITE:
                value = cstep[2]
                if cstep[3]:
                    value = value(state.context)
                result = engine.apply_step(OP_WRITE, txn, cstep[1], value)
            elif opcode == OP_GENERIC:
                result = cstep[6].perform(engine, txn, state.context)
            else:
                result = engine.apply_step(opcode, txn)
        if self._collect_traces:
            self._traces.append(
                StepTrace(txn, cstep[7], result.status, result.value, result.reason)
            )

        status = result.status
        if status is OpStatus.BLOCKED:
            if not replayed:
                item = cstep[1]
                version = engine.blocking_version_for(item)
                if version is not None:
                    state.parked = (counter, version, result, item)
            self._blocked_events += 1
            self._waits.set_waits(txn, result.blockers)
            if self._waits_maybe_cyclic or self._waits.any_waiting(result.blockers):
                self._resolve_deadlock()
            return 1

        self._waits.clear_waits(txn)

        if status is OpStatus.ABORTED:
            self._record_abort(txn, result.reason or "engine abort")
            state.finished = True
            self._waits.remove_transaction(txn)
            return 1

        # OK: record the realized operation and advance.
        if opcode == OP_READ or opcode == OP_WRITE:
            # Per-step operation interning: kind/txn/item are fixed for this
            # step, so (value, version) identifies the realized operation.
            cache = cstep[8]
            opkey = (result.value, result.version)
            try:
                operation = cache.get(opkey)
            except TypeError:  # unhashable recorded value
                operation = Operation(cstep[5], txn, item=cstep[1],
                                      value=result.value, version=result.version)
            else:
                if operation is None:
                    operation = Operation(cstep[5], txn, item=cstep[1],
                                          value=result.value,
                                          version=result.version)
                    if len(cache) < 4096:
                        cache[opkey] = operation
            self._operations.append(operation)
        elif opcode == OP_COMMIT:
            self._operations.append(state.commit_op)
            self._terminal_recorded.add(txn)
        elif opcode == OP_ABORT:
            self._operations.append(state.abort_op)
            self._terminal_recorded.add(txn)
        else:
            operation = self._to_operation(txn, cstep[6], result)
            if operation is not None:
                self._operations.append(operation)
                opkind = operation.kind
                if opkind is OperationKind.COMMIT or opkind is OperationKind.ABORT:
                    self._terminal_recorded.add(txn)
        state.counter = counter + 1
        if (opcode == OP_COMMIT or opcode == OP_ABORT
                or state.counter >= state.total
                or (opcode == OP_GENERIC and isinstance(cstep[6], (Commit, Abort)))):
            state.finished = True
            self._waits.remove_transaction(txn)
            if opcode == OP_ABORT or (
                    opcode == OP_GENERIC and isinstance(cstep[6], Abort)):
                self._abort_reasons.setdefault(txn, "program abort")
        return 1

    def _is_blocked_state(self, txn: int) -> bool:
        return self._waits.is_waiting(txn)

    def _resolve_deadlock(self) -> bool:
        """Detect a deadlock and abort its victim.  Returns True if one was broken."""
        deadlock = self._waits.detect()
        if deadlock is None:
            self._waits_maybe_cyclic = False
            return False
        # Breaking one cycle may leave another; force full detection until a
        # scan comes back clean.
        self._waits_maybe_cyclic = True
        self._deadlocks.append(deadlock)
        victim = deadlock.victim
        self.engine.abort(victim, reason="deadlock victim")
        self._record_abort(victim, "deadlock victim")
        state = self._states.get(victim)
        if state is not None:
            state.finished = True
        self._waits.remove_transaction(victim)
        return True

    def _record_abort(self, txn: int, reason: str) -> None:
        self._abort_reasons[txn] = reason
        if txn not in self._terminal_recorded:
            self._operations.append(self._intern(OperationKind.ABORT, txn))
            self._terminal_recorded.add(txn)

    # -- translation to history operations --------------------------------------------------

    def _intern(self, kind: OperationKind, txn: int, item: Optional[str] = None,
                value: Any = None, version: Optional[int] = None) -> Operation:
        """A (usually cached) Operation — replays realize the same ones endlessly."""
        by_kind = self._op_cache.get(kind)
        if by_kind is None:
            by_kind = self._op_cache[kind] = {}
        key = (txn, item, value, version)
        try:
            operation = by_kind.get(key)
        except TypeError:  # unhashable recorded value — build directly
            return Operation(kind, txn, item=item, value=value, version=version)
        if operation is None:
            operation = Operation(kind, txn, item=item, value=value, version=version)
            if len(by_kind) < 100_000:
                by_kind[key] = operation
        return operation

    def _to_operation(self, txn: int, step: Step, result: OpResult) -> Optional[Operation]:
        """Map a completed step to the history operation it realizes."""
        if isinstance(step, ReadItem):
            return self._intern(OperationKind.READ, txn, step.item,
                                result.value, result.version)
        if isinstance(step, WriteItem):
            return self._intern(OperationKind.WRITE, txn, step.item,
                                result.value, result.version)
        if isinstance(step, SelectPredicate):
            return Operation(OperationKind.PREDICATE_READ, txn,
                             predicate=step.predicate.name)
        if isinstance(step, InsertRow):
            return self._intern(OperationKind.WRITE, txn, result.item,
                                version=result.version)
        if isinstance(step, (UpdateRow, DeleteRow)):
            return self._intern(OperationKind.WRITE, txn,
                                f"{step.table}/{step.key}", version=result.version)
        if isinstance(step, Fetch):
            return self._intern(OperationKind.CURSOR_READ, txn, result.item,
                                result.value, result.version)
        if isinstance(step, CursorUpdate):
            return self._intern(OperationKind.CURSOR_WRITE, txn, result.item,
                                result.value, result.version)
        if isinstance(step, Commit):
            return self._intern(OperationKind.COMMIT, txn)
        if isinstance(step, Abort):
            return self._intern(OperationKind.ABORT, txn)
        # OpenCursor / CloseCursor do not appear in histories.
        return None

    # -- finishing -----------------------------------------------------------------------------

    def _all_finished(self) -> bool:
        return all(state.finished or state.exhausted for state in self._states.values())

    def _build_outcome(self) -> ExecutionOutcome:
        # Equivalent to state_of per txn with the defensive ACTIVE fallback,
        # minus a method call + exception frame per transaction per outcome.
        engine_states = getattr(self.engine, "_states", None)
        statuses: Dict[int, TransactionState] = {}
        if isinstance(engine_states, dict):
            active = TransactionState.ACTIVE
            for txn in self._order:
                statuses[txn] = engine_states.get(txn, active)
        else:  # pragma: no cover - engines without the base bookkeeping
            for txn in self._order:
                try:
                    statuses[txn] = self.engine.state_of(txn)
                except Exception:
                    statuses[txn] = TransactionState.ACTIVE
        return ExecutionOutcome(
            engine_name=self.engine.name,
            # Runner-realized histories are well-formed by construction (a
            # finished transaction never acts again), so skip the validation scan.
            history=History(self._operations, validate=False),
            statuses=statuses,
            contexts={txn: dict(state.context) for txn, state in self._states.items()},
            database=self.engine.database,
            abort_reasons=dict(self._abort_reasons),
            blocked_events=self._blocked_events,
            deadlocks=list(self._deadlocks),
            traces=list(self._traces),
            stalled=self._stalled,
        )


def run_schedule(engine: Engine, programs: Sequence[TransactionProgram],
                 interleaving: Optional[Sequence[int]] = None) -> ExecutionOutcome:
    """Convenience wrapper: build a :class:`ScheduleRunner` and run it."""
    return ScheduleRunner(engine, programs, interleaving).run()


def replay_schedules(engine_builder: "Callable[[], Engine]",
                     programs: Sequence[TransactionProgram],
                     interleavings: Iterable[Sequence[int]],
                     ) -> "Iterator[ExecutionOutcome]":
    """Run the same program set under many interleavings, one fresh engine each.

    ``engine_builder`` must return a brand-new engine over a brand-new
    database on every call — replays share nothing.  A single
    :class:`ScheduleRunner` is reused via :meth:`ScheduleRunner.reset`, which
    is the hot path of the schedule-space explorer.
    """
    runner: Optional[ScheduleRunner] = None
    for interleaving in interleavings:
        engine = engine_builder()
        if runner is None:
            runner = ScheduleRunner(engine, programs, interleaving)
            yield runner.run()
        else:
            yield runner.replay(engine, interleaving)
