"""The schedule runner: deterministic interleaved execution of transaction programs.

The runner is the reproduction's stand-in for "several clients hitting the
database at once".  It takes an engine, a set of
:class:`~repro.engine.programs.TransactionProgram` objects, and an optional
*interleaving* — a sequence of transaction ids saying whose step should be
attempted next — and drives every program to completion:

* A step whose engine call returns OK advances that program's program counter
  and is recorded into the realized history.
* A BLOCKED step leaves the program counter where it is; the blocking
  transactions are recorded in the waits-for graph and the step is retried the
  next time the transaction is scheduled.
* Deadlocks are detected on the waits-for graph after every blocked attempt;
  the victim is aborted through the engine and its remaining steps are skipped.
* An ABORTED result (engine-initiated: first-committer-wins failure, cursor
  conflict, deadlock victim) terminates that program immediately.

After the explicit interleaving is exhausted, remaining steps are drained
round-robin, so an interleaving only needs to pin down the order of the
*interesting* prefix of the schedule.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from ..core.history import History
from ..core.operations import Operation, OperationKind
from ..locking.deadlock import Deadlock, WaitsForGraph
from .interface import Engine, OpResult, OpStatus, TransactionState
from .outcomes import ExecutionOutcome, StepTrace
from .programs import (
    Abort,
    Commit,
    CursorUpdate,
    DeleteRow,
    Fetch,
    InsertRow,
    ReadItem,
    SelectPredicate,
    Step,
    TransactionProgram,
    UpdateRow,
    WriteItem,
)

__all__ = ["ScheduleRunner", "run_schedule", "replay_schedules"]


@dataclass
class _ProgramState:
    """The runner's bookkeeping for one program."""

    program: TransactionProgram
    counter: int = 0
    finished: bool = False
    context: Dict[str, Any] = field(default_factory=dict)

    @property
    def txn(self) -> int:
        return self.program.txn

    @property
    def current_step(self) -> Step:
        return self.program.steps[self.counter]

    @property
    def exhausted(self) -> bool:
        return self.counter >= len(self.program.steps)


class ScheduleRunner:
    """Drives a set of programs through an engine under a chosen interleaving."""

    def __init__(self, engine: Engine, programs: Sequence[TransactionProgram],
                 interleaving: Optional[Sequence[int]] = None,
                 max_attempts: Optional[int] = None):
        if not programs:
            raise ValueError("at least one transaction program is required")
        txns = [program.txn for program in programs]
        if len(set(txns)) != len(txns):
            raise ValueError("transaction identifiers must be unique")
        self.engine = engine
        self._programs = list(programs)
        self._order = list(txns)
        total_steps = sum(len(program) for program in programs)
        self._max_attempts = max_attempts or (total_steps * 20 + 100)
        self._reset_state(interleaving)

    def _reset_state(self, interleaving: Optional[Sequence[int]]) -> None:
        """(Re)initialize all per-run bookkeeping."""
        self._states = {program.txn: _ProgramState(program) for program in self._programs}
        self._interleaving = list(interleaving) if interleaving is not None else []
        self._waits = WaitsForGraph()
        self._operations: List[Operation] = []
        self._traces: List[StepTrace] = []
        self._blocked_events = 0
        self._deadlocks: List[Deadlock] = []
        self._abort_reasons: Dict[int, str] = {}
        self._stalled = False

    # -- public API -----------------------------------------------------------------

    def reset(self, engine: Optional[Engine] = None,
              interleaving: Optional[Sequence[int]] = None) -> "ScheduleRunner":
        """Re-arm the runner for another run, skipping program re-validation.

        The schedule-space explorer replays the same program set under
        thousands of different interleavings; ``reset`` swaps in a fresh
        engine and the next interleaving without rebuilding program state
        dictionaries from scratch.  Returns ``self`` for chaining.
        """
        if engine is not None:
            self.engine = engine
        self._reset_state(interleaving)
        return self

    def replay(self, engine: Engine,
               interleaving: Optional[Sequence[int]] = None) -> ExecutionOutcome:
        """Reset against a fresh engine and run one more interleaving."""
        return self.reset(engine, interleaving).run()

    def run(self) -> ExecutionOutcome:
        """Execute every program to completion and return the outcome."""
        for state in self._states.values():
            self.engine.begin(state.txn)

        attempts = 0
        # Phase 1: the explicit interleaving.
        for txn in self._interleaving:
            if attempts >= self._max_attempts:
                break
            attempts += self._attempt(txn)

        # Phase 2: drain remaining work round-robin until done or stuck.
        while not self._all_finished() and attempts < self._max_attempts:
            progressed = False
            for txn in self._order:
                if attempts >= self._max_attempts:
                    break
                made = self._attempt(txn)
                attempts += made
                if made and not self._is_blocked_state(txn):
                    progressed = True
            if not progressed:
                if not self._resolve_deadlock():
                    self._stalled = True
                    break

        return self._build_outcome()

    # -- single-step execution -----------------------------------------------------------

    def _attempt(self, txn: int) -> int:
        """Try to execute the next step of a transaction.  Returns 1 if an
        engine call was made (whatever its outcome), 0 if nothing to do."""
        state = self._states.get(txn)
        if state is None or state.finished or state.exhausted:
            return 0
        step = state.current_step
        result = step.perform(self.engine, txn, state.context)
        self._traces.append(
            StepTrace(txn, step.describe(), result.status, result.value, result.reason)
        )

        if result.is_blocked:
            self._blocked_events += 1
            self._waits.set_waits(txn, result.blockers)
            self._resolve_deadlock()
            return 1

        self._waits.clear_waits(txn)

        if result.is_aborted:
            self._record_abort(txn, result.reason or "engine abort")
            state.finished = True
            self._waits.remove_transaction(txn)
            return 1

        # OK: record the realized operation and advance.
        operation = self._to_operation(txn, step, result)
        if operation is not None:
            self._operations.append(operation)
        state.counter += 1
        if isinstance(step, (Commit, Abort)) or state.exhausted:
            state.finished = True
            self._waits.remove_transaction(txn)
            if isinstance(step, Abort):
                self._abort_reasons.setdefault(txn, "program abort")
        return 1

    def _is_blocked_state(self, txn: int) -> bool:
        return txn in self._waits.waiting()

    def _resolve_deadlock(self) -> bool:
        """Detect a deadlock and abort its victim.  Returns True if one was broken."""
        deadlock = self._waits.detect()
        if deadlock is None:
            return False
        self._deadlocks.append(deadlock)
        victim = deadlock.victim
        self.engine.abort(victim, reason="deadlock victim")
        self._record_abort(victim, "deadlock victim")
        state = self._states.get(victim)
        if state is not None:
            state.finished = True
        self._waits.remove_transaction(victim)
        return True

    def _record_abort(self, txn: int, reason: str) -> None:
        self._abort_reasons[txn] = reason
        already_terminated = any(
            op.txn == txn and op.is_terminal for op in self._operations
        )
        if not already_terminated:
            self._operations.append(Operation(OperationKind.ABORT, txn))

    # -- translation to history operations --------------------------------------------------

    def _to_operation(self, txn: int, step: Step, result: OpResult) -> Optional[Operation]:
        """Map a completed step to the history operation it realizes."""
        if isinstance(step, ReadItem):
            return Operation(OperationKind.READ, txn, item=step.item,
                             value=result.value, version=result.version)
        if isinstance(step, WriteItem):
            return Operation(OperationKind.WRITE, txn, item=step.item,
                             value=result.value, version=result.version)
        if isinstance(step, SelectPredicate):
            return Operation(OperationKind.PREDICATE_READ, txn,
                             predicate=step.predicate.name)
        if isinstance(step, InsertRow):
            return Operation(OperationKind.WRITE, txn, item=result.item,
                             version=result.version)
        if isinstance(step, (UpdateRow, DeleteRow)):
            return Operation(OperationKind.WRITE, txn,
                             item=f"{step.table}/{step.key}", version=result.version)
        if isinstance(step, Fetch):
            return Operation(OperationKind.CURSOR_READ, txn, item=result.item,
                             value=result.value, version=result.version)
        if isinstance(step, CursorUpdate):
            return Operation(OperationKind.CURSOR_WRITE, txn, item=result.item,
                             value=result.value, version=result.version)
        if isinstance(step, Commit):
            return Operation(OperationKind.COMMIT, txn)
        if isinstance(step, Abort):
            return Operation(OperationKind.ABORT, txn)
        # OpenCursor / CloseCursor do not appear in histories.
        return None

    # -- finishing -----------------------------------------------------------------------------

    def _all_finished(self) -> bool:
        return all(state.finished or state.exhausted for state in self._states.values())

    def _build_outcome(self) -> ExecutionOutcome:
        statuses: Dict[int, TransactionState] = {}
        for txn in self._order:
            try:
                statuses[txn] = self.engine.state_of(txn)
            except Exception:  # pragma: no cover - defensive
                statuses[txn] = TransactionState.ACTIVE
        return ExecutionOutcome(
            engine_name=self.engine.name,
            history=History(self._operations),
            statuses=statuses,
            contexts={txn: dict(state.context) for txn, state in self._states.items()},
            database=self.engine.database,
            abort_reasons=dict(self._abort_reasons),
            blocked_events=self._blocked_events,
            deadlocks=list(self._deadlocks),
            traces=list(self._traces),
            stalled=self._stalled,
        )


def run_schedule(engine: Engine, programs: Sequence[TransactionProgram],
                 interleaving: Optional[Sequence[int]] = None) -> ExecutionOutcome:
    """Convenience wrapper: build a :class:`ScheduleRunner` and run it."""
    return ScheduleRunner(engine, programs, interleaving).run()


def replay_schedules(engine_builder: "Callable[[], Engine]",
                     programs: Sequence[TransactionProgram],
                     interleavings: Iterable[Sequence[int]],
                     ) -> "Iterator[ExecutionOutcome]":
    """Run the same program set under many interleavings, one fresh engine each.

    ``engine_builder`` must return a brand-new engine over a brand-new
    database on every call — replays share nothing.  A single
    :class:`ScheduleRunner` is reused via :meth:`ScheduleRunner.reset`, which
    is the hot path of the schedule-space explorer.
    """
    runner: Optional[ScheduleRunner] = None
    for interleaving in interleavings:
        engine = engine_builder()
        if runner is None:
            runner = ScheduleRunner(engine, programs, interleaving)
            yield runner.run()
        else:
            yield runner.replay(engine, interleaving)
