"""Execution machinery: engine interface, programs, schedule runner, outcomes."""

from .interface import Engine, EngineError, OpResult, OpStatus, TransactionState
from .outcomes import ExecutionOutcome, StepTrace
from .programs import (
    Abort,
    CloseCursor,
    Commit,
    CursorUpdate,
    DeleteRow,
    Fetch,
    InsertRow,
    OpenCursor,
    ReadItem,
    SelectPredicate,
    Step,
    TransactionProgram,
    UpdateRow,
    WriteItem,
)
from .scheduler import ScheduleRunner, run_schedule

__all__ = [
    "Engine", "EngineError", "OpResult", "OpStatus", "TransactionState",
    "ExecutionOutcome", "StepTrace",
    "Abort", "CloseCursor", "Commit", "CursorUpdate", "DeleteRow", "Fetch",
    "InsertRow", "OpenCursor", "ReadItem", "SelectPredicate", "Step",
    "TransactionProgram", "UpdateRow", "WriteItem",
    "ScheduleRunner", "run_schedule",
]
