"""Oracle-style Read Consistency: statement-level snapshots, first-writer-wins.

Section 4.3 of the paper: "Oracle Read Consistency isolation gives each SQL
statement the most recent committed database value at the time the statement
began ... The members of a cursor set are as of the time of the Open Cursor
... Row inserts, updates, and deletes are covered by Write locks to give a
first-writer-wins rather than a first-committer-wins policy.  Read Consistency
is stronger than READ COMMITTED (it disallows cursor lost updates (P4C)) but
allows non-repeatable reads, general lost updates (P4), and read skew (A5A)."

The implementation mirrors that description:

* Every read/select uses the *latest committed* state at the moment the
  statement runs (so two reads in one transaction can see different snapshots,
  unlike Snapshot Isolation's transaction-wide snapshot).
* Writes take long-duration exclusive locks through a
  :class:`~repro.locking.lock_manager.LockManager` — first-writer-wins — and
  are buffered until commit.
* A cursor remembers the timestamp at which it was opened; updating the
  current row of a cursor fails (aborting the transaction) when the row has
  been committed by someone else since the cursor's snapshot, which is what
  rules out P4C while leaving plain P4 possible.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from ..core.isolation import IsolationLevelName
from ..engine.interface import (
    OP_ABORT,
    OP_COMMIT,
    OP_READ,
    OP_WRITE,
    Engine,
    EngineError,
    OpResult,
    TransactionState,
)
from ..locking.lock_manager import LockManager
from ..locking.modes import LockDuration, LockMode, RowTarget
from ..storage.database import Database
from ..storage.predicates import Predicate
from ..storage.rows import Row
from .timestamps import TimestampAuthority
from .version_store import VersionStore

__all__ = ["ReadConsistencyEngine"]

_DELETED = object()


@dataclass
class _ReadConsistencyTxn:
    item_writes: Dict[str, Any] = field(default_factory=dict)
    row_writes: Dict[Tuple[str, str], Any] = field(default_factory=dict)
    cursors: Dict[str, "_ConsistentCursor"] = field(default_factory=dict)


@dataclass
class _ConsistentCursor:
    items: List[str]
    open_ts: int
    position: int = -1

    @property
    def current_item(self) -> Optional[str]:
        if 0 <= self.position < len(self.items):
            return self.items[self.position]
        return None


class ReadConsistencyEngine(Engine):
    """Statement-level multiversion reads with first-writer-wins write locks."""

    level = IsolationLevelName.ORACLE_READ_CONSISTENCY
    name = "Oracle Read Consistency"
    supports_checkpoints = True

    def __init__(self, database: Database,
                 authority: Optional[TimestampAuthority] = None):
        super().__init__(database)
        self.store = VersionStore(database)
        self.clock = authority or TimestampAuthority()
        self.locks = LockManager()
        self._txns: Dict[int, _ReadConsistencyTxn] = {}

    # -- lifecycle -------------------------------------------------------------------

    def begin(self, txn: int) -> None:
        super().begin(txn)
        self._txns[txn] = _ReadConsistencyTxn()

    def _txn_state(self, txn: int) -> _ReadConsistencyTxn:
        try:
            return self._txns[txn]
        except KeyError:
            raise EngineError(f"unknown transaction T{txn}") from None

    def blocking_version(self) -> int:
        # Only write-lock conflicts block here; reads never do.  Lock-table
        # changes and commit installs go hand in hand (commit releases the
        # writer's locks), so the table version covers blocked outcomes.
        return self.locks.version

    def blocking_version_for(self, item: Optional[str]) -> int:
        # A blocked write waits only for write locks on its own item.
        locks = self.locks
        return locks.version_for(item) if item is not None else locks.version

    # -- compiled-kernel entry point -----------------------------------------------------

    def apply_step(self, opcode: int, txn: int, item: Optional[str] = None,
                   value: Any = None) -> OpResult:
        """Fused fast path of the compiled step kernel.

        Byte-equal to the stepwise :meth:`read` / :meth:`write` /
        :meth:`commit` / :meth:`abort`, including the write-lock table's
        ``version`` accounting (writes go through the same
        :meth:`LockManager.request_item` arithmetic as ``request``).
        """
        if opcode == OP_ABORT:
            # abort() tolerates already-terminated transactions (returns OK).
            return self.abort(txn, reason="program abort")
        if self._states.get(txn) is not TransactionState.ACTIVE:
            guard = self._require_active(txn)
            if guard is not None:
                return guard
        state = self._txns[txn]
        if opcode == OP_READ:
            writes = state.item_writes
            if item in writes:
                return OpResult.ok(writes[item])
            read_value, version = self.store.read_item(item, self.clock.now())
            return OpResult.ok(read_value, version=version)
        if opcode == OP_WRITE:
            result = self.locks.request_item(txn, item, LockMode.EXCLUSIVE,
                                             LockDuration.LONG)
            if not result.granted:
                return OpResult.blocked(result.blockers,
                                        reason=f"waiting for write lock on {item}")
            state.item_writes[item] = value
            return OpResult.ok(value)
        if opcode == OP_COMMIT:
            return self.commit(txn)
        return super().apply_step(opcode, txn, item, value)

    # -- reads: statement-level snapshots ------------------------------------------------

    def read(self, txn: int, item: str) -> OpResult:
        guard = self._require_active(txn)
        if guard is not None:
            return guard
        state = self._txn_state(txn)
        if item in state.item_writes:
            return OpResult.ok(state.item_writes[item])
        value, version = self.store.read_item(item, self.clock.now())
        return OpResult.ok(value, version=version)

    def select(self, txn: int, predicate: Predicate) -> OpResult:
        guard = self._require_active(txn)
        if guard is not None:
            return guard
        state = self._txn_state(txn)
        statement_ts = self.clock.now()
        rows = {row.key: row for row in self.store.visible_rows(predicate.table, statement_ts)}
        for (table, key), pending in state.row_writes.items():
            if table != predicate.table:
                continue
            if pending is _DELETED:
                rows.pop(key, None)
            else:
                rows[key] = pending.copy()
        matching = [row for _, row in sorted(rows.items()) if predicate.matches(row)]
        return OpResult.ok(matching)

    # -- writes: first-writer-wins via long write locks -------------------------------------

    def _lock_item(self, txn: int, item: str) -> Optional[OpResult]:
        target = self.locks.item_target(item)
        result = self.locks.request(txn, target, LockMode.EXCLUSIVE,
                                    LockDuration.LONG)
        if not result.granted:
            return OpResult.blocked(result.blockers,
                                    reason=f"waiting for write lock on {item}")
        return None

    def _lock_row(self, txn: int, table: str, key: str,
                  before: Optional[Row], after: Optional[Row]) -> Optional[OpResult]:
        target = RowTarget(table, key, before=before, after=after)
        result = self.locks.request(txn, target, LockMode.EXCLUSIVE, LockDuration.LONG)
        if not result.granted:
            return OpResult.blocked(result.blockers,
                                    reason=f"waiting for write lock on {table}/{key}")
        return None

    def write(self, txn: int, item: str, value: Any) -> OpResult:
        guard = self._require_active(txn)
        if guard is not None:
            return guard
        blocked = self._lock_item(txn, item)
        if blocked is not None:
            return blocked
        self._txn_state(txn).item_writes[item] = value
        return OpResult.ok(value)

    def insert(self, txn: int, table: str, row: Row) -> OpResult:
        guard = self._require_active(txn)
        if guard is not None:
            return guard
        state = self._txn_state(txn)
        existing = self.store.visible_row(table, row.key, self.clock.now())
        if existing is not None or (table, row.key) in state.row_writes:
            return OpResult.aborted(f"duplicate key {row.key!r} in table {table!r}")
        blocked = self._lock_row(txn, table, row.key, before=None, after=row)
        if blocked is not None:
            return blocked
        state.row_writes[(table, row.key)] = row.copy()
        return OpResult.ok(value=row.copy(), item=f"{table}/{row.key}")

    def update_row(self, txn: int, table: str, key: str, changes: Dict[str, Any]) -> OpResult:
        guard = self._require_active(txn)
        if guard is not None:
            return guard
        state = self._txn_state(txn)
        base = state.row_writes.get((table, key))
        if base is _DELETED:
            return OpResult.aborted(f"row {key!r} deleted by this transaction")
        if base is None:
            base = self.store.visible_row(table, key, self.clock.now())
        if base is None:
            return OpResult.aborted(f"no row {key!r} visible in table {table!r}")
        updated = base.updated(**changes)
        blocked = self._lock_row(txn, table, key, before=base, after=updated)
        if blocked is not None:
            return blocked
        state.row_writes[(table, key)] = updated
        return OpResult.ok(value=updated, item=f"{table}/{key}")

    def delete_row(self, txn: int, table: str, key: str) -> OpResult:
        guard = self._require_active(txn)
        if guard is not None:
            return guard
        state = self._txn_state(txn)
        base = state.row_writes.get((table, key))
        if base is None:
            base = self.store.visible_row(table, key, self.clock.now())
        if base is None or base is _DELETED:
            return OpResult.aborted(f"no row {key!r} visible in table {table!r}")
        blocked = self._lock_row(txn, table, key, before=base, after=None)
        if blocked is not None:
            return blocked
        state.row_writes[(table, key)] = _DELETED
        return OpResult.ok(item=f"{table}/{key}")

    # -- cursors: members are as of the Open Cursor ---------------------------------------------

    def open_cursor(self, txn: int, cursor: str, items: List[str]) -> OpResult:
        guard = self._require_active(txn)
        if guard is not None:
            return guard
        if not items:
            return OpResult.aborted("cannot open a cursor over no items")
        self._txn_state(txn).cursors[cursor] = _ConsistentCursor(
            list(items), open_ts=self.clock.now())
        return OpResult.ok()

    def fetch(self, txn: int, cursor: str) -> OpResult:
        guard = self._require_active(txn)
        if guard is not None:
            return guard
        state = self._txn_state(txn)
        cursor_state = self._cursor(state, cursor)
        if cursor_state.position + 1 >= len(cursor_state.items):
            return OpResult.aborted(f"cursor {cursor!r} has no more items")
        cursor_state.position += 1
        item = cursor_state.items[cursor_state.position]
        if item in state.item_writes:
            return OpResult.ok(state.item_writes[item], item=item)
        value, version = self.store.read_item(item, cursor_state.open_ts)
        return OpResult.ok(value, version=version, item=item)

    def cursor_update(self, txn: int, cursor: str, value: Any) -> OpResult:
        guard = self._require_active(txn)
        if guard is not None:
            return guard
        state = self._txn_state(txn)
        cursor_state = self._cursor(state, cursor)
        item = cursor_state.current_item
        if item is None:
            return OpResult.aborted(f"cursor {cursor!r} is not positioned on a row")
        if self.store.item_modified_since(item, cursor_state.open_ts):
            reason = (f"cursor update conflict: {item} changed since the cursor "
                      f"opened (write covered by first-writer-wins)")
            self._mark_aborted(txn, reason)
            self.locks.release_all(txn)
            return OpResult.aborted(reason)
        blocked = self._lock_item(txn, item)
        if blocked is not None:
            return blocked
        state.item_writes[item] = value
        return OpResult.ok(value, item=item)

    def close_cursor(self, txn: int, cursor: str) -> OpResult:
        guard = self._require_active(txn)
        if guard is not None:
            return guard
        self._txn_state(txn).cursors.pop(cursor, None)
        return OpResult.ok()

    @staticmethod
    def _cursor(state: _ReadConsistencyTxn, cursor: str) -> _ConsistentCursor:
        try:
            return state.cursors[cursor]
        except KeyError:
            raise EngineError(f"no open cursor named {cursor!r}") from None

    # -- termination ------------------------------------------------------------------------------

    def commit(self, txn: int) -> OpResult:
        guard = self._require_active(txn)
        if guard is not None:
            return guard
        state = self._txn_state(txn)
        commit_ts = self.clock.next_commit()
        for item, value in state.item_writes.items():
            self.store.install_item(item, value, commit_ts, txn)
            self.database.set_item(item, value)
        for (table, key), pending in state.row_writes.items():
            live_table = self.database.table(table)
            if pending is _DELETED:
                self.store.install_row(table, key, None, commit_ts, txn)
                if live_table.has(key):
                    live_table.delete(key)
            else:
                self.store.install_row(table, key, pending, commit_ts, txn)
                live_table.upsert(pending.copy())
        self.locks.release_all(txn)
        self._mark_committed(txn)
        return OpResult.ok()

    def abort(self, txn: int, reason: str = "voluntary abort") -> OpResult:
        if not self.is_active(txn):
            return OpResult.ok()
        self.locks.release_all(txn)
        self._mark_aborted(txn, reason)
        return OpResult.ok()

    # -- checkpoint / restore --------------------------------------------------------------------

    def checkpoint(self):
        return (
            self._base_checkpoint(),
            self.database.checkpoint(),
            self.store.checkpoint(),
            self.clock.checkpoint(),
            self.locks.checkpoint(),
            {
                txn: (dict(state.item_writes), dict(state.row_writes),
                      {name: (tuple(cursor.items), cursor.open_ts, cursor.position)
                       for name, cursor in state.cursors.items()})
                for txn, state in self._txns.items()
            },
        )

    def restore(self, token) -> None:
        base, database, store, clock, locks, txns = token
        self._base_restore(base)
        self.database.restore_checkpoint(database)
        self.store.restore(store)
        self.clock.restore(clock)
        self.locks.restore(locks)
        self._txns = {
            txn: _ReadConsistencyTxn(
                item_writes=dict(item_writes),
                row_writes=dict(row_writes),
                cursors={name: _ConsistentCursor(list(items), open_ts, position)
                         for name, (items, open_ts, position) in cursors.items()},
            )
            for txn, (item_writes, row_writes, cursors) in txns.items()
        }
