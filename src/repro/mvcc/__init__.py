"""Multiversion concurrency control: Snapshot Isolation and Read Consistency."""

from .timestamps import TimestampAuthority
from .version_store import ItemVersion, RowVersion, VersionStore
from .snapshot import SnapshotIsolationEngine
from .read_consistency import ReadConsistencyEngine

__all__ = [
    "TimestampAuthority",
    "ItemVersion", "RowVersion", "VersionStore",
    "SnapshotIsolationEngine",
    "ReadConsistencyEngine",
]
