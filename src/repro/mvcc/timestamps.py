"""Timestamp authority for the multiversion engines.

Section 4.2: a Snapshot Isolation transaction reads from the committed state
as of its *Start-Timestamp* and, when it is ready to commit, receives a
*Commit-Timestamp* "larger than any existing Start-Timestamp or
Commit-Timestamp".  A single monotonic counter provides both: the current
value is the latest commit timestamp (new transactions adopt it as their start
timestamp), and committing bumps it.
"""

from __future__ import annotations

__all__ = ["TimestampAuthority"]


class TimestampAuthority:
    """A monotonic logical clock shared by the transactions of one engine."""

    def __init__(self, start: int = 0) -> None:
        self._clock = start

    def now(self) -> int:
        """The latest commit timestamp issued so far (0 = initial state)."""
        return self._clock

    def next_commit(self) -> int:
        """Issue a new commit timestamp, larger than everything issued before."""
        self._clock += 1
        return self._clock

    def checkpoint(self) -> int:
        """The current clock value, for :meth:`restore`."""
        return self._clock

    def restore(self, clock: int) -> None:
        """Reset the clock to a previously checkpointed value."""
        self._clock = clock

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<TimestampAuthority now={self._clock}>"
