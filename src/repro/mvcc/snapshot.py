"""Snapshot Isolation: start-timestamp snapshots plus First-Committer-Wins.

Section 4.2 of the paper defines the level this engine implements:

* Every transaction reads from the snapshot of *committed* data as of its
  Start-Timestamp; its own writes are reflected in that snapshot so it reads
  them back on re-access.
* Reads never block ("a transaction running in Snapshot Isolation is never
  blocked attempting a read").
* At commit the transaction receives a Commit-Timestamp larger than any
  existing start or commit timestamp, and commits only if no other transaction
  with a commit timestamp inside its execution interval wrote data it also
  wrote — **First-Committer-Wins**, which prevents Lost Updates (P4).

The constructor flag ``first_committer_wins`` exists for the ablation
benchmark: turning it off demonstrates that the lost-update protection really
does come from that rule and not from the snapshot reads.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from ..core.isolation import IsolationLevelName
from ..engine.interface import (
    OP_ABORT,
    OP_COMMIT,
    OP_READ,
    OP_WRITE,
    Engine,
    EngineError,
    OpResult,
    TransactionState,
)
from ..storage.database import Database
from ..storage.predicates import Predicate
from ..storage.rows import Row
from .timestamps import TimestampAuthority
from .version_store import VersionStore

__all__ = ["SnapshotIsolationEngine"]

#: Sentinel marking a row as deleted in a transaction's private write set.
_DELETED = object()


@dataclass
class _SnapshotTxn:
    """Per-transaction state: snapshot timestamp and private write sets."""

    start_ts: int
    item_writes: Dict[str, Any] = field(default_factory=dict)
    row_writes: Dict[Tuple[str, str], Any] = field(default_factory=dict)
    cursors: Dict[str, "_SnapshotCursor"] = field(default_factory=dict)


@dataclass
class _SnapshotCursor:
    items: List[str]
    position: int = -1

    @property
    def current_item(self) -> Optional[str]:
        if 0 <= self.position < len(self.items):
            return self.items[self.position]
        return None


class SnapshotIsolationEngine(Engine):
    """Multiversion engine implementing Snapshot Isolation."""

    level = IsolationLevelName.SNAPSHOT_ISOLATION
    supports_checkpoints = True

    #: Immutable per-engine configuration, deliberately outside the
    #: checkpoint token (audited by repolint's checkpoint-completeness check).
    _checkpoint_stable = ("first_committer_wins", "name")

    def __init__(self, database: Database,
                 authority: Optional[TimestampAuthority] = None,
                 first_committer_wins: bool = True):
        super().__init__(database)
        self.store = VersionStore(database)
        self.clock = authority or TimestampAuthority()
        self.first_committer_wins = first_committer_wins
        self.name = "Snapshot Isolation" if first_committer_wins \
            else "Snapshot reads without First-Committer-Wins"
        self._txns: Dict[int, _SnapshotTxn] = {}
        #: Commit-time aborts caused by First-Committer-Wins (for benchmarks).
        self.fcw_aborts = 0

    # -- lifecycle -----------------------------------------------------------------

    def begin(self, txn: int) -> None:
        super().begin(txn)
        self._txns[txn] = _SnapshotTxn(start_ts=self.clock.now())

    def start_timestamp(self, txn: int) -> int:
        """The snapshot timestamp of an active or finished transaction."""
        return self._txn_state(txn).start_ts

    def _txn_state(self, txn: int) -> _SnapshotTxn:
        try:
            return self._txns[txn]
        except KeyError:
            raise EngineError(f"unknown transaction T{txn}") from None

    # -- compiled-kernel entry point -----------------------------------------------------

    def apply_step(self, opcode: int, txn: int, item: Optional[str] = None,
                   value: Any = None) -> OpResult:
        """Fused fast path of the compiled step kernel.

        Byte-equal to the stepwise :meth:`read` / :meth:`write` /
        :meth:`commit` / :meth:`abort`, with the active guard and
        per-transaction state lookup flattened into one pass.
        """
        if opcode == OP_ABORT:
            # abort() tolerates already-terminated transactions (returns OK).
            return self.abort(txn, reason="program abort")
        if self._states.get(txn) is not TransactionState.ACTIVE:
            guard = self._require_active(txn)
            if guard is not None:
                return guard
        state = self._txns[txn]
        if opcode == OP_READ:
            writes = state.item_writes
            if item in writes:
                return OpResult.ok(writes[item])
            read_value, version = self.store.read_item(item, state.start_ts)
            return OpResult.ok(read_value, version=version)
        if opcode == OP_WRITE:
            state.item_writes[item] = value
            return OpResult.ok(value)
        if opcode == OP_COMMIT:
            if self.first_committer_wins:
                conflict = self._first_committer_conflict(state)
                if conflict is not None:
                    self.fcw_aborts += 1
                    self._mark_aborted(txn, conflict)
                    return OpResult.aborted(conflict)
            commit_ts = self.clock.next_commit()
            self._install(txn, state, commit_ts)
            self._mark_committed(txn)
            return OpResult.ok()
        return super().apply_step(opcode, txn, item, value)

    # -- reads (never block) ------------------------------------------------------------

    def read(self, txn: int, item: str) -> OpResult:
        guard = self._require_active(txn)
        if guard is not None:
            return guard
        state = self._txn_state(txn)
        if item in state.item_writes:
            return OpResult.ok(state.item_writes[item])
        value, version = self.store.read_item(item, state.start_ts)
        return OpResult.ok(value, version=version)

    def select(self, txn: int, predicate: Predicate) -> OpResult:
        guard = self._require_active(txn)
        if guard is not None:
            return guard
        state = self._txn_state(txn)
        rows = {row.key: row for row in self.store.visible_rows(predicate.table, state.start_ts)}
        for (table, key), pending in state.row_writes.items():
            if table != predicate.table:
                continue
            if pending is _DELETED:
                rows.pop(key, None)
            else:
                rows[key] = pending.copy()
        matching = [row for _, row in sorted(rows.items()) if predicate.matches(row)]
        return OpResult.ok(matching)

    # -- writes (buffered until commit) ----------------------------------------------------

    def write(self, txn: int, item: str, value: Any) -> OpResult:
        guard = self._require_active(txn)
        if guard is not None:
            return guard
        self._txn_state(txn).item_writes[item] = value
        return OpResult.ok(value)

    def insert(self, txn: int, table: str, row: Row) -> OpResult:
        guard = self._require_active(txn)
        if guard is not None:
            return guard
        state = self._txn_state(txn)
        existing = self.store.visible_row(table, row.key, state.start_ts)
        pending = state.row_writes.get((table, row.key))
        if (existing is not None and pending is not _DELETED) or (
                pending is not None and pending is not _DELETED):
            return OpResult.aborted(f"duplicate key {row.key!r} in table {table!r}")
        state.row_writes[(table, row.key)] = row.copy()
        return OpResult.ok(value=row.copy(), item=f"{table}/{row.key}")

    def update_row(self, txn: int, table: str, key: str, changes: Dict[str, Any]) -> OpResult:
        guard = self._require_active(txn)
        if guard is not None:
            return guard
        state = self._txn_state(txn)
        base = state.row_writes.get((table, key))
        if base is _DELETED:
            return OpResult.aborted(f"row {key!r} deleted by this transaction")
        if base is None:
            base = self.store.visible_row(table, key, state.start_ts)
        if base is None:
            return OpResult.aborted(f"no row {key!r} visible in table {table!r}")
        updated = base.updated(**changes)
        state.row_writes[(table, key)] = updated
        return OpResult.ok(value=updated, item=f"{table}/{key}")

    def delete_row(self, txn: int, table: str, key: str) -> OpResult:
        guard = self._require_active(txn)
        if guard is not None:
            return guard
        state = self._txn_state(txn)
        visible = state.row_writes.get((table, key))
        if visible is None:
            visible = self.store.visible_row(table, key, state.start_ts)
        if visible is None or visible is _DELETED:
            return OpResult.aborted(f"no row {key!r} visible in table {table!r}")
        state.row_writes[(table, key)] = _DELETED
        return OpResult.ok(item=f"{table}/{key}")

    # -- cursors -------------------------------------------------------------------------------

    def open_cursor(self, txn: int, cursor: str, items: List[str]) -> OpResult:
        guard = self._require_active(txn)
        if guard is not None:
            return guard
        if not items:
            return OpResult.aborted("cannot open a cursor over no items")
        self._txn_state(txn).cursors[cursor] = _SnapshotCursor(list(items))
        return OpResult.ok()

    def fetch(self, txn: int, cursor: str) -> OpResult:
        guard = self._require_active(txn)
        if guard is not None:
            return guard
        state = self._txn_state(txn)
        cursor_state = self._cursor(state, cursor)
        if cursor_state.position + 1 >= len(cursor_state.items):
            return OpResult.aborted(f"cursor {cursor!r} has no more items")
        cursor_state.position += 1
        item = cursor_state.items[cursor_state.position]
        if item in state.item_writes:
            return OpResult.ok(state.item_writes[item], item=item)
        value, version = self.store.read_item(item, state.start_ts)
        return OpResult.ok(value, version=version, item=item)

    def cursor_update(self, txn: int, cursor: str, value: Any) -> OpResult:
        guard = self._require_active(txn)
        if guard is not None:
            return guard
        state = self._txn_state(txn)
        item = self._cursor(state, cursor).current_item
        if item is None:
            return OpResult.aborted(f"cursor {cursor!r} is not positioned on a row")
        state.item_writes[item] = value
        return OpResult.ok(value, item=item)

    def close_cursor(self, txn: int, cursor: str) -> OpResult:
        guard = self._require_active(txn)
        if guard is not None:
            return guard
        self._txn_state(txn).cursors.pop(cursor, None)
        return OpResult.ok()

    @staticmethod
    def _cursor(state: _SnapshotTxn, cursor: str) -> _SnapshotCursor:
        try:
            return state.cursors[cursor]
        except KeyError:
            raise EngineError(f"no open cursor named {cursor!r}") from None

    # -- termination --------------------------------------------------------------------------

    def commit(self, txn: int) -> OpResult:
        guard = self._require_active(txn)
        if guard is not None:
            return guard
        state = self._txn_state(txn)
        if self.first_committer_wins:
            conflict = self._first_committer_conflict(state)
            if conflict is not None:
                self.fcw_aborts += 1
                self._mark_aborted(txn, conflict)
                return OpResult.aborted(conflict)
        commit_ts = self.clock.next_commit()
        self._install(txn, state, commit_ts)
        self._mark_committed(txn)
        return OpResult.ok()

    def abort(self, txn: int, reason: str = "voluntary abort") -> OpResult:
        if not self.is_active(txn):
            return OpResult.ok()
        self._mark_aborted(txn, reason)
        return OpResult.ok()

    # -- checkpoint / restore --------------------------------------------------------------------

    def checkpoint(self):
        return (
            self._base_checkpoint(),
            self.database.checkpoint(),
            self.store.checkpoint(),
            self.clock.checkpoint(),
            self.fcw_aborts,
            {
                txn: (state.start_ts, dict(state.item_writes), dict(state.row_writes),
                      {name: (tuple(cursor.items), cursor.position)
                       for name, cursor in state.cursors.items()})
                for txn, state in self._txns.items()
            },
        )

    def restore(self, token) -> None:
        base, database, store, clock, fcw_aborts, txns = token
        self._base_restore(base)
        self.database.restore_checkpoint(database)
        self.store.restore(store)
        self.clock.restore(clock)
        self.fcw_aborts = fcw_aborts
        self._txns = {
            txn: _SnapshotTxn(
                start_ts=start_ts,
                item_writes=dict(item_writes),
                row_writes=dict(row_writes),
                cursors={name: _SnapshotCursor(list(items), position)
                         for name, (items, position) in cursors.items()},
            )
            for txn, (start_ts, item_writes, row_writes, cursors) in txns.items()
        }

    # -- helpers ---------------------------------------------------------------------------------

    def _first_committer_conflict(self, state: _SnapshotTxn) -> Optional[str]:
        """First-Committer-Wins: another transaction committed a write to
        something this transaction also wrote, after this transaction started."""
        for item in state.item_writes:
            if self.store.item_modified_since(item, state.start_ts):
                return (f"first-committer-wins: {item} was committed by another "
                        f"transaction after this transaction's snapshot")
        for table, key in state.row_writes:
            if self.store.row_modified_since(table, key, state.start_ts):
                return (f"first-committer-wins: row {table}/{key} was committed by "
                        f"another transaction after this transaction's snapshot")
        return None

    def _install(self, txn: int, state: _SnapshotTxn, commit_ts: int) -> None:
        """Install the write sets as committed versions and sync the database tip."""
        for item, value in state.item_writes.items():
            self.store.install_item(item, value, commit_ts, txn)
            self.database.set_item(item, value)
        for (table, key), pending in state.row_writes.items():
            live_table = self.database.table(table)
            if pending is _DELETED:
                self.store.install_row(table, key, None, commit_ts, txn)
                if live_table.has(key):
                    live_table.delete(key)
            else:
                self.store.install_row(table, key, pending, commit_ts, txn)
                live_table.upsert(pending.copy())
