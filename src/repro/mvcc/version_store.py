"""The multiversion store: committed versions of items and rows, by timestamp.

"At any time, each data item might have multiple versions, created by active
and committed transactions.  Reads by a transaction must choose the
appropriate version." (Section 4.2.)  This store keeps, for every named item
and every table row, the list of *committed* versions in commit-timestamp
order; uncommitted writes live in the owning transaction's private write set
inside the engine and are only installed here at commit.

The store is initialized from a :class:`~repro.storage.database.Database`
snapshot at timestamp 0, and the engines keep the database's "committed tip"
in sync when they install new versions, so that constraint checks and final-
state assertions work uniformly across locking and multiversion engines.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from ..storage.database import Database
from ..storage.rows import Row

__all__ = ["ItemVersion", "RowVersion", "VersionStore"]


@dataclass(frozen=True)
class ItemVersion:
    """One committed version of a named item."""

    value: Any
    commit_ts: int
    txn: Optional[int]  # None for the initial database state


@dataclass(frozen=True)
class RowVersion:
    """One committed version of a table row (``row is None`` means deleted/absent)."""

    row: Optional[Row]
    commit_ts: int
    txn: Optional[int]


class VersionStore:
    """Committed version chains for items and rows."""

    def __init__(self, database: Database):
        self._items: Dict[str, List[ItemVersion]] = {}
        self._rows: Dict[Tuple[str, str], List[RowVersion]] = {}
        self._tables: Dict[str, set] = {}
        for name, value in database.items().items():
            self._items[name] = [ItemVersion(value, 0, None)]
        for table_name, table in database.tables().items():
            self._tables[table_name] = set()
            for row in table:
                self._rows[(table_name, row.key)] = [RowVersion(row.copy(), 0, None)]
                self._tables[table_name].add(row.key)

    # -- items --------------------------------------------------------------------

    def read_item(self, item: str, as_of: int) -> Tuple[Any, Optional[int]]:
        """The value of an item visible at a timestamp, and its version index.

        Returns ``(None, None)`` when the item has no version visible at the
        timestamp (it never existed, or was created later).
        """
        versions = self._items.get(item)
        if versions is None:
            return None, None
        # Chains are appended in commit-timestamp order, so the visible
        # version (the last one with commit_ts <= as_of) is found fastest by
        # scanning from the newest end — usually the first probe.
        for index in range(len(versions) - 1, -1, -1):
            version = versions[index]
            if version.commit_ts <= as_of:
                return version.value, index
        return None, None

    def install_item(self, item: str, value: Any, commit_ts: int, txn: int) -> None:
        """Append a new committed version of an item."""
        self._items.setdefault(item, []).append(ItemVersion(value, commit_ts, txn))

    def item_modified_since(self, item: str, since_ts: int) -> bool:
        """True when some transaction committed a new version after ``since_ts``."""
        versions = self._items.get(item)
        # Ascending commit timestamps: any newer version implies the last is.
        return bool(versions) and versions[-1].commit_ts > since_ts

    def item_versions(self, item: str) -> List[ItemVersion]:
        """The full committed version chain of an item (oldest first)."""
        return list(self._items.get(item, []))

    # -- rows -----------------------------------------------------------------------

    def visible_row(self, table: str, key: str, as_of: int) -> Optional[Row]:
        """The row version visible at a timestamp (None when absent/deleted)."""
        versions = self._rows.get((table, key), [])
        visible: Optional[RowVersion] = None
        for version in versions:
            if version.commit_ts <= as_of:
                visible = version
        if visible is None or visible.row is None:
            return None
        return visible.row.copy()

    def visible_rows(self, table: str, as_of: int) -> List[Row]:
        """All rows of a table visible at a timestamp."""
        rows: List[Row] = []
        for key in sorted(self._tables.get(table, set())):
            row = self.visible_row(table, key, as_of)
            if row is not None:
                rows.append(row)
        return rows

    def install_row(self, table: str, key: str, row: Optional[Row],
                    commit_ts: int, txn: int) -> None:
        """Append a new committed row version (``row=None`` records a delete)."""
        stored = row.copy() if row is not None else None
        self._rows.setdefault((table, key), []).append(RowVersion(stored, commit_ts, txn))
        self._tables.setdefault(table, set()).add(key)

    def row_modified_since(self, table: str, key: str, since_ts: int) -> bool:
        """True when the row got a new committed version after ``since_ts``."""
        versions = self._rows.get((table, key))
        return bool(versions) and versions[-1].commit_ts > since_ts

    def row_keys(self, table: str) -> List[str]:
        """Every key that has ever had a version in the table."""
        return sorted(self._tables.get(table, set()))

    # -- checkpoints -----------------------------------------------------------------

    def checkpoint(self) -> Tuple:
        """A truncation token: per-chain lengths plus the table key sets.

        Version chains are append-only (``install_item`` / ``install_row``
        only ever append immutable version records), so a checkpoint needs no
        copies of the versions themselves — just how long each chain was.
        Restoring truncates the chains back; this is only sound when rolling
        the store *backwards* along its own execution path, which is exactly
        the schedule explorer's checkpoint discipline.
        """
        return (
            {item: len(versions) for item, versions in self._items.items()},
            {key: len(versions) for key, versions in self._rows.items()},
            {table: frozenset(keys) for table, keys in self._tables.items()},
        )

    def restore(self, token: Tuple) -> None:
        """Truncate every chain back to a :meth:`checkpoint` token (reusable)."""
        item_lengths, row_lengths, tables = token
        for item in [item for item in self._items if item not in item_lengths]:
            del self._items[item]
        for item, length in item_lengths.items():
            versions = self._items[item]
            if len(versions) > length:
                del versions[length:]
        for key in [key for key in self._rows if key not in row_lengths]:
            del self._rows[key]
        for key, length in row_lengths.items():
            versions = self._rows[key]
            if len(versions) > length:
                del versions[length:]
        self._tables = {table: set(keys) for table, keys in tables.items()}
