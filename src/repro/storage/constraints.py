"""Database constraints: the invariant predicate C(DB) of Section 4.2.

The paper motivates Dirty Write (P0) and Write Skew (A5B) through constraints
between data items: "Individual databases satisfy constraints over multiple
data items ... Together they form the database invariant constraint predicate,
C(DB)."  A transaction that reads or produces a state violating C(DB) suffers
a constraint-violation anomaly (called *inconsistent analysis* in [DAT]).

This module provides a small constraint framework plus factories for the
constraints used by the paper's scenarios: ``x == y`` (the dirty-write
example), ``x + y == total`` (the bank-transfer histories H1/H2),
``x + y >= bound`` (the write-skew history H5), and predicate-extent/count
consistency (the phantom history H3 and the task-hours example).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Sequence

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .database import Database

__all__ = [
    "Constraint",
    "items_equal",
    "items_sum_equals",
    "items_sum_at_least",
    "predicate_count_matches_item",
    "predicate_sum_at_most",
]

Check = Callable[["Database"], bool]


@dataclass(frozen=True)
class Constraint:
    """A named invariant over the whole database."""

    name: str
    check: Check
    description: str = ""

    def holds(self, database: "Database") -> bool:
        """True when the database currently satisfies the constraint."""
        return bool(self.check(database))

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.name


def items_equal(first: str, second: str) -> Constraint:
    """``first == second`` — the constraint of the paper's P0 example."""
    return Constraint(
        name=f"{first} == {second}",
        check=lambda db: db.get_item(first) == db.get_item(second),
        description="Dirty writes can interleave the two updates and break equality.",
    )


def items_sum_equals(items: Sequence[str], total: float) -> Constraint:
    """``sum(items) == total`` — the bank-balance invariant of H1/H2."""
    names = tuple(items)
    return Constraint(
        name=f"sum({', '.join(names)}) == {total}",
        check=lambda db: sum(db.get_item(name, 0) for name in names) == total,
        description="Transfers preserve the total; inconsistent analysis sees otherwise.",
    )


def items_sum_at_least(items: Sequence[str], bound: float) -> Constraint:
    """``sum(items) >= bound`` — the write-skew invariant of H5 (bound 0)."""
    names = tuple(items)
    return Constraint(
        name=f"sum({', '.join(names)}) >= {bound}",
        check=lambda db: sum(db.get_item(name, 0) for name in names) >= bound,
        description="Each transaction preserves the bound alone; write skew breaks it.",
    )


def predicate_count_matches_item(predicate, counter_item: str) -> Constraint:
    """``count(rows matching predicate) == counter_item`` — the H3 invariant.

    History H3 keeps a separate count ``z`` of active employees; the phantom
    insert updates the count but T1's earlier predicate read no longer agrees
    with it.
    """
    return Constraint(
        name=f"count({predicate.name}) == {counter_item}",
        check=lambda db: len(db.select(predicate)) == db.get_item(counter_item, 0),
        description="A materialized count must match the predicate's extent.",
    )


def predicate_sum_at_most(predicate, attribute: str, bound: float) -> Constraint:
    """``sum(attribute over rows matching predicate) <= bound``.

    This is the Section 4.2 task-hours constraint ("a set of job tasks
    determined by a predicate cannot have a sum of hours greater than 8")
    that Snapshot Isolation fails to protect, because two transactions can
    insert *different* rows and First-Committer-Wins never fires.
    """
    return Constraint(
        name=f"sum({attribute} over {predicate.name}) <= {bound}",
        check=lambda db: sum(
            row.get(attribute, 0) for row in db.select(predicate)
        ) <= bound,
        description="Disjoint inserts under SI can overshoot the bound (P3).",
    )
