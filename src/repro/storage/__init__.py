"""Storage substrate: items, rows, tables, predicates, constraints, recovery."""

from .rows import Row, Table
from .predicates import Predicate, attribute_equals, attribute_between, whole_table
from .constraints import (
    Constraint,
    items_equal,
    items_sum_at_least,
    items_sum_equals,
    predicate_count_matches_item,
    predicate_sum_at_most,
)
from .database import Database, DatabaseSnapshot
from .recovery import UndoLog, UndoRecord

__all__ = [
    "Row", "Table",
    "Predicate", "attribute_equals", "attribute_between", "whole_table",
    "Constraint", "items_equal", "items_sum_equals", "items_sum_at_least",
    "predicate_count_matches_item", "predicate_sum_at_most",
    "Database", "DatabaseSnapshot",
    "UndoLog", "UndoRecord",
]
