"""The simulated database *under test*: items, rows, tables, predicates,
constraints, recovery.

This is the storage substrate the paper's transactions operate on — the
thing whose isolation behaviour the repo measures.  Every read, write,
predicate evaluation, and undo that a schedule performs happens against
these structures, so this package is squarely *inside* the experiment.

**Not to be confused with** :mod:`repro.persist`, the campaign persistence
layer: that package durably records the *explorer's own* progress, results,
and caches (so campaigns resume and dedupe across runs) and sits entirely
*outside* the experiment — it can never affect what a schedule does here.
Rule of thumb: ``repro.storage`` is what transactions touch;
``repro.persist`` is what remembers the exploration.
"""

from .rows import Row, Table
from .predicates import Predicate, attribute_equals, attribute_between, whole_table
from .constraints import (
    Constraint,
    items_equal,
    items_sum_at_least,
    items_sum_equals,
    predicate_count_matches_item,
    predicate_sum_at_most,
)
from .database import Database, DatabaseSnapshot
from .recovery import UndoLog, UndoRecord

__all__ = [
    "Row", "Table",
    "Predicate", "attribute_equals", "attribute_between", "whole_table",
    "Constraint", "items_equal", "items_sum_equals", "items_sum_at_least",
    "predicate_count_matches_item", "predicate_sum_at_most",
    "Database", "DatabaseSnapshot",
    "UndoLog", "UndoRecord",
]
