"""Rows and tables: the data the predicate scenarios operate on.

The paper's broad reading of "data item" (Section 2.1, following [EGLT])
covers table rows as well as whole tables; its predicate phenomena (P3/A3)
need a notion of rows that satisfy a ``<search condition>``, including
*phantom* rows not currently present.  This module provides a small in-memory
row/table model: rows are dictionaries of attributes addressed by a key, and
tables are ordered collections of rows.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field
from typing import Any, Dict, Iterable, Iterator, List, Optional

__all__ = ["Row", "Table"]


@dataclass
class Row:
    """A table row: a key plus a mutable attribute mapping.

    Rows compare equal by value (key and attributes), which makes snapshot
    comparison in tests straightforward.
    """

    key: str
    attributes: Dict[str, Any] = field(default_factory=dict)

    def get(self, attribute: str, default: Any = None) -> Any:
        """Read one attribute (returning ``default`` when absent)."""
        return self.attributes.get(attribute, default)

    def set(self, attribute: str, value: Any) -> None:
        """Write one attribute in place."""
        self.attributes[attribute] = value

    def updated(self, **changes: Any) -> "Row":
        """A copy of the row with some attributes changed."""
        merged = dict(self.attributes)
        merged.update(changes)
        return Row(self.key, merged)

    def copy(self) -> "Row":
        """A deep copy (attribute values are copied too)."""
        return Row(self.key, copy.deepcopy(self.attributes))

    def __getitem__(self, attribute: str) -> Any:
        return self.attributes[attribute]

    def __setitem__(self, attribute: str, value: Any) -> None:
        self.attributes[attribute] = value

    def __contains__(self, attribute: str) -> bool:
        return attribute in self.attributes


class Table:
    """An ordered collection of rows addressed by key."""

    def __init__(self, name: str, rows: Optional[Iterable[Row]] = None):
        self.name = name
        self._rows: Dict[str, Row] = {}
        for row in rows or ():
            self.insert(row)

    # -- mutation --------------------------------------------------------------

    def insert(self, row: Row) -> None:
        """Add a new row; the key must not already exist."""
        if row.key in self._rows:
            raise KeyError(f"duplicate key {row.key!r} in table {self.name!r}")
        self._rows[row.key] = row

    def upsert(self, row: Row) -> None:
        """Insert the row, replacing any existing row with the same key."""
        self._rows[row.key] = row

    def delete(self, key: str) -> Row:
        """Remove and return the row with the given key."""
        try:
            return self._rows.pop(key)
        except KeyError:
            raise KeyError(f"no row {key!r} in table {self.name!r}") from None

    def update(self, key: str, **changes: Any) -> Row:
        """Apply attribute changes to an existing row and return it."""
        row = self.get(key)
        if row is None:
            raise KeyError(f"no row {key!r} in table {self.name!r}")
        for attribute, value in changes.items():
            row.set(attribute, value)
        return row

    # -- access ----------------------------------------------------------------

    def get(self, key: str) -> Optional[Row]:
        """The row with the given key, or None."""
        return self._rows.get(key)

    def has(self, key: str) -> bool:
        """True when a row with the key exists."""
        return key in self._rows

    def rows(self) -> List[Row]:
        """All rows, in insertion order."""
        return list(self._rows.values())

    def keys(self) -> List[str]:
        """All row keys, in insertion order."""
        return list(self._rows.keys())

    def select(self, condition) -> List[Row]:
        """All rows satisfying a condition (callable ``row -> bool``)."""
        return [row for row in self._rows.values() if condition(row)]

    def __len__(self) -> int:
        return len(self._rows)

    def __iter__(self) -> Iterator[Row]:
        return iter(self._rows.values())

    def __contains__(self, key: str) -> bool:
        return key in self._rows

    def copy(self) -> "Table":
        """A deep copy of the table (rows are copied)."""
        return Table(self.name, (row.copy() for row in self._rows.values()))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Table {self.name!r} rows={len(self)}>"
