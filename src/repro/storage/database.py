"""The in-memory database: named items, tables of rows, and constraints.

This is the shared mutable state that the *locking* engines update in place
(with before-image recovery via :mod:`repro.storage.recovery`), and that the
*multiversion* engines treat as the committed tip of the version store.  It
deliberately stays small: named scalar items model the paper's ``x``, ``y``,
``z`` bank balances and counters, and tables of rows support the predicate
scenarios (employees, job tasks).
"""

from __future__ import annotations

import copy
from typing import Any, Dict, Iterable, List, Optional, Tuple

from .constraints import Constraint
from .predicates import Predicate
from .rows import Row, Table

__all__ = ["Database", "DatabaseSnapshot"]


class DatabaseSnapshot:
    """An immutable deep copy of a database state, for comparison in tests."""

    def __init__(self, items: Dict[str, Any], tables: Dict[str, Table]):
        self.items = items
        self.tables = tables

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, DatabaseSnapshot):
            return NotImplemented
        if self.items != other.items:
            return False
        if set(self.tables) != set(other.tables):
            return False
        for name, table in self.tables.items():
            mine = {row.key: row.attributes for row in table}
            theirs = {row.key: row.attributes for row in other.tables[name]}
            if mine != theirs:
                return False
        return True

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<DatabaseSnapshot items={self.items}>"


class Database:
    """Named data items + tables + registered constraints."""

    #: Constraints are registered at setup time and intentionally excluded
    #: from snapshot/restore, which covers data (items + tables) only.
    _checkpoint_stable = ("_constraints",)

    def __init__(self) -> None:
        self._items: Dict[str, Any] = {}
        self._tables: Dict[str, Table] = {}
        self._constraints: List[Constraint] = []

    # -- scalar items ------------------------------------------------------------

    def set_item(self, name: str, value: Any) -> None:
        """Create or overwrite a named data item."""
        self._items[name] = value

    def get_item(self, name: str, default: Any = None) -> Any:
        """Read a named data item (returning ``default`` when absent)."""
        return self._items.get(name, default)

    def has_item(self, name: str) -> bool:
        """True when the item exists."""
        return name in self._items

    def delete_item(self, name: str) -> None:
        """Remove a named data item."""
        self._items.pop(name, None)

    def items(self) -> Dict[str, Any]:
        """A copy of the item namespace."""
        return dict(self._items)

    # -- tables --------------------------------------------------------------------

    def create_table(self, name: str, rows: Optional[Iterable[Row]] = None) -> Table:
        """Create a table (error if it already exists)."""
        if name in self._tables:
            raise KeyError(f"table {name!r} already exists")
        table = Table(name, rows)
        self._tables[name] = table
        return table

    def table(self, name: str) -> Table:
        """Fetch a table by name."""
        try:
            return self._tables[name]
        except KeyError:
            raise KeyError(f"no table named {name!r}") from None

    def has_table(self, name: str) -> bool:
        """True when the table exists."""
        return name in self._tables

    def tables(self) -> Dict[str, Table]:
        """The table namespace (live references)."""
        return dict(self._tables)

    def select(self, predicate: Predicate) -> List[Row]:
        """All rows of the predicate's table currently satisfying it."""
        return self.table(predicate.table).select(predicate.matches)

    # -- constraints ------------------------------------------------------------------

    def add_constraint(self, constraint: Constraint) -> None:
        """Register an invariant that :meth:`constraints_hold` will check."""
        self._constraints.append(constraint)

    @property
    def constraints(self) -> List[Constraint]:
        """The registered constraints."""
        return list(self._constraints)

    def violated_constraints(self) -> List[Constraint]:
        """The registered constraints the current state violates."""
        return [c for c in self._constraints if not c.holds(self)]

    def constraints_hold(self) -> bool:
        """True when every registered constraint holds (C(DB) is TRUE)."""
        return not self.violated_constraints()

    # -- snapshots -----------------------------------------------------------------------

    def snapshot(self) -> DatabaseSnapshot:
        """A deep, immutable copy of the current state."""
        return DatabaseSnapshot(
            items=copy.deepcopy(self._items),
            tables={name: table.copy() for name, table in self._tables.items()},
        )

    def restore(self, snapshot: DatabaseSnapshot) -> None:
        """Replace the current state with a snapshot's."""
        self._items = copy.deepcopy(snapshot.items)
        self._tables = {name: table.copy() for name, table in snapshot.tables.items()}

    # -- checkpoints (cheap, for the prefix-sharing executor) ----------------------------

    def checkpoint(self) -> "Tuple[Dict[str, Any], Dict[str, Tuple[Row, ...]]]":
        """A cheap state token for :meth:`restore_checkpoint`.

        Unlike :meth:`snapshot`, item values are copied by reference: engines
        replace item values wholesale (``set_item``) and never mutate them in
        place, so sharing them is sound.  Rows *are* copied, because
        ``Table.update`` mutates rows in place.
        """
        return (
            dict(self._items),
            {name: tuple(row.copy() for row in table)
             for name, table in self._tables.items()},
        )

    def restore_checkpoint(self, token: "Tuple[Dict[str, Any], Dict[str, Tuple[Row, ...]]]") -> None:
        """Reset items and tables to a :meth:`checkpoint` token (reusable)."""
        items, tables = token
        self._items = dict(items)
        self._tables = {
            name: Table(name, (row.copy() for row in rows))
            for name, rows in tables.items()
        }

    def clone(self) -> "Database":
        """An independent copy of the database (constraints shared by reference)."""
        other = Database()
        other.restore(self.snapshot())
        for constraint in self._constraints:
            other.add_constraint(constraint)
        return other

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Database items={self._items} tables={list(self._tables)}>"
