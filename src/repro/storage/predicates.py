"""Predicates: ``<search condition>`` objects with phantom-aware coverage tests.

Section 2.3 of the paper: a predicate lock on a ``<search condition>`` is
effectively a lock on *all* data items satisfying the condition — including
phantom items not currently in the database but that would satisfy the
predicate if they were inserted, or if current items were updated to satisfy
it.  Two predicate locks conflict if one is a write lock and there is a
(possibly phantom) data item covered by both.

A :class:`Predicate` here is a named, callable row condition bound to a table.
Coverage of a concrete write is decided by testing the row's before-image and
after-image against the condition, which is exactly the "would cause to
satisfy" test the paper describes.  Predicate/predicate conflict falls back to
a conservative same-table test unless both predicates expose attribute
intervals that provably do not overlap.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Callable, Optional, Tuple

from .rows import Row

__all__ = ["Predicate", "attribute_equals", "attribute_between", "whole_table"]

Condition = Callable[[Row], bool]


@dataclass(frozen=True)
class Predicate:
    """A named search condition over one table.

    Attributes
    ----------
    name:
        A label used in histories and lock tables (``"P"`` in the paper).
    table:
        The table the predicate ranges over.
    condition:
        A callable deciding whether a row satisfies the predicate.
    attribute_ranges:
        Optional map from attribute name to an inclusive ``(low, high)``
        interval.  When two predicates on the same table both provide ranges
        for some common attribute and the intervals are disjoint, the
        predicates provably cannot cover a common (phantom) row, so their
        locks do not conflict.  Without this information, conflicts are
        decided conservatively (same table ⇒ possible overlap).
    """

    name: str
    table: str
    condition: Condition
    attribute_ranges: Tuple[Tuple[str, Tuple[Any, Any]], ...] = ()

    # -- row coverage -----------------------------------------------------------

    def matches(self, row: Row) -> bool:
        """True when the row currently satisfies the search condition."""
        return bool(self.condition(row))

    def covers_write(self, table: str, before: Optional[Row], after: Optional[Row]) -> bool:
        """True when a write is covered by this predicate's (phantom-aware) scope.

        ``before`` is the row image before the write (None for an insert) and
        ``after`` the image after it (None for a delete).  The write is covered
        when either image satisfies the condition — i.e. the write removes a
        row from the predicate's extent, adds one to it, or modifies one
        inside it.
        """
        if table != self.table:
            return False
        if before is not None and self.matches(before):
            return True
        if after is not None and self.matches(after):
            return True
        return False

    # -- predicate/predicate overlap ----------------------------------------------

    def may_overlap(self, other: "Predicate") -> bool:
        """Conservative test for a common (possibly phantom) covered item.

        Different tables never overlap.  If both predicates declare a range
        for some shared attribute and those ranges are disjoint, they cannot
        overlap.  Otherwise we must assume they may.
        """
        if self.table != other.table:
            return False
        mine = dict(self.attribute_ranges)
        theirs = dict(other.attribute_ranges)
        for attribute, (low, high) in mine.items():
            if attribute not in theirs:
                continue
            other_low, other_high = theirs[attribute]
            if high < other_low or other_high < low:
                return False
        return True

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.name}({self.table})"


def attribute_equals(name: str, table: str, attribute: str, value: Any) -> Predicate:
    """A predicate selecting rows whose ``attribute`` equals ``value``."""
    return Predicate(
        name=name,
        table=table,
        condition=lambda row: row.get(attribute) == value,
        attribute_ranges=((attribute, (value, value)),),
    )


def attribute_between(name: str, table: str, attribute: str,
                      low: Any, high: Any) -> Predicate:
    """A predicate selecting rows with ``low <= attribute <= high``."""
    return Predicate(
        name=name,
        table=table,
        condition=lambda row: (
            row.get(attribute) is not None and low <= row.get(attribute) <= high
        ),
        attribute_ranges=((attribute, (low, high)),),
    )


def whole_table(name: str, table: str) -> Predicate:
    """A predicate covering every (present or phantom) row of a table."""
    return Predicate(name=name, table=table, condition=lambda row: True)
