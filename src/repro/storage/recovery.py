"""Before-image recovery: the undo log that makes P0 (Dirty Write) matter.

Section 3 of the paper: "Without protection from P0, the system can't undo
updates by restoring before images."  The locking engines update the shared
database in place, so transaction rollback is implemented the classical way —
every write first records the before-image of the item or row it is about to
change, and an abort replays those images in reverse order.

The module also exposes :func:`detect_unrecoverable_undo`, used by a test and
an ablation benchmark to demonstrate the paper's point: if dirty writes are
allowed (short write locks), undoing by before-image wipes out another
transaction's update.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Tuple

from .database import Database
from .rows import Row

__all__ = ["UndoRecord", "UndoLog"]


@dataclass(frozen=True)
class UndoRecord:
    """One before-image: enough to undo a single write."""

    txn: int
    kind: str               # "item", "row-update", "row-insert", "row-delete"
    target: str              # item name, or "table/key" for rows
    before: Any               # previous value / Row copy / None

    def describe(self) -> str:
        """Human-readable rendering, used in failure diagnostics."""
        return f"T{self.txn} {self.kind} {self.target}: before={self.before!r}"


class UndoLog:
    """Per-transaction before-image log with reverse-order rollback."""

    def __init__(self) -> None:
        self._records: Dict[int, List[UndoRecord]] = {}

    # -- recording -----------------------------------------------------------------

    def record_item(self, txn: int, database: Database, item: str) -> None:
        """Record the before-image of a named item (missing item → sentinel)."""
        before = database.get_item(item, _MISSING)
        self._append(UndoRecord(txn, "item", item, before))

    def record_row_update(self, txn: int, table: str, row: Row) -> None:
        """Record the before-image of a row that is about to be updated."""
        self._append(UndoRecord(txn, "row-update", f"{table}/{row.key}", row.copy()))

    def record_row_insert(self, txn: int, table: str, key: str) -> None:
        """Record that a row is being inserted (undo deletes it)."""
        self._append(UndoRecord(txn, "row-insert", f"{table}/{key}", None))

    def record_row_delete(self, txn: int, table: str, row: Row) -> None:
        """Record the image of a row that is about to be deleted."""
        self._append(UndoRecord(txn, "row-delete", f"{table}/{row.key}", row.copy()))

    def _append(self, record: UndoRecord) -> None:
        self._records.setdefault(record.txn, []).append(record)

    # -- rollback / cleanup ------------------------------------------------------------

    def records_of(self, txn: int) -> List[UndoRecord]:
        """The before-images recorded for one transaction, oldest first."""
        return list(self._records.get(txn, []))

    def undo(self, txn: int, database: Database) -> List[UndoRecord]:
        """Roll back a transaction by restoring its before-images in reverse.

        Returns the records that were applied, newest first.
        """
        applied: List[UndoRecord] = []
        for record in reversed(self._records.pop(txn, [])):
            self._apply(record, database)
            applied.append(record)
        return applied

    def forget(self, txn: int) -> None:
        """Discard a transaction's undo records (after a successful commit)."""
        self._records.pop(txn, None)

    # -- checkpoints ---------------------------------------------------------------------

    def checkpoint(self) -> Dict[int, Tuple[UndoRecord, ...]]:
        """A value token of the log (records are immutable, shared by reference)."""
        return {txn: tuple(records) for txn, records in self._records.items()}

    def restore(self, token: Dict[int, Tuple[UndoRecord, ...]]) -> None:
        """Reset the log to a :meth:`checkpoint` token (reusable)."""
        self._records = {txn: list(records) for txn, records in token.items()}

    @staticmethod
    def _apply(record: UndoRecord, database: Database) -> None:
        if record.kind == "item":
            if record.before is _MISSING:
                database.delete_item(record.target)
            else:
                database.set_item(record.target, record.before)
            return
        table_name, _, key = record.target.partition("/")
        table = database.table(table_name)
        if record.kind == "row-insert":
            if table.has(key):
                table.delete(key)
        elif record.kind == "row-update":
            table.upsert(record.before.copy())
        elif record.kind == "row-delete":
            if not table.has(key):
                table.insert(record.before.copy())
        else:  # pragma: no cover - defensive
            raise ValueError(f"unknown undo record kind: {record.kind!r}")

    def __len__(self) -> int:
        return sum(len(records) for records in self._records.values())


class _Missing:
    """Sentinel distinguishing "item did not exist" from "item was None"."""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return "<missing>"


_MISSING = _Missing()
