"""Analysis: anomaly matrices (Tables 1/3/4), hierarchy verification, reporting."""

from .matrix import (
    EXPECTED_TABLE_4,
    EXTENSION_EXPECTATIONS,
    TABLE_4_COLUMNS,
    TABLE_4_LEVELS,
    compute_phenomenon_table,
    compute_table4,
    compute_table4_row,
    default_history_corpus,
    phenomenon_level_profile,
    variant_manifestation_profile,
)
from .hierarchy_check import (
    EdgeCheck,
    RemarkCheck,
    level_profiles,
    profile_relation,
    verify_figure2_edges,
    verify_remarks,
)
from .report import (
    matrix_matches,
    render_comparison,
    render_possibility_matrix,
    render_table,
)

__all__ = [
    "EXPECTED_TABLE_4", "EXTENSION_EXPECTATIONS", "TABLE_4_COLUMNS",
    "TABLE_4_LEVELS", "compute_phenomenon_table", "compute_table4",
    "compute_table4_row", "default_history_corpus", "phenomenon_level_profile",
    "variant_manifestation_profile",
    "EdgeCheck", "RemarkCheck", "level_profiles", "profile_relation",
    "verify_figure2_edges", "verify_remarks",
    "matrix_matches", "render_comparison", "render_possibility_matrix",
    "render_table",
]
