"""Anomaly matrices: computing Tables 1, 3, and 4 from the executable artifacts.

Two different kinds of matrix appear in the paper:

* Tables 1 and 3 are *definitional*: a cell says whether a phenomenon is
  possible under an isolation level **defined by forbidding phenomena**.  We
  recompute them by searching a corpus of histories (the paper's catalogue
  plus randomly generated ones) for a history that the level admits and in
  which the phenomenon occurs.
* Table 4 is *behavioural*: a cell says whether an anomaly can actually be
  produced by an engine implementing the level.  We recompute it two ways:
  :func:`compute_table4` replays the paper's hand-picked adversarial
  interleavings; :func:`compute_table4_explored` exhausts each scenario
  variant's *entire* interleaving space through the schedule explorer, so
  every cell becomes a measured manifestation frequency with a replayable
  witness interleaving instead of a single curated anecdote.

The declared ``EXPECTED_TABLE_4`` constant is the paper's Table 4, used by the
benchmark and the integration tests as the ground truth to compare against.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence, Set, Tuple

from ..core.catalog import CATALOG
from ..core.history import History
from ..core.isolation import IsolationLevelName, PhenomenonBasedLevel, Possibility
from ..core.phenomena import by_code
from ..explorer.options import ExploreOptions
from ..explorer.scenarios import DEFAULT_MAX_SCHEDULES, explore_scenario
from ..testbed import engine_factory
from ..workloads.generators import history_corpus
from ..workloads.scenarios import (
    ALL_SCENARIOS,
    AnomalyScenario,
    EngineFactory,
    evaluate_scenario,
    run_variant,
)
from .coverage import ExploredTable4, build_explored_cell

__all__ = [
    "TABLE_4_LEVELS",
    "TABLE_4_COLUMNS",
    "EXPECTED_TABLE_4",
    "EXTENSION_EXPECTATIONS",
    "compute_table4_row",
    "compute_table4",
    "compute_table4_explored",
    "table4_explored_from_store",
    "variant_manifestation_profile",
    "phenomenon_level_profile",
    "compute_phenomenon_table",
    "default_history_corpus",
]

#: The rows of Table 4, in the paper's order.
TABLE_4_LEVELS: Tuple[IsolationLevelName, ...] = (
    IsolationLevelName.READ_UNCOMMITTED,
    IsolationLevelName.READ_COMMITTED,
    IsolationLevelName.CURSOR_STABILITY,
    IsolationLevelName.REPEATABLE_READ,
    IsolationLevelName.SNAPSHOT_ISOLATION,
    IsolationLevelName.SERIALIZABLE,
)

#: The columns of Table 4, in the paper's order.
TABLE_4_COLUMNS: Tuple[str, ...] = ("P0", "P1", "P4C", "P4", "P2", "P3", "A5A", "A5B")

_P = Possibility.POSSIBLE
_N = Possibility.NOT_POSSIBLE
_S = Possibility.SOMETIMES_POSSIBLE

#: Table 4 exactly as printed in the paper.
EXPECTED_TABLE_4: Dict[IsolationLevelName, Dict[str, Possibility]] = {
    IsolationLevelName.READ_UNCOMMITTED: {
        "P0": _N, "P1": _P, "P4C": _P, "P4": _P, "P2": _P, "P3": _P, "A5A": _P, "A5B": _P,
    },
    IsolationLevelName.READ_COMMITTED: {
        "P0": _N, "P1": _N, "P4C": _P, "P4": _P, "P2": _P, "P3": _P, "A5A": _P, "A5B": _P,
    },
    IsolationLevelName.CURSOR_STABILITY: {
        "P0": _N, "P1": _N, "P4C": _N, "P4": _S, "P2": _S, "P3": _P, "A5A": _P, "A5B": _S,
    },
    IsolationLevelName.REPEATABLE_READ: {
        "P0": _N, "P1": _N, "P4C": _N, "P4": _N, "P2": _N, "P3": _P, "A5A": _N, "A5B": _N,
    },
    IsolationLevelName.SNAPSHOT_ISOLATION: {
        "P0": _N, "P1": _N, "P4C": _N, "P4": _N, "P2": _N, "P3": _S, "A5A": _N, "A5B": _P,
    },
    IsolationLevelName.SERIALIZABLE: {
        "P0": _N, "P1": _N, "P4C": _N, "P4": _N, "P2": _N, "P3": _N, "A5A": _N, "A5B": _N,
    },
}

#: Expectations for the two extension rows this reproduction adds (GLPT Degree 0
#: and Oracle Read Consistency, Section 4.3).  These are *our* derivations from
#: the paper's prose, not cells printed in Table 4.
EXTENSION_EXPECTATIONS: Dict[IsolationLevelName, Dict[str, Possibility]] = {
    IsolationLevelName.DEGREE_0: {
        "P0": _P, "P1": _P, "P4C": _P, "P4": _P, "P2": _P, "P3": _P, "A5A": _P, "A5B": _P,
    },
    IsolationLevelName.ORACLE_READ_CONSISTENCY: {
        # "Read Consistency ... disallows cursor lost updates (P4C) but allows
        # non-repeatable reads, general lost updates (P4), and read skew (A5A)."
        # The lost update through *two* cursors is prevented by the cursor
        # conflict check, hence "sometimes" for P4 at variant granularity.
        "P0": _N, "P1": _N, "P4C": _N, "P4": _S, "P2": _P, "P3": _P, "A5A": _P, "A5B": _P,
    },
}


def compute_table4_row(factory: EngineFactory,
                       scenarios: Sequence[AnomalyScenario] = ALL_SCENARIOS,
                       ) -> Dict[str, Possibility]:
    """One Table 4 row: run every scenario against one engine factory."""
    return {scenario.code: evaluate_scenario(scenario, factory) for scenario in scenarios}


def compute_table4(levels: Sequence[IsolationLevelName] = TABLE_4_LEVELS,
                   scenarios: Sequence[AnomalyScenario] = ALL_SCENARIOS,
                   ) -> Dict[IsolationLevelName, Dict[str, Possibility]]:
    """The full behavioural anomaly matrix for the requested levels."""
    return {
        level: compute_table4_row(engine_factory(level), scenarios)
        for level in levels
    }


def _table4_campaign_config(levels: Sequence[IsolationLevelName],
                            scenarios: Sequence[AnomalyScenario],
                            mode: str, max_schedules: int, seed: int,
                            reduction: str, static_pruning: bool) -> Dict[str, object]:
    """The persisted identity of a Table 4 campaign: its cell-affecting inputs."""
    return {
        "kind": "table4-explored",
        "levels": [level.value for level in levels],
        "scenarios": [scenario.code for scenario in scenarios],
        "mode": mode,
        "max_schedules": max_schedules,
        "seed": seed,
        "reduction": reduction,
        "static_pruning": static_pruning,
    }


def compute_table4_explored(levels: Sequence[IsolationLevelName] = TABLE_4_LEVELS,
                            scenarios: Sequence[AnomalyScenario] = ALL_SCENARIOS,
                            mode: str = "auto",
                            max_schedules: int = DEFAULT_MAX_SCHEDULES,
                            seed: int = 0,
                            reduction: str = "sleep-set",
                            static_pruning: bool = False,
                            store=None,
                            campaign_id: Optional[str] = None,
                            options: Optional[ExploreOptions] = None,
                            ) -> ExploredTable4:
    """The explorer-driven behavioural anomaly matrix.

    Each cell exhausts (or, above ``max_schedules``, samples) the full
    interleaving space of every scenario variant under the level's engine and
    aggregates the manifestation sets: the cell verdict is the same
    all/none/some rule as :func:`compute_table4`, but backed by the whole
    space — with the measured manifestation frequency and the first witness
    interleaving recorded alongside.  Stalled and deadlocked schedules are
    counted, not fatal.  The default budget covers every curated variant
    space exhaustively, so ``compute_table4_explored()`` is a strict
    strengthening of the curated table.

    ``static_pruning`` consults the static dependency graph
    (:mod:`repro.static_analysis`) first and skips every variant space whose
    scenario is statically impossible at the level: the cell verdicts are
    unchanged (a pruned variant counts as non-manifesting, which is exactly
    what executing it would measure — CI gates this agreement), but roughly
    half the Table 4 grid stops paying for schedule execution.  Pruned counts
    are reported per cell (``ExploredCell.pruned_variants``) and in the
    rendered table; the default stays off so the headline reproduction keeps
    executing every cell.

    With ``store`` (a :class:`~repro.persist.CampaignStore`), the matrix
    itself becomes a resumable campaign at (level, scenario)-cell granularity:
    each finished cell is committed as it completes, and a re-run — after a
    crash or on a later day — skips every stored cell and explores only the
    missing ones.  The campaign's identity is the cell-affecting inputs
    (levels, scenarios, mode, budget, seed, reduction, static pruning);
    reopening it with different inputs raises
    :class:`~repro.persist.CampaignConfigMismatch` rather than silently
    mixing incompatible cells.

    An :class:`~repro.explorer.options.ExploreOptions` may replace the loose
    exploration knobs (``mode``/``max_schedules``/``seed``/``reduction``/
    ``static_pruning``); ``levels``, ``store``, and ``campaign_id`` keep
    their own parameters because the matrix aggregates per level and manages
    its own campaign identity.
    """
    if options is not None:
        mode = options.mode
        max_schedules = options.max_schedules
        seed = options.seed
        reduction = options.reduction
        static_pruning = options.static_pruning
    stored_cells: Dict[Tuple[str, str], str] = {}
    if store is not None:
        from ..persist.records import cell_to_payload, config_fingerprint
        config = _table4_campaign_config(levels, scenarios, mode, max_schedules,
                                         seed, reduction, static_pruning)
        if campaign_id is None:
            campaign_id = f"table4-{config_fingerprint(config)}"
        store.open_campaign(campaign_id, config)
        stored_cells = store.load_table4_cells(campaign_id)
    elif campaign_id is not None:
        raise ValueError("campaign_id requires a store")

    def cell(level: IsolationLevelName, scenario: AnomalyScenario):
        if store is not None:
            from ..persist.records import cell_from_payload
            payload = stored_cells.get((level.value, scenario.code))
            if payload is not None:
                return cell_from_payload(payload)
        built = build_explored_cell(
            explore_scenario(scenario, level, mode=mode,
                             max_schedules=max_schedules, seed=seed,
                             reduction=reduction,
                             static_pruning=static_pruning)
        )
        if store is not None:
            store.save_table4_cell(campaign_id, level.value, scenario.code,
                                   cell_to_payload(built))
        return built

    cells = {
        level: {scenario.code: cell(level, scenario) for scenario in scenarios}
        for level in levels
    }
    return ExploredTable4(
        mode=mode,
        max_schedules=max_schedules,
        seed=seed,
        reduction=reduction,
        columns=tuple(scenario.code for scenario in scenarios),
        cells=cells,
        static_pruning=static_pruning,
    )


def table4_explored_from_store(store, campaign_id: str) -> ExploredTable4:
    """Rebuild a completed explored Table 4 purely from its stored cells.

    The campaign must have been produced by :func:`compute_table4_explored`
    with a ``store``; raises :class:`~repro.persist.store.StoreError` when
    any configured cell is missing (i.e. the campaign is unfinished — resume
    it by calling :func:`compute_table4_explored` with the same inputs).
    """
    from ..persist.records import cell_from_payload
    from ..persist.store import StoreError
    info = store.get_campaign(campaign_id)
    if info is None:
        raise StoreError(f"unknown campaign {campaign_id!r}")
    config = info.config
    if config.get("kind") != "table4-explored":
        raise StoreError(f"campaign {campaign_id!r} is not a Table 4 campaign: "
                         f"{config}")
    payloads = store.load_table4_cells(campaign_id)
    levels = tuple(IsolationLevelName(value) for value in config["levels"])
    columns = tuple(config["scenarios"])
    missing = [(level.value, code) for level in levels for code in columns
               if (level.value, code) not in payloads]
    if missing:
        raise StoreError(f"campaign {campaign_id!r} is unfinished: "
                         f"{len(missing)} cells missing, e.g. {missing[0]}")
    cells = {
        level: {code: cell_from_payload(payloads[(level.value, code)])
                for code in columns}
        for level in levels
    }
    return ExploredTable4(
        mode=config["mode"],
        max_schedules=config["max_schedules"],
        seed=config["seed"],
        reduction=config["reduction"],
        columns=columns,
        cells=cells,
        static_pruning=config["static_pruning"],
    )


def variant_manifestation_profile(level: IsolationLevelName,
                                  scenarios: Sequence[AnomalyScenario] = ALL_SCENARIOS,
                                  ) -> Set[Tuple[str, str]]:
    """The set of (scenario, variant) pairs whose anomaly manifests under a level.

    This finer-grained profile is what the hierarchy analysis compares: two
    levels can have identical Table 4 rows at the scenario granularity yet
    admit different *variants* (REPEATABLE READ vs Snapshot Isolation both
    show "phantoms possible", but for different variants — which is exactly
    why the paper calls them incomparable).
    """
    factory = engine_factory(level)
    profile: Set[Tuple[str, str]] = set()
    for scenario in scenarios:
        for variant in scenario.variants:
            result = run_variant(variant, factory, scenario.code)
            if result.manifested:
                profile.add((scenario.code, variant.name))
    return profile


def phenomenon_level_profile(level: PhenomenonBasedLevel,
                             scenarios: Sequence[AnomalyScenario] = ALL_SCENARIOS,
                             ) -> Set[Tuple[str, str]]:
    """The variant profile of a *phenomenon-defined* level (Table 1 / Table 3).

    A phenomenon-defined level has no engine; instead, a variant counts as
    admitted when (a) its anomaly manifests under the most permissive engine
    (Degree 0), and (b) the realized Degree 0 history contains none of the
    level's forbidden phenomena.  This is how the paper itself reasons: the
    level admits the history, and the history is anomalous.
    """
    permissive = engine_factory(IsolationLevelName.DEGREE_0)
    profile: Set[Tuple[str, str]] = set()
    for scenario in scenarios:
        for variant in scenario.variants:
            result = run_variant(variant, permissive, scenario.code)
            if not result.manifested:
                continue
            if level.permits(result.outcome.history):
                profile.add((scenario.code, variant.name))
    return profile


def default_history_corpus(seed: int = 7, count: int = 300) -> List[History]:
    """The corpus for the definitional tables: the catalogue plus random histories."""
    catalogue = [entry.history for entry in CATALOG.values() if not entry.multiversion]
    return catalogue + history_corpus(seed=seed, count=count)


def compute_phenomenon_table(levels: Mapping[IsolationLevelName, PhenomenonBasedLevel],
                             phenomena: Sequence[str],
                             corpus: Optional[Sequence[History]] = None,
                             ) -> Dict[IsolationLevelName, Dict[str, Possibility]]:
    """Recompute a definitional matrix (Table 1 or Table 3) over a history corpus.

    A cell is POSSIBLE when some corpus history is admitted by the level and
    exhibits the phenomenon; NOT_POSSIBLE when no such history exists (which,
    for the forbidden phenomena, is guaranteed by construction — the point of
    recomputing is to confirm the *possible* cells really are achievable).
    """
    corpus = list(corpus) if corpus is not None else default_history_corpus()
    table: Dict[IsolationLevelName, Dict[str, Possibility]] = {}
    for name, level in levels.items():
        row: Dict[str, Possibility] = {}
        for code in phenomena:
            detector = by_code(code)
            achievable = any(
                level.permits(history) and detector.occurs_in(history)
                for history in corpus
            )
            row[code] = Possibility.POSSIBLE if achievable else Possibility.NOT_POSSIBLE
        table[name] = row
    return table
