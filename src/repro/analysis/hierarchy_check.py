"""Empirical verification of the isolation hierarchy (Figure 2 and Remarks 1–10).

The paper orders isolation levels by the non-serializable histories they
admit.  For the engine-defined levels we approximate "the histories a level
admits" by the *variant manifestation profile*: the set of anomaly-scenario
variants whose bad outcome the engine lets through
(:func:`repro.analysis.matrix.variant_manifestation_profile`).  A level that
admits a strict superset of another level's variants is strictly weaker.

This reproduces the paper's qualitative results:

* Remark 1: Locking RU « RC « RR « SERIALIZABLE.
* Remark 7: READ COMMITTED « Cursor Stability « REPEATABLE READ.
* Remark 8: READ COMMITTED « Snapshot Isolation.
* Remark 9: REPEATABLE READ »« Snapshot Isolation (each admits a variant the
  other forbids: the reread phantom vs write skew).
* Remark 10: ANOMALY SERIALIZABLE « Snapshot Isolation (the Table 1
  definition, forbidding only A1–A3, admits far more than SI does).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Mapping, Optional, Sequence, Tuple

from ..core.hierarchy import FIGURE_2_EDGES, REMARKS, Figure2Edge, Relation
from ..core.isolation import (
    ANSI_STRICT_LEVELS,
    IsolationLevelName,
)
from .matrix import (
    ALL_SCENARIOS,
    phenomenon_level_profile,
    variant_manifestation_profile,
)

__all__ = [
    "Profile",
    "profile_relation",
    "level_profiles",
    "EdgeCheck",
    "verify_figure2_edges",
    "RemarkCheck",
    "verify_remarks",
]

Profile = FrozenSet[Tuple[str, str]]


def profile_relation(first: Profile, second: Profile) -> Relation:
    """Order two levels by the anomaly variants they admit.

    Admitting *more* variants means being *weaker* (the level allows more
    non-serializable behaviour), so a strict superset on the first side means
    ``first « second``.
    """
    if first == second:
        return Relation.EQUIVALENT
    if first > second:
        return Relation.WEAKER
    if first < second:
        return Relation.STRONGER
    return Relation.INCOMPARABLE


def level_profiles(levels: Sequence[IsolationLevelName],
                   scenarios=ALL_SCENARIOS) -> Dict[IsolationLevelName, Profile]:
    """The variant manifestation profile of every requested engine level."""
    return {
        level: frozenset(variant_manifestation_profile(level, scenarios))
        for level in levels
    }


@dataclass(frozen=True)
class EdgeCheck:
    """The empirical verdict for one Figure 2 edge."""

    edge: Figure2Edge
    observed: Relation
    holds: bool
    lower_only: Profile
    higher_only: Profile


def verify_figure2_edges(profiles: Optional[Mapping[IsolationLevelName, Profile]] = None,
                         ) -> List[EdgeCheck]:
    """Check every ``lower « higher`` edge of Figure 2 against engine behaviour."""
    needed = {edge.lower for edge in FIGURE_2_EDGES} | {edge.higher for edge in FIGURE_2_EDGES}
    if profiles is None:
        profiles = level_profiles(sorted(needed, key=lambda level: level.value))
    checks: List[EdgeCheck] = []
    for edge in FIGURE_2_EDGES:
        lower = profiles[edge.lower]
        higher = profiles[edge.higher]
        observed = profile_relation(lower, higher)
        checks.append(EdgeCheck(
            edge=edge,
            observed=observed,
            holds=observed is Relation.WEAKER,
            lower_only=frozenset(lower - higher),
            higher_only=frozenset(higher - lower),
        ))
    return checks


@dataclass(frozen=True)
class RemarkCheck:
    """The empirical verdict for one of the paper's numbered remarks."""

    remark: int
    first: IsolationLevelName
    second: IsolationLevelName
    expected: Relation
    observed: Relation

    @property
    def holds(self) -> bool:
        return self.observed is self.expected

    def describe(self) -> str:
        return (
            f"Remark {self.remark}: {self.first.value} {self.expected.value} "
            f"{self.second.value} — observed {self.observed.value}"
        )


def _profile_for(level: IsolationLevelName,
                 cache: Dict[IsolationLevelName, Profile]) -> Profile:
    if level in cache:
        return cache[level]
    if level is IsolationLevelName.ANOMALY_SERIALIZABLE:
        definition = ANSI_STRICT_LEVELS[IsolationLevelName.ANOMALY_SERIALIZABLE]
        profile = frozenset(phenomenon_level_profile(definition))
    else:
        profile = frozenset(variant_manifestation_profile(level))
    cache[level] = profile
    return profile


def verify_remarks(remarks=REMARKS) -> List[RemarkCheck]:
    """Verify every ordering remark of the paper empirically."""
    cache: Dict[IsolationLevelName, Profile] = {}
    checks: List[RemarkCheck] = []
    for remark, first, expected, second in remarks:
        first_profile = _profile_for(first, cache)
        second_profile = _profile_for(second, cache)
        observed = profile_relation(first_profile, second_profile)
        checks.append(RemarkCheck(
            remark=remark,
            first=first,
            second=second,
            expected=expected,
            observed=observed,
        ))
    return checks
