"""Anomaly-coverage reports over schedule-space exploration results.

Table 4's cells say whether an anomaly is Possible / Not Possible / Sometimes
Possible under each isolation level — established in the paper by exhibiting
one adversarial interleaving per cell.  Exploring the *space* of interleavings
strengthens that to a measurement: for every phenomenon, how many of the
realized schedules actually witnessed it, with a concrete witness interleaving
for each witnessed cell.  "Sometimes Possible" stops being an anecdote and
becomes a frequency.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.isolation import IsolationLevelName, Possibility
from ..core.phenomena import ALL_PHENOMENA
from .report import render_table

__all__ = [
    "PhenomenonCoverage",
    "LevelCoverage",
    "CoverageReport",
    "build_coverage_report",
    "coverage_report_from_store",
    "coverage_mismatches",
    "ExploredCell",
    "ExploredTable4",
    "build_explored_cell",
]


@dataclass(frozen=True)
class PhenomenonCoverage:
    """How often one phenomenon was witnessed under one level."""

    code: str
    witnessed: int
    total: int
    witness_interleaving: Optional[Tuple[int, ...]]
    witness_history: Optional[str]

    @property
    def frequency(self) -> float:
        """Fraction of explored schedules that witnessed the phenomenon."""
        return self.witnessed / self.total if self.total else 0.0

    @property
    def possibility(self) -> Possibility:
        """The Table 4 verdict this measurement supports.

        A cell is POSSIBLE as soon as any schedule witnesses the phenomenon —
        every real space also contains serial schedules that witness nothing,
        so "witnessed by all schedules" would be unreachable.  The paper's
        SOMETIMES_POSSIBLE arises at scenario-*variant* granularity, not at
        schedule granularity; use :attr:`frequency` for the fine-grained
        signal.
        """
        return Possibility.POSSIBLE if self.witnessed else Possibility.NOT_POSSIBLE


@dataclass(frozen=True)
class LevelCoverage:
    """Coverage of every phenomenon under one isolation level."""

    level: IsolationLevelName
    schedules: int
    serializable: int
    stalled: int
    phenomena: Dict[str, PhenomenonCoverage]

    @property
    def non_serializable_fraction(self) -> float:
        """Fraction of explored schedules whose realized history is non-serializable."""
        if not self.schedules:
            return 0.0
        return (self.schedules - self.serializable) / self.schedules


@dataclass(frozen=True)
class CoverageReport:
    """The per-level anomaly-coverage matrix for one exploration."""

    spec: str
    mode: str
    space_size: int
    explored: int
    columns: Tuple[str, ...]
    levels: Dict[IsolationLevelName, LevelCoverage]
    #: Caveats that would otherwise hide in stats dicts: sampling truncation
    #: (the dedupe seen-set cap was exceeded, so the sample may repeat
    #: schedules) and statically pruned detector counts.
    notes: Tuple[str, ...] = ()

    def witnessed(self, level: IsolationLevelName, code: str) -> int:
        """Witness count for one cell (0 when the level lacks the column)."""
        coverage = self.levels[level].phenomena.get(code)
        return coverage.witnessed if coverage else 0

    def witness(self, level: IsolationLevelName,
                code: str) -> Optional[Tuple[Tuple[int, ...], str]]:
        """The first witness (interleaving, history shorthand) for a cell, if any.

        Under ``reduction="sleep-set"`` the history is the witnessing
        *equivalence class's* representative history — replaying the returned
        interleaving realizes a history identical up to the order of
        commuting adjacent steps.
        """
        coverage = self.levels[level].phenomena.get(code)
        if coverage is None or coverage.witness_interleaving is None:
            return None
        return coverage.witness_interleaving, coverage.witness_history or ""

    def render(self, title: Optional[str] = None) -> str:
        """ASCII matrix: one row per level, witnessed-frequency per phenomenon."""
        headers = ["Isolation level", "schedules", "non-ser %"] + list(self.columns)
        rows: List[List[str]] = []
        for level, coverage in self.levels.items():
            cells = [level.value, str(coverage.schedules),
                     f"{coverage.non_serializable_fraction * 100:.1f}"]
            for code in self.columns:
                phenomenon = coverage.phenomena.get(code)
                if phenomenon is None or phenomenon.witnessed == 0:
                    cells.append("-")
                else:
                    cells.append(f"{phenomenon.frequency * 100:.1f}%")
            rows.append(cells)
        header = title or (
            f"Anomaly coverage: {self.spec} [{self.mode}] "
            f"{self.explored}/{self.space_size} schedules per level"
        )
        table = render_table(headers, rows, title=header)
        if self.notes:
            table += "".join(f"\nnote: {note}" for note in self.notes)
        return table


def coverage_mismatches(full, reduced,
                        levels: Optional[Sequence[IsolationLevelName]] = None,
                        codes: Optional[Sequence[str]] = None) -> List[str]:
    """Where two explorations disagree on coverage (empty list = identical).

    The soundness gate for partial-order reduction: a reduced exploration must
    report the same schedule counts, serializable counts, stall counts,
    per-phenomenon witness counts, and witness *interleavings* as full
    enumeration.  Witness histories are deliberately not compared — a reduced
    record carries its representative's realized history, which may differ
    from the pruned schedule's by the order of commuting adjacent steps.
    """
    full_report = build_coverage_report(full, codes=codes)
    reduced_report = build_coverage_report(reduced, codes=codes)
    selected = tuple(levels) if levels is not None else tuple(full_report.levels)
    mismatches: List[str] = []
    for level in selected:
        complete = full_report.levels[level]
        pruned = reduced_report.levels[level]
        for field in ("schedules", "serializable", "stalled"):
            expected, actual = getattr(complete, field), getattr(pruned, field)
            if expected != actual:
                mismatches.append(
                    f"{level.value}: {field} {actual} != {expected}")
        for code in full_report.columns:
            expected, actual = complete.phenomena[code], pruned.phenomena[code]
            if actual.witnessed != expected.witnessed:
                mismatches.append(
                    f"{level.value}/{code}: witnessed "
                    f"{actual.witnessed} != {expected.witnessed}")
            if actual.witness_interleaving != expected.witness_interleaving:
                mismatches.append(
                    f"{level.value}/{code}: witness interleaving "
                    f"{actual.witness_interleaving} != {expected.witness_interleaving}")
    return mismatches


@dataclass(frozen=True)
class ExploredCell:
    """One measured Table 4 cell: a scenario's variant spaces under one level.

    Built structurally from a
    :class:`~repro.explorer.scenarios.ScenarioExploration` (anything with the
    same attributes works — ``analysis`` stays import-cycle-free of
    ``explorer``).  ``witness`` is ``(variant name, interleaving, history
    shorthand)`` for the first manifesting schedule, or ``None`` when the
    anomaly never manifested anywhere in the explored spaces.
    """

    code: str
    possibility: Possibility
    schedules: int
    manifested: int
    stalled: int
    witness: Optional[Tuple[str, Tuple[int, ...], str]]
    variant_frequencies: Tuple[Tuple[str, float], ...]
    #: Variant spaces skipped by the static-impossibility pass, with the
    #: static proof sketch per pruned variant.
    pruned_variants: int = 0
    static_reasons: Tuple[Tuple[str, str], ...] = ()

    @property
    def frequency(self) -> float:
        """Fraction of all explored schedules (across variants) that manifested."""
        return self.manifested / self.schedules if self.schedules else 0.0

    def render_cell(self) -> str:
        """Compact cell text: the verdict plus the measured frequency."""
        marks = {
            Possibility.POSSIBLE: "P",
            Possibility.NOT_POSSIBLE: "N",
            Possibility.SOMETIMES_POSSIBLE: "S",
        }
        mark = marks.get(self.possibility, str(self.possibility))
        if self.pruned_variants:
            mark += "*"
        if self.manifested == 0:
            return mark
        return f"{mark} {self.frequency * 100:.1f}%"


def build_explored_cell(exploration) -> ExploredCell:
    """Aggregate one scenario exploration into its measured Table 4 cell."""
    pruned = [variant for variant in exploration.variants
              if getattr(variant, "pruned", False)]
    return ExploredCell(
        code=exploration.scenario_code,
        possibility=exploration.possibility,
        schedules=exploration.schedules,
        manifested=sum(variant.manifested for variant in exploration.variants),
        stalled=exploration.stalled,
        witness=exploration.witness,
        variant_frequencies=tuple(
            (variant.variant_name, variant.frequency)
            for variant in exploration.variants
        ),
        pruned_variants=len(pruned),
        static_reasons=tuple(
            (variant.variant_name, variant.static_reason) for variant in pruned
        ),
    )


@dataclass(frozen=True)
class ExploredTable4:
    """The explorer-driven Table 4: every cell a measurement, not an anecdote."""

    mode: str
    max_schedules: int
    seed: int
    reduction: str
    columns: Tuple[str, ...]
    cells: Dict[IsolationLevelName, Dict[str, ExploredCell]]
    #: Whether statically-impossible (cell, level) scopes were skipped.
    static_pruning: bool = False

    def possibilities(self) -> Dict[IsolationLevelName, Dict[str, Possibility]]:
        """The plain verdict matrix, comparable against ``EXPECTED_TABLE_4``."""
        return {
            level: {code: cell.possibility for code, cell in row.items()}
            for level, row in self.cells.items()
        }

    def cell(self, level: IsolationLevelName, code: str) -> ExploredCell:
        """One measured cell."""
        return self.cells[level][code]

    def witness(self, level: IsolationLevelName,
                code: str) -> Optional[Tuple[str, Tuple[int, ...], str]]:
        """The recorded witness for a cell, if its anomaly ever manifested."""
        return self.cells[level][code].witness

    def total_schedules(self) -> int:
        """Schedules covered across every cell."""
        return sum(cell.schedules for row in self.cells.values()
                   for cell in row.values())

    def total_stalled(self) -> int:
        """Stalled schedules across every cell (all first-class, none fatal)."""
        return sum(cell.stalled for row in self.cells.values()
                   for cell in row.values())

    def total_pruned_variants(self) -> int:
        """Variant spaces skipped by the static-impossibility pass."""
        return sum(cell.pruned_variants for row in self.cells.values()
                   for cell in row.values())

    def render(self, title: Optional[str] = None) -> str:
        """ASCII matrix: verdict + manifestation frequency per cell."""
        headers = ["Isolation level"] + list(self.columns)
        rows: List[List[str]] = []
        for level, row in self.cells.items():
            cells = [level.value]
            for code in self.columns:
                cell = row.get(code)
                cells.append(cell.render_cell() if cell is not None else "?")
            rows.append(cells)
        header = title or (
            f"Explored Table 4 [{self.mode}, reduction={self.reduction}]: "
            f"{self.total_schedules()} schedules, "
            f"{self.total_stalled()} stalled (P/N/S + % of schedules manifesting)"
        )
        table = render_table(headers, rows, title=header)
        pruned = self.total_pruned_variants()
        if pruned:
            table += (f"\nnote: * = {pruned} variant space(s) skipped as "
                      f"statically impossible (counted not-manifesting)")
        return table


def build_coverage_report(result, codes: Optional[Sequence[str]] = None) -> CoverageReport:
    """Aggregate an :class:`~repro.explorer.explorer.ExplorationResult` into a report.

    ``codes`` selects and orders the report columns (default: every detector,
    in catalogue order).  Accepts the result object structurally — anything
    with ``spec``, ``space``, and ``levels`` of records works, which keeps
    ``analysis`` free of an import cycle with ``explorer``.
    """
    columns = tuple(codes) if codes is not None else tuple(ALL_PHENOMENA)
    levels: Dict[IsolationLevelName, LevelCoverage] = {}
    for level, exploration in result.levels.items():
        records = exploration.records
        total = len(records)
        witnessed: Dict[str, int] = {code: 0 for code in columns}
        witness: Dict[str, Tuple[Tuple[int, ...], str]] = {}
        serializable = 0
        stalled = 0
        for record in records:
            if record.serializable:
                serializable += 1
            if record.stalled:
                stalled += 1
            for code in record.phenomena:
                if code not in witnessed:
                    continue
                witnessed[code] += 1
                witness.setdefault(code, (record.interleaving, record.history))
        phenomena = {
            code: PhenomenonCoverage(
                code=code,
                witnessed=witnessed[code],
                total=total,
                witness_interleaving=witness.get(code, (None, None))[0],
                witness_history=witness.get(code, (None, None))[1],
            )
            for code in columns
        }
        levels[level] = LevelCoverage(
            level=level, schedules=total, serializable=serializable,
            stalled=stalled, phenomena=phenomena,
        )
    notes: List[str] = []
    space = result.space
    if space.mode == "sample" and not getattr(space, "dedupe", True):
        # _should_dedupe refused the seen-set (distinct-tracking would exceed
        # its memory cap), so the sample may repeat schedules — a caveat that
        # previously lived only in ``space.distinct is None``.
        notes.append(
            f"sampled {space.selected} of {space.total} schedules without "
            f"dedupe tracking (seen-set cap exceeded): counts may include "
            f"repeated schedules")
    pruned_by_level = []
    for level, exploration in result.levels.items():
        stats = getattr(exploration, "cache_stats", None) or {}
        count = stats.get("static_pruned_detectors", 0)
        if count:
            pruned_by_level.append(f"{level.value}: {count}")
    if pruned_by_level:
        notes.append("statically pruned detectors — " +
                     "; ".join(pruned_by_level))
    return CoverageReport(
        spec=result.spec.describe(),
        mode=result.space.mode,
        space_size=result.space.total,
        explored=result.space.selected,
        columns=columns,
        levels=levels,
        notes=tuple(notes),
    )


@dataclass(frozen=True)
class _StoredLevel:
    """Shim matching ``LevelExploration`` structurally for report building."""

    records: Tuple
    cache_stats: Dict[str, int]


@dataclass(frozen=True)
class _StoredResult:
    """Shim matching ``ExplorationResult`` structurally for report building."""

    spec: object
    space: object
    levels: Dict[IsolationLevelName, _StoredLevel]


def coverage_report_from_store(store, campaign_id: str,
                               codes: Optional[Sequence[str]] = None,
                               levels: Optional[Sequence[IsolationLevelName]]
                               = None) -> CoverageReport:
    """Rebuild a campaign's coverage report from its persisted records.

    The store-reading constructor: loads every stored scope's record stream
    from a :class:`~repro.persist.CampaignStore` and aggregates it exactly
    like :func:`build_coverage_report` does for a live
    :class:`~repro.explorer.ExplorationResult` — for a completed campaign the
    two renders are byte-identical (the kill-and-resume determinism tests
    assert this).  The schedule space is re-derived from the stored campaign
    config; deterministic, so the header and sampling notes match too.

    ``levels`` fixes the report's row order (matching the ``levels`` the
    campaign was explored with); by default the explorer's
    ``DEFAULT_LEVELS`` order is used for the scopes present, any others
    following in enum declaration order.
    """
    # Imported lazily: analysis must stay import-cycle-free of explorer and
    # persist at module scope (both import this module).
    from ..explorer.explorer import DEFAULT_LEVELS
    from ..explorer.schedules import schedule_space
    from ..workloads.program_sets import ProgramSetSpec, resolve_program_set

    info = store.get_campaign(campaign_id)
    if info is None:
        raise KeyError(f"campaign {campaign_id!r} is not in the store")
    config = dict(info.config)
    spec = ProgramSetSpec.make(config["spec_name"],
                               **{key: value
                                  for key, value in config["spec_params"]})
    _, programs = resolve_program_set(spec)(**spec.kwargs())
    space = schedule_space(programs, mode=config["mode"],
                           max_schedules=config["max_schedules"],
                           seed=config["seed"])
    progress = store.scope_progress(campaign_id)
    if levels is None:
        ordered = [level for level in DEFAULT_LEVELS if level.value in progress]
        ordered += [level for level in IsolationLevelName
                    if level.value in progress and level not in ordered]
    else:
        ordered = [level for level in levels if level.value in progress]
    stored_levels: Dict[IsolationLevelName, _StoredLevel] = {}
    for level in ordered:
        state = progress[level.value]
        stored_levels[level] = _StoredLevel(
            records=tuple(store.iter_records(campaign_id, level.value)),
            cache_stats=dict(state.stats),
        )
    return build_coverage_report(
        _StoredResult(spec=spec, space=space, levels=stored_levels),
        codes=codes)
