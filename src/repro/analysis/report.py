"""ASCII rendering of the paper's tables, for benchmarks and examples.

The benchmark harness prints the same rows the paper reports: a matrix of
isolation levels against phenomena with Possible / Not Possible /
Sometimes Possible cells, and a paper-vs-measured comparison.  The renderers
here are deliberately dependency-free (plain ``str.format``) so they work in
any terminal and diff cleanly in EXPERIMENTS.md.
"""

from __future__ import annotations

from typing import List, Mapping, Optional, Sequence, Tuple

from ..core.isolation import IsolationLevelName, Possibility

__all__ = [
    "render_table",
    "render_possibility_matrix",
    "render_comparison",
    "matrix_matches",
]


def render_table(headers: Sequence[str], rows: Sequence[Sequence[object]],
                 title: Optional[str] = None) -> str:
    """Render a simple ASCII table with column alignment."""
    str_rows = [[str(cell) for cell in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in str_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def format_row(cells: Sequence[str]) -> str:
        return " | ".join(cell.ljust(widths[index]) for index, cell in enumerate(cells))

    lines: List[str] = []
    if title:
        lines.append(title)
    lines.append(format_row(list(headers)))
    lines.append("-+-".join("-" * width for width in widths))
    lines.extend(format_row(row) for row in str_rows)
    return "\n".join(lines)


def render_possibility_matrix(matrix: Mapping[IsolationLevelName, Mapping[str, Possibility]],
                              columns: Sequence[str],
                              title: Optional[str] = None) -> str:
    """Render a {level -> {phenomenon -> Possibility}} matrix as the paper prints it."""
    headers = ["Isolation level"] + list(columns)
    rows = []
    for level, row in matrix.items():
        rows.append([level.value] + [str(row.get(column, "")) for column in columns])
    return render_table(headers, rows, title=title)


def render_comparison(expected: Mapping[IsolationLevelName, Mapping[str, Possibility]],
                      measured: Mapping[IsolationLevelName, Mapping[str, Possibility]],
                      columns: Sequence[str],
                      title: Optional[str] = None) -> str:
    """Render paper-vs-measured cells side by side, flagging mismatches with '!'."""
    headers = ["Isolation level"] + list(columns)
    rows = []
    for level, expected_row in expected.items():
        measured_row = measured.get(level, {})
        cells: List[str] = [level.value]
        for column in columns:
            want = expected_row.get(column)
            got = measured_row.get(column)
            if want is None or got is None:
                cells.append("?")
            elif want is got:
                cells.append(str(got))
            else:
                cells.append(f"!{got} (paper: {want})")
        rows.append(cells)
    return render_table(headers, rows, title=title)


def matrix_matches(expected: Mapping[IsolationLevelName, Mapping[str, Possibility]],
                   measured: Mapping[IsolationLevelName, Mapping[str, Possibility]],
                   ) -> Tuple[bool, List[str]]:
    """Compare two matrices cell by cell; return (all-match, mismatch descriptions)."""
    mismatches: List[str] = []
    for level, expected_row in expected.items():
        measured_row = measured.get(level)
        if measured_row is None:
            mismatches.append(f"missing row for {level.value}")
            continue
        for column, want in expected_row.items():
            got = measured_row.get(column)
            if got is not want:
                mismatches.append(
                    f"{level.value} / {column}: paper says {want}, measured {got}"
                )
    return (not mismatches, mismatches)
