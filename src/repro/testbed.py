"""Testbed: one-call construction of any isolation engine, plus a session facade.

This module is the library's front door for applications and examples:

* :func:`make_engine` builds the engine implementing any of the paper's
  isolation levels against a given database — the Table 2 locking levels, the
  Section 4.2 Snapshot Isolation level, and Section 4.3's Oracle-style Read
  Consistency.
* :func:`run_programs` wires an engine and a set of transaction programs into
  a :class:`~repro.engine.scheduler.ScheduleRunner` and runs them.
* :class:`Session` offers an imperative, connection-like API (begin / read /
  write / commit) for interactive use and the quickstart example.  It is a
  thin veneer over the engine interface: operations that would block raise
  :class:`WouldBlock` instead, because a single-threaded session cannot wait
  on itself.
"""

from __future__ import annotations

from typing import Any, Callable, List, Optional, Sequence

from .core.isolation import IsolationLevelName
from .engine.interface import Engine, OpResult
from .engine.outcomes import ExecutionOutcome
from .engine.programs import TransactionProgram
from .engine.scheduler import ScheduleRunner
from .locking.engine import LockingEngine
from .mvcc.read_consistency import ReadConsistencyEngine
from .mvcc.snapshot import SnapshotIsolationEngine
from .storage.database import Database
from .storage.predicates import Predicate
from .storage.rows import Row

__all__ = [
    "LOCKING_LEVELS",
    "ALL_ENGINE_LEVELS",
    "is_single_version",
    "make_engine",
    "engine_factory",
    "run_programs",
    "WouldBlock",
    "Transaction",
    "Session",
]

#: The isolation levels realized by the locking engine (Table 2).
LOCKING_LEVELS = (
    IsolationLevelName.DEGREE_0,
    IsolationLevelName.READ_UNCOMMITTED,
    IsolationLevelName.READ_COMMITTED,
    IsolationLevelName.CURSOR_STABILITY,
    IsolationLevelName.REPEATABLE_READ,
    IsolationLevelName.SERIALIZABLE,
)

#: Every level :func:`make_engine` can build.
ALL_ENGINE_LEVELS = LOCKING_LEVELS + (
    IsolationLevelName.SNAPSHOT_ISOLATION,
    IsolationLevelName.ORACLE_READ_CONSISTENCY,
)


def is_single_version(level: IsolationLevelName) -> bool:
    """Whether a level's engine is single-version (no snapshots, no old versions).

    The locking engine operates directly on current values; Snapshot Isolation
    and Read Consistency keep version chains and hand out old committed
    versions.  The distinction matters to the schedule explorer's commutation
    oracle: only multiversion engines need commits treated as component-wide
    snapshot boundaries (see :mod:`repro.explorer.reduction`).
    """
    return level in LOCKING_LEVELS


def make_engine(database: Database, level: IsolationLevelName, **options: Any) -> Engine:
    """Build the engine implementing an isolation level over a database.

    ``options`` are forwarded to the engine constructor (e.g.
    ``first_committer_wins=False`` for the Snapshot Isolation ablation).
    """
    if level in LOCKING_LEVELS:
        return LockingEngine(database, level=level, **options)
    if level is IsolationLevelName.SNAPSHOT_ISOLATION:
        return SnapshotIsolationEngine(database, **options)
    if level is IsolationLevelName.ORACLE_READ_CONSISTENCY:
        return ReadConsistencyEngine(database, **options)
    raise ValueError(f"no engine implements isolation level {level.value!r}")


def engine_factory(level: IsolationLevelName, **options: Any) -> Callable[[Database], Engine]:
    """A factory ``database -> engine`` for a level (used by scenarios and benches)."""
    def build(database: Database) -> Engine:
        return make_engine(database, level, **options)
    return build


def run_programs(database: Database, level: IsolationLevelName,
                 programs: Sequence[TransactionProgram],
                 interleaving: Optional[Sequence[int]] = None,
                 **options: Any) -> ExecutionOutcome:
    """Run a set of transaction programs under one isolation level."""
    engine = make_engine(database, level, **options)
    return ScheduleRunner(engine, programs, interleaving).run()


class WouldBlock(RuntimeError):
    """Raised by :class:`Session` when an operation would have to wait for a lock."""


class TransactionAborted(RuntimeError):
    """Raised by :class:`Session` when the engine aborts the transaction."""


class Transaction:
    """A live transaction handle bound to a session's engine."""

    def __init__(self, engine: Engine, txn_id: int):
        self._engine = engine
        self.txn_id = txn_id

    def _unwrap(self, result: OpResult) -> Any:
        if result.is_blocked:
            raise WouldBlock(result.reason or "operation would block")
        if result.is_aborted:
            raise TransactionAborted(result.reason or "transaction aborted")
        return result.value

    def read(self, item: str) -> Any:
        """Read a named item."""
        return self._unwrap(self._engine.read(self.txn_id, item))

    def write(self, item: str, value: Any) -> None:
        """Write a named item."""
        self._unwrap(self._engine.write(self.txn_id, item, value))

    def select(self, predicate: Predicate) -> List[Row]:
        """Read the rows satisfying a predicate."""
        return self._unwrap(self._engine.select(self.txn_id, predicate))

    def insert(self, table: str, row: Row) -> None:
        """Insert a row."""
        self._unwrap(self._engine.insert(self.txn_id, table, row))

    def update_row(self, table: str, key: str, **changes: Any) -> None:
        """Update a row's attributes."""
        self._unwrap(self._engine.update_row(self.txn_id, table, key, changes))

    def delete_row(self, table: str, key: str) -> None:
        """Delete a row."""
        self._unwrap(self._engine.delete_row(self.txn_id, table, key))

    def commit(self) -> None:
        """Commit (raises :class:`TransactionAborted` on a commit-time abort)."""
        self._unwrap(self._engine.commit(self.txn_id))

    def abort(self) -> None:
        """Roll back."""
        self._unwrap(self._engine.abort(self.txn_id))


class Session:
    """A connection-like facade over one engine instance.

    Multiple transactions may be open at once (they share the engine), which
    is how the quickstart example demonstrates snapshot reads: open T1, open
    T2, let T1 write and commit, and observe that T2 still sees its snapshot.
    """

    def __init__(self, database: Database,
                 level: IsolationLevelName = IsolationLevelName.SERIALIZABLE,
                 **options: Any):
        self.database = database
        self.level = level
        self.engine = make_engine(database, level, **options)
        self._next_txn = 0

    def begin(self) -> Transaction:
        """Start a new transaction."""
        self._next_txn += 1
        self.engine.begin(self._next_txn)
        return Transaction(self.engine, self._next_txn)
