"""Core formalism of the paper: histories, phenomena, isolation levels, hierarchy.

This package contains the paper's primary contribution in executable form:

* :mod:`repro.core.operations` / :mod:`repro.core.history` — the action and
  history model, with a parser for the paper's shorthand notation.
* :mod:`repro.core.dependency` — dependency graphs and conflict
  serializability (Section 2.1).
* :mod:`repro.core.phenomena` — detectors for P0–P4, P4C, A1–A3, A5A, A5B.
* :mod:`repro.core.isolation` — the phenomenon-based isolation level
  definitions of Tables 1 and 3.
* :mod:`repro.core.hierarchy` — the weaker/stronger/incomparable relations and
  the Figure 2 lattice.
* :mod:`repro.core.mv_analysis` — multiversion history analysis and the MV→SV
  mapping used to place Snapshot Isolation (Section 4.2).
* :mod:`repro.core.catalog` — the paper's named example histories H1–H5,
  H1.SI, and the dirty-write examples.
"""

from .operations import (
    Operation,
    OperationKind,
    WriteAction,
    abort,
    commit,
    cursor_read,
    cursor_write,
    predicate_read,
    predicate_write,
    read,
    write,
)
from .history import History, HistoryError, parse_history
from .dependency import (
    DependencyEdge,
    DependencyGraph,
    build_dependency_graph,
    equivalent_serial_orders,
    histories_equivalent,
    is_serializable,
)
from .phenomena import (
    ALL_PHENOMENA,
    BROAD_PHENOMENA,
    STRICT_ANOMALIES,
    Occurrence,
    Phenomenon,
    by_code,
    detect_all,
)
from .isolation import (
    ANSI_BROAD_LEVELS,
    ANSI_STRICT_LEVELS,
    CORRECTED_LEVELS,
    DEGREE_0,
    IsolationLevelName,
    PhenomenonBasedLevel,
    Possibility,
    TABLE_1,
    TABLE_3,
    TRUE_SERIALIZABLE,
    level_by_name,
)
from .hierarchy import (
    FIGURE_2_EDGES,
    FIGURE_2_INCOMPARABLE,
    REMARKS,
    ComparisonResult,
    Figure2Edge,
    Relation,
    compare_levels,
    declared_order,
    is_declared_weaker,
)
from .mv_analysis import (
    mv_is_serializable,
    mv_serialization_graph,
    mv_to_sv,
    reads_from,
    same_dataflow,
)
from .catalog import CATALOG, PaperHistory, by_name

__all__ = [
    # operations / history
    "Operation", "OperationKind", "WriteAction", "read", "write", "cursor_read",
    "cursor_write", "predicate_read", "predicate_write", "commit", "abort",
    "History", "HistoryError", "parse_history",
    # dependency
    "DependencyEdge", "DependencyGraph", "build_dependency_graph",
    "equivalent_serial_orders", "histories_equivalent", "is_serializable",
    # phenomena
    "ALL_PHENOMENA", "BROAD_PHENOMENA", "STRICT_ANOMALIES", "Occurrence",
    "Phenomenon", "by_code", "detect_all",
    # isolation
    "ANSI_BROAD_LEVELS", "ANSI_STRICT_LEVELS", "CORRECTED_LEVELS", "DEGREE_0",
    "IsolationLevelName", "PhenomenonBasedLevel", "Possibility", "TABLE_1",
    "TABLE_3", "TRUE_SERIALIZABLE", "level_by_name",
    # hierarchy
    "FIGURE_2_EDGES", "FIGURE_2_INCOMPARABLE", "REMARKS", "ComparisonResult",
    "Figure2Edge", "Relation", "compare_levels", "declared_order",
    "is_declared_weaker",
    # mv analysis
    "mv_is_serializable", "mv_serialization_graph", "mv_to_sv", "reads_from",
    "same_dataflow",
    # catalog
    "CATALOG", "PaperHistory", "by_name",
]
