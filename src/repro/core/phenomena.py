"""Phenomenon and anomaly detectors (P0–P4, P4C, A1–A3, A5A, A5B).

The paper's central move is to distinguish *strict* interpretations of the
ANSI phenomena (A1, A2, A3 — actual anomalies that have already produced a
wrong result) from *broad* interpretations (P1, P2, P3 — patterns that might
lead to an anomaly), to add the Dirty Write phenomenon P0, and to introduce
the multiversion-era anomalies P4 (Lost Update), P4C (Cursor Lost Update),
A5A (Read Skew) and A5B (Write Skew).

Every detector in this module pattern-matches a :class:`~repro.core.history.History`
and reports *occurrences* — the concrete operations that instantiate the
forbidden subsequence — so that tests, the anomaly matrix (Table 4), and the
hierarchy analysis (Figure 2) can all reuse the same machinery.

Interpretation notes
--------------------
* For the broad phenomena (P0–P3) the trailing ``(c1 or a1)`` in the paper's
  final definitions (Remark 5) only says that T1 terminates *after* the
  interfering action.  A history prefix in which T1 has not yet terminated
  still exhibits the dangerous pattern, so we report a match in that case too.
* P3's corrected definition covers any write (insert, update, or delete)
  affecting the predicate once it has been read, not just inserts.
* A5B (Write Skew) is matched in its symmetric form: two committed
  transactions each read an item the other subsequently writes.  This is the
  generalisation the paper's prose describes ("T1 reads x and y ... then a T2
  reads x and y, writes x, and commits.  Then T1 writes y.") and it matches
  history H5.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from .history import History
from .operations import Operation, OperationKind

__all__ = [
    "Occurrence",
    "HistoryIndex",
    "Phenomenon",
    "P0_DIRTY_WRITE",
    "P1_DIRTY_READ",
    "P2_FUZZY_READ",
    "P3_PHANTOM",
    "A1_DIRTY_READ_STRICT",
    "A2_FUZZY_READ_STRICT",
    "A3_PHANTOM_STRICT",
    "P4_LOST_UPDATE",
    "P4C_CURSOR_LOST_UPDATE",
    "A5A_READ_SKEW",
    "A5B_WRITE_SKEW",
    "ALL_PHENOMENA",
    "BROAD_PHENOMENA",
    "STRICT_ANOMALIES",
    "by_code",
    "detect_all",
    "detect_flags",
]


@dataclass(frozen=True)
class Occurrence:
    """A concrete instantiation of a phenomenon inside a history."""

    phenomenon: str
    transactions: Tuple[int, ...]
    items: Tuple[str, ...]
    indices: Tuple[int, ...]
    description: str

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.phenomenon}: {self.description}"


class HistoryIndex:
    """Grouped (index, operation) views of one history, shared by the detectors.

    Every detector used to rescan the full operation list and filter by item /
    transaction in its inner loops; grouping once per history turns those
    inner loops into walks over exactly the candidates that can match.  All
    per-item / per-transaction lists preserve global history order, so a
    detector iterating a grouped list visits the same operations in the same
    order as the original full-scan-and-filter — occurrence output is
    byte-identical.
    """

    __slots__ = ("history", "reads", "writes", "cursor_reads",
                 "predicate_reads", "predicate_writes",
                 "reads_by_item", "writes_by_item", "reads_by_txn",
                 "writes_by_txn", "predicate_writes_by_predicate",
                 "terminals")

    def __init__(self, history: History):
        self.history = history
        self.reads: List[Tuple[int, Operation]] = []
        self.writes: List[Tuple[int, Operation]] = []
        self.cursor_reads: List[Tuple[int, Operation]] = []
        self.predicate_reads: List[Tuple[int, Operation]] = []
        self.predicate_writes: List[Tuple[int, Operation]] = []
        self.reads_by_item: Dict[str, List[Tuple[int, Operation]]] = {}
        self.writes_by_item: Dict[str, List[Tuple[int, Operation]]] = {}
        self.reads_by_txn: Dict[int, List[Tuple[int, Operation]]] = {}
        self.writes_by_txn: Dict[int, List[Tuple[int, Operation]]] = {}
        self.predicate_writes_by_predicate: Dict[str, List[Tuple[int, Operation]]] = {}
        #: First terminal position per transaction (None entries omitted).
        self.terminals: Dict[int, int] = {}
        # Local bindings + get-or-create instead of setdefault: this loop runs
        # once per distinct history on the explorer's hot path, and setdefault
        # allocates a fresh empty list per call even on hits.
        reads = self.reads
        writes = self.writes
        cursor_reads = self.cursor_reads
        reads_by_item = self.reads_by_item
        writes_by_item = self.writes_by_item
        reads_by_txn = self.reads_by_txn
        writes_by_txn = self.writes_by_txn
        terminals = self.terminals
        commit = OperationKind.COMMIT
        abort = OperationKind.ABORT
        read = OperationKind.READ
        cursor_read = OperationKind.CURSOR_READ
        predicate_read = OperationKind.PREDICATE_READ
        for i, op in enumerate(history):
            kind = op.kind
            if kind is commit or kind is abort:
                if op.txn not in terminals:
                    terminals[op.txn] = i
                continue
            entry = (i, op)
            if kind is read or kind is cursor_read:
                reads.append(entry)
                group = reads_by_item.get(op.item)
                if group is None:
                    group = reads_by_item[op.item] = []
                group.append(entry)
                group = reads_by_txn.get(op.txn)
                if group is None:
                    group = reads_by_txn[op.txn] = []
                group.append(entry)
                if kind is cursor_read:
                    cursor_reads.append(entry)
            elif kind is predicate_read:
                self.predicate_reads.append(entry)
            elif kind.is_write:
                if op.item is not None:
                    writes.append(entry)
                    group = writes_by_item.get(op.item)
                    if group is None:
                        group = writes_by_item[op.item] = []
                    group.append(entry)
                    group = writes_by_txn.get(op.txn)
                    if group is None:
                        group = writes_by_txn[op.txn] = []
                    group.append(entry)
                if op.predicate is not None:
                    self.predicate_writes.append(entry)
                    self.predicate_writes_by_predicate.setdefault(
                        op.predicate, []).append(entry)

    _EMPTY: Tuple = ()

    def item_reads(self, item: Optional[str]) -> Sequence[Tuple[int, Operation]]:
        return self.reads_by_item.get(item, self._EMPTY)

    def item_writes(self, item: Optional[str]) -> Sequence[Tuple[int, Operation]]:
        return self.writes_by_item.get(item, self._EMPTY)

    def txn_reads(self, txn: int) -> Sequence[Tuple[int, Operation]]:
        return self.reads_by_txn.get(txn, self._EMPTY)

    def txn_writes(self, txn: int) -> Sequence[Tuple[int, Operation]]:
        return self.writes_by_txn.get(txn, self._EMPTY)


class Phenomenon:
    """Base class for a named phenomenon / anomaly detector."""

    #: Short code used in the paper ("P0", "A5B", ...).
    code: str = ""
    #: Human-readable name ("Dirty Write", "Write Skew", ...).
    name: str = ""
    #: "broad" for phenomena (P*), "strict" for anomalies (A*).
    interpretation: str = "broad"

    def _scan(self, history: History, index: HistoryIndex) -> Iterator[Occurrence]:
        """Yield occurrences lazily, in the canonical (outer-loop) order."""
        raise NotImplementedError

    def find(self, history: History,
             index: Optional[HistoryIndex] = None) -> List[Occurrence]:
        """All occurrences of the phenomenon in the history.

        ``index`` lets a caller running several detectors over the same
        history (``detect_all``, the explorer's classifier) share one
        :class:`HistoryIndex`; without it each detector builds its own.
        """
        return list(self._scan(history, self._index_for(history, index)))

    def occurs_in(self, history: History,
                  index: Optional[HistoryIndex] = None) -> bool:
        """True when the phenomenon occurs at least once.

        Short-circuits on the first occurrence.  Detectors override
        :meth:`_occurs` with a plain boolean loop — same candidate walk as
        :meth:`_scan`, minus the generator frames and the
        :class:`Occurrence` rendering — so the explorer's classifier (which
        only records presence booleans) skips the occurrence machinery
        entirely.  ``tests/property`` gates ``occurs_in == bool(find())``.
        """
        return self._occurs(history, self._index_for(history, index))

    def _occurs(self, history: History, index: HistoryIndex) -> bool:
        """Boolean twin of :meth:`_scan` (default: drive the scan lazily)."""
        for _ in self._scan(history, index):
            return True
        return False

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{self.code} {self.name}>"

    # -- shared helpers --------------------------------------------------------

    @staticmethod
    def _index_for(history: History,
                   index: Optional[HistoryIndex]) -> HistoryIndex:
        return index if index is not None else HistoryIndex(history)


class DirtyWrite(Phenomenon):
    """P0: ``w1[x]...w2[x]...(c1 or a1)``.

    T2 writes a data item that T1 has written and T1 has not yet terminated.
    The paper argues (Remark 3) that *every* isolation level must forbid this,
    both because constraints between items can be violated and because
    before-image recovery becomes impossible.
    """

    code = "P0"
    name = "Dirty Write"
    interpretation = "broad"

    def _scan(self, history: History,
              index: HistoryIndex) -> Iterator[Occurrence]:
        terminals = index.terminals
        for i, first in index.writes:
            terminal = terminals.get(first.txn)
            for j, second in index.item_writes(first.item):
                if j <= i or first.txn == second.txn:
                    continue
                if terminal is None or j < terminal:
                    yield Occurrence(
                        phenomenon=self.code,
                        transactions=(first.txn, second.txn),
                        items=(first.item,),
                        indices=(i, j),
                        description=(
                            f"T{second.txn} overwrites {first.item} while "
                            f"T{first.txn}'s write is uncommitted"
                        ),
                    )

    def _occurs(self, history: History, index: HistoryIndex) -> bool:
        terminals = index.terminals
        item_writes = index.item_writes
        for i, first in index.writes:
            terminal = terminals.get(first.txn)
            txn = first.txn
            for j, second in item_writes(first.item):
                if j > i and second.txn != txn and (terminal is None or j < terminal):
                    return True
        return False


class DirtyRead(Phenomenon):
    """P1: ``w1[x]...r2[x]...(c1 or a1)``.

    T2 reads a data item that T1 has modified before T1 commits or aborts.
    The broad interpretation forbids the pattern regardless of how the
    transactions eventually terminate — this is what rules out the
    inconsistent-analysis history H1.
    """

    code = "P1"
    name = "Dirty Read"
    interpretation = "broad"

    def _scan(self, history: History,
              index: HistoryIndex) -> Iterator[Occurrence]:
        terminals = index.terminals
        for i, write_op in index.writes:
            terminal = terminals.get(write_op.txn)
            for j, read_op in index.item_reads(write_op.item):
                if j <= i or write_op.txn == read_op.txn:
                    continue
                if terminal is None or j < terminal:
                    yield Occurrence(
                        phenomenon=self.code,
                        transactions=(write_op.txn, read_op.txn),
                        items=(write_op.item,),
                        indices=(i, j),
                        description=(
                            f"T{read_op.txn} reads {write_op.item} written by "
                            f"uncommitted T{write_op.txn}"
                        ),
                    )

    def _occurs(self, history: History, index: HistoryIndex) -> bool:
        terminals = index.terminals
        item_reads = index.item_reads
        for i, write_op in index.writes:
            terminal = terminals.get(write_op.txn)
            txn = write_op.txn
            for j, read_op in item_reads(write_op.item):
                if j > i and read_op.txn != txn and (terminal is None or j < terminal):
                    return True
        return False


class FuzzyRead(Phenomenon):
    """P2: ``r1[x]...w2[x]...(c1 or a1)``.

    T2 modifies a data item that T1 has read while T1 is still active.  This
    broad interpretation (rather than the strict A2, which requires T1 to
    reread the item) is needed to rule out history H2.
    """

    code = "P2"
    name = "Fuzzy Read (Non-repeatable Read)"
    interpretation = "broad"

    def _scan(self, history: History,
              index: HistoryIndex) -> Iterator[Occurrence]:
        terminals = index.terminals
        for i, read_op in index.reads:
            terminal = terminals.get(read_op.txn)
            for j, write_op in index.item_writes(read_op.item):
                if j <= i or read_op.txn == write_op.txn:
                    continue
                if terminal is None or j < terminal:
                    yield Occurrence(
                        phenomenon=self.code,
                        transactions=(read_op.txn, write_op.txn),
                        items=(read_op.item,),
                        indices=(i, j),
                        description=(
                            f"T{write_op.txn} writes {read_op.item} after T{read_op.txn} "
                            f"read it and before T{read_op.txn} terminated"
                        ),
                    )

    def _occurs(self, history: History, index: HistoryIndex) -> bool:
        terminals = index.terminals
        item_writes = index.item_writes
        for i, read_op in index.reads:
            terminal = terminals.get(read_op.txn)
            txn = read_op.txn
            for j, write_op in item_writes(read_op.item):
                if j > i and write_op.txn != txn and (terminal is None or j < terminal):
                    return True
        return False


class Phantom(Phenomenon):
    """P3: ``r1[P]...w2[y in P]...(c1 or a1)``.

    T1 reads the set of items satisfying a predicate; T2 then performs a
    write (insert, update, or delete) affecting that predicate's extent while
    T1 is still active.  Note the corrected definition covers *any* write, not
    only the inserts that the ANSI English text mentions.
    """

    code = "P3"
    name = "Phantom"
    interpretation = "broad"

    def _scan(self, history: History,
              index: HistoryIndex) -> Iterator[Occurrence]:
        terminals = index.terminals
        for i, read_op in index.predicate_reads:
            terminal = terminals.get(read_op.txn)
            for j, write_op in index.predicate_writes_by_predicate.get(
                    read_op.predicate, ()):
                if j <= i or read_op.txn == write_op.txn:
                    continue
                if terminal is None or j < terminal:
                    yield Occurrence(
                        phenomenon=self.code,
                        transactions=(read_op.txn, write_op.txn),
                        items=tuple(filter(None, [write_op.item])),
                        indices=(i, j),
                        description=(
                            f"T{write_op.txn} changes the extent of predicate "
                            f"{read_op.predicate} read by active T{read_op.txn}"
                        ),
                    )


class DirtyReadStrict(Phenomenon):
    """A1: ``w1[x]...r2[x]...(a1 and c2 in either order)``.

    The strict (anomaly) interpretation of Dirty Read: T2 actually commits
    having read data that T1 then aborts.  Section 3 shows this is too weak —
    history H1 is non-serializable yet contains no A1.
    """

    code = "A1"
    name = "Dirty Read (strict)"
    interpretation = "strict"

    def _scan(self, history: History,
              index: HistoryIndex) -> Iterator[Occurrence]:
        for i, write_op in index.writes:
            if not history.aborts(write_op.txn):
                continue
            abort_index = history.terminal_index(write_op.txn)
            for j, read_op in index.item_reads(write_op.item):
                if j <= i or read_op.txn == write_op.txn:
                    continue
                if not history.commits(read_op.txn):
                    continue
                # The read must happen while T1's write is still uncommitted.
                if abort_index is not None and j > abort_index:
                    continue
                yield Occurrence(
                    phenomenon=self.code,
                    transactions=(write_op.txn, read_op.txn),
                    items=(write_op.item,),
                    indices=(i, j),
                    description=(
                        f"T{read_op.txn} committed after reading {write_op.item} "
                        f"written by T{write_op.txn}, which aborted"
                    ),
                )

    def _occurs(self, history: History, index: HistoryIndex) -> bool:
        aborted = history.aborted_set()
        committed = history.committed_set()
        if not aborted or not committed:
            return False
        item_reads = index.item_reads
        terminals = index.terminals
        for i, write_op in index.writes:
            txn = write_op.txn
            if txn not in aborted:
                continue
            abort_index = terminals.get(txn)
            for j, read_op in item_reads(write_op.item):
                if j <= i or read_op.txn == txn:
                    continue
                if read_op.txn not in committed:
                    continue
                if abort_index is not None and j > abort_index:
                    continue
                return True
        return False


class FuzzyReadStrict(Phenomenon):
    """A2: ``r1[x]...w2[x]...c2...r1[x]...c1``.

    The strict Non-repeatable Read: T1 reads an item twice, with a committed
    update by T2 in between, and T1 commits.
    """

    code = "A2"
    name = "Fuzzy Read (strict)"
    interpretation = "strict"

    def _scan(self, history: History,
              index: HistoryIndex) -> Iterator[Occurrence]:
        for i, first_read in index.reads:
            if not history.commits(first_read.txn):
                continue
            for j, write_op in index.item_writes(first_read.item):
                if j <= i or write_op.txn == first_read.txn:
                    continue
                commit_index = history.terminal_index(write_op.txn)
                if not history.commits(write_op.txn) or commit_index is None or commit_index < j:
                    continue
                for k, second_read in index.item_reads(first_read.item):
                    if k <= commit_index:
                        continue
                    if second_read.txn != first_read.txn:
                        continue
                    yield Occurrence(
                        phenomenon=self.code,
                        transactions=(first_read.txn, write_op.txn),
                        items=(first_read.item,),
                        indices=(i, j, k),
                        description=(
                            f"T{first_read.txn} reread {first_read.item} after a "
                            f"committed update by T{write_op.txn}"
                        ),
                    )

    def _occurs(self, history: History, index: HistoryIndex) -> bool:
        committed = history.committed_set()
        item_writes = index.item_writes
        item_reads = index.item_reads
        terminals = index.terminals
        for i, first_read in index.reads:
            txn = first_read.txn
            if txn not in committed:
                continue
            for j, write_op in item_writes(first_read.item):
                if j <= i or write_op.txn == txn:
                    continue
                commit_index = terminals.get(write_op.txn)
                if write_op.txn not in committed or commit_index is None or commit_index < j:
                    continue
                for k, second_read in item_reads(first_read.item):
                    if k > commit_index and second_read.txn == txn:
                        return True
        return False


class PhantomStrict(Phenomenon):
    """A3: ``r1[P]...w2[y in P]...c2...r1[P]...c1``.

    The strict Phantom: T1 evaluates the same predicate twice and sees a
    different set because of a committed write by T2 in between.
    """

    code = "A3"
    name = "Phantom (strict)"
    interpretation = "strict"

    def _scan(self, history: History,
              index: HistoryIndex) -> Iterator[Occurrence]:
        predicate_reads = index.predicate_reads
        for i, first_read in predicate_reads:
            if not history.commits(first_read.txn):
                continue
            for j, write_op in index.predicate_writes_by_predicate.get(
                    first_read.predicate, ()):
                if j <= i or write_op.txn == first_read.txn:
                    continue
                commit_index = history.terminal_index(write_op.txn)
                if not history.commits(write_op.txn) or commit_index is None or commit_index < j:
                    continue
                for k, second_read in predicate_reads:
                    if k <= commit_index:
                        continue
                    if second_read.txn != first_read.txn:
                        continue
                    if second_read.predicate != first_read.predicate:
                        continue
                    yield Occurrence(
                        phenomenon=self.code,
                        transactions=(first_read.txn, write_op.txn),
                        items=tuple(filter(None, [write_op.item])),
                        indices=(i, j, k),
                        description=(
                            f"T{first_read.txn} re-evaluated predicate "
                            f"{first_read.predicate} after a committed change by "
                            f"T{write_op.txn}"
                        ),
                    )


class LostUpdate(Phenomenon):
    """P4: ``r1[x]...w2[x]...w1[x]...c1``.

    T1 reads an item, T2 updates it, then T1 (based on its stale read) updates
    it and commits — T2's update is lost.  Section 4.1 uses P4 to place Cursor
    Stability strictly between READ COMMITTED and REPEATABLE READ.
    """

    code = "P4"
    name = "Lost Update"
    interpretation = "broad"

    def _scan(self, history: History,
              index: HistoryIndex) -> Iterator[Occurrence]:
        for i, read_op in index.reads:
            if not history.commits(read_op.txn):
                continue
            item_writes = index.item_writes(read_op.item)
            for j, other_write in item_writes:
                if j <= i or other_write.txn == read_op.txn:
                    continue
                for k, own_write in item_writes:
                    if k <= j or own_write.txn != read_op.txn:
                        continue
                    yield Occurrence(
                        phenomenon=self.code,
                        transactions=(read_op.txn, other_write.txn),
                        items=(read_op.item,),
                        indices=(i, j, k),
                        description=(
                            f"T{read_op.txn} overwrote {read_op.item} based on a read "
                            f"that predates T{other_write.txn}'s update"
                        ),
                    )

    def _occurs(self, history: History, index: HistoryIndex) -> bool:
        committed = history.committed_set()
        for i, read_op in index.reads:
            txn = read_op.txn
            if txn not in committed:
                continue
            item_writes = index.item_writes(read_op.item)
            for j, other_write in item_writes:
                if j <= i or other_write.txn == txn:
                    continue
                for k, own_write in item_writes:
                    if k > j and own_write.txn == txn:
                        return True
        return False


class CursorLostUpdate(Phenomenon):
    """P4C: ``rc1[x]...w2[x]...w1[x]...c1``.

    The cursor form of Lost Update.  Cursor Stability holds a lock on the
    current row of a cursor, so a read through a cursor followed by a write of
    the same row cannot be interleaved with another transaction's write.
    """

    code = "P4C"
    name = "Cursor Lost Update"
    interpretation = "broad"

    def _scan(self, history: History,
              index: HistoryIndex) -> Iterator[Occurrence]:
        for i, read_op in index.cursor_reads:
            if not history.commits(read_op.txn):
                continue
            item_writes = index.item_writes(read_op.item)
            for j, other_write in item_writes:
                if j <= i or other_write.txn == read_op.txn:
                    continue
                for k, own_write in item_writes:
                    if k <= j or own_write.txn != read_op.txn:
                        continue
                    yield Occurrence(
                        phenomenon=self.code,
                        transactions=(read_op.txn, other_write.txn),
                        items=(read_op.item,),
                        indices=(i, j, k),
                        description=(
                            f"T{read_op.txn} lost T{other_write.txn}'s update to "
                            f"{read_op.item} read through a cursor"
                        ),
                    )

    def _occurs(self, history: History, index: HistoryIndex) -> bool:
        if not index.cursor_reads:
            return False
        committed = history.committed_set()
        for i, read_op in index.cursor_reads:
            txn = read_op.txn
            if txn not in committed:
                continue
            item_writes = index.item_writes(read_op.item)
            for j, other_write in item_writes:
                if j <= i or other_write.txn == txn:
                    continue
                for k, own_write in item_writes:
                    if k > j and own_write.txn == txn:
                        return True
        return False


class ReadSkew(Phenomenon):
    """A5A: ``r1[x]...w2[x]...w2[y]...c2...r1[y]...(c1 or a1)`` with x ≠ y.

    T1 reads x; T2 then updates both x and y and commits; T1 then reads y and
    sees a state in which a constraint between x and y may not hold
    (inconsistent analysis across two items).
    """

    code = "A5A"
    name = "Read Skew"
    interpretation = "strict"

    def _scan(self, history: History,
              index: HistoryIndex) -> Iterator[Occurrence]:
        for i, first_read in index.reads:
            for j, write_x in index.item_writes(first_read.item):
                if j <= i or write_x.txn == first_read.txn:
                    continue
                if not history.commits(write_x.txn):
                    continue
                commit_index = history.terminal_index(write_x.txn)
                if commit_index is None or commit_index < j:
                    continue
                for k, write_y in index.txn_writes(write_x.txn):
                    if write_y.item == write_x.item:
                        continue
                    if not (i < k < commit_index or i < j < commit_index):
                        continue
                    for m, second_read in index.item_reads(write_y.item):
                        if m <= commit_index or second_read.txn != first_read.txn:
                            continue
                        yield Occurrence(
                            phenomenon=self.code,
                            transactions=(first_read.txn, write_x.txn),
                            items=(first_read.item, write_y.item),
                            indices=(i, j, k, m),
                            description=(
                                f"T{first_read.txn} read {first_read.item} before and "
                                f"{write_y.item} after T{write_x.txn}'s committed update "
                                f"of both"
                            ),
                        )

    def _occurs(self, history: History, index: HistoryIndex) -> bool:
        committed = history.committed_set()
        if not committed or not index.writes or not index.reads:
            return False
        item_writes = index.item_writes
        item_reads = index.item_reads
        txn_writes = index.txn_writes
        terminals = index.terminals
        for i, first_read in index.reads:
            txn = first_read.txn
            for j, write_x in item_writes(first_read.item):
                if j <= i or write_x.txn == txn:
                    continue
                if write_x.txn not in committed:
                    continue
                commit_index = terminals.get(write_x.txn)
                if commit_index is None or commit_index < j:
                    continue
                for k, write_y in txn_writes(write_x.txn):
                    if write_y.item == write_x.item:
                        continue
                    if not (i < k < commit_index or i < j < commit_index):
                        continue
                    for m, second_read in item_reads(write_y.item):
                        if m > commit_index and second_read.txn == txn:
                            return True
        return False


class WriteSkew(Phenomenon):
    """A5B: ``r1[x]...r2[y]...w1[y]...w2[x]...(c1 and c2 occur)`` with x ≠ y.

    Each of two committed transactions reads an item that the other writes
    afterwards.  Each preserves a constraint over {x, y} in isolation, but the
    interleaving can violate it (history H5).  Snapshot Isolation admits A5B;
    REPEATABLE READ does not (Remark 9).
    """

    code = "A5B"
    name = "Write Skew"
    interpretation = "strict"

    def _scan(self, history: History,
              index: HistoryIndex) -> Iterator[Occurrence]:
        committed = history.committed_transactions()
        for i, read_x in index.reads:
            if read_x.txn not in committed:
                continue
            for j, write_x in index.item_writes(read_x.item):
                if j <= i or write_x.txn == read_x.txn:
                    continue
                if write_x.txn not in committed:
                    continue
                t1, t2 = read_x.txn, write_x.txn
                # Now look for the mirror-image dependency on a different item.
                for k, read_y in index.txn_reads(t2):
                    if read_y.item == read_x.item:
                        continue
                    for m, write_y in index.item_writes(read_y.item):
                        if m <= k or write_y.txn != t1:
                            continue
                        yield Occurrence(
                            phenomenon=self.code,
                            transactions=(t1, t2),
                            items=(read_x.item, read_y.item),
                            indices=(i, j, k, m),
                            description=(
                                f"T{t1} and T{t2} each read one of "
                                f"{{{read_x.item}, {read_y.item}}} and wrote the other"
                            ),
                        )

    def _occurs(self, history: History, index: HistoryIndex) -> bool:
        committed = history.committed_set()
        if len(committed) < 2 or not index.writes or not index.reads:
            return False
        item_writes = index.item_writes
        txn_reads = index.txn_reads
        for i, read_x in index.reads:
            t1 = read_x.txn
            if t1 not in committed:
                continue
            for j, write_x in item_writes(read_x.item):
                if j <= i or write_x.txn == t1:
                    continue
                t2 = write_x.txn
                if t2 not in committed:
                    continue
                for k, read_y in txn_reads(t2):
                    if read_y.item == read_x.item:
                        continue
                    for m, write_y in item_writes(read_y.item):
                        if m > k and write_y.txn == t1:
                            return True
        return False


# -- registry ---------------------------------------------------------------------

P0_DIRTY_WRITE = DirtyWrite()
P1_DIRTY_READ = DirtyRead()
P2_FUZZY_READ = FuzzyRead()
P3_PHANTOM = Phantom()
A1_DIRTY_READ_STRICT = DirtyReadStrict()
A2_FUZZY_READ_STRICT = FuzzyReadStrict()
A3_PHANTOM_STRICT = PhantomStrict()
P4_LOST_UPDATE = LostUpdate()
P4C_CURSOR_LOST_UPDATE = CursorLostUpdate()
A5A_READ_SKEW = ReadSkew()
A5B_WRITE_SKEW = WriteSkew()

#: Every detector defined by the paper, keyed by its code.
ALL_PHENOMENA: Dict[str, Phenomenon] = {
    detector.code: detector
    for detector in (
        P0_DIRTY_WRITE,
        P1_DIRTY_READ,
        P2_FUZZY_READ,
        P3_PHANTOM,
        A1_DIRTY_READ_STRICT,
        A2_FUZZY_READ_STRICT,
        A3_PHANTOM_STRICT,
        P4_LOST_UPDATE,
        P4C_CURSOR_LOST_UPDATE,
        A5A_READ_SKEW,
        A5B_WRITE_SKEW,
    )
}

#: The broad phenomena of Remark 5 (plus P4/P4C used for the intermediate levels).
BROAD_PHENOMENA: Tuple[Phenomenon, ...] = (
    P0_DIRTY_WRITE, P1_DIRTY_READ, P2_FUZZY_READ, P3_PHANTOM,
    P4_LOST_UPDATE, P4C_CURSOR_LOST_UPDATE,
)

#: The strict anomalies (ANSI A1–A3 and the constraint-violation anomalies A5A/A5B).
STRICT_ANOMALIES: Tuple[Phenomenon, ...] = (
    A1_DIRTY_READ_STRICT, A2_FUZZY_READ_STRICT, A3_PHANTOM_STRICT,
    A5A_READ_SKEW, A5B_WRITE_SKEW,
)


#: Detector tuple reused by detect_all/detect_flags (list(...) per call adds up).
_ALL_DETECTORS: Tuple[Phenomenon, ...] = tuple(ALL_PHENOMENA.values())


def by_code(code: str) -> Phenomenon:
    """Look up a detector by its paper code (case-insensitive)."""
    try:
        return ALL_PHENOMENA[code.upper()]
    except KeyError:
        raise KeyError(f"unknown phenomenon code: {code!r}") from None


def detect_all(history: History,
               codes: Optional[Iterable[str]] = None,
               index: Optional[HistoryIndex] = None) -> Dict[str, List[Occurrence]]:
    """Run every (or the selected) detectors over a history.

    Returns a mapping from phenomenon code to the list of occurrences (which
    may be empty).  Useful for building the anomaly matrices of Tables 1 and 4.
    One :class:`HistoryIndex` is built (or taken from ``index``) and shared
    across all the detectors.
    """
    selected = (
        [by_code(code) for code in codes] if codes is not None
        else _ALL_DETECTORS
    )
    if index is None:
        index = HistoryIndex(history)
    return {detector.code: detector.find(history, index) for detector in selected}


def detect_flags(history: History,
                 codes: Optional[Iterable[str]] = None,
                 index: Optional[HistoryIndex] = None) -> Dict[str, bool]:
    """Presence booleans for every (or the selected) phenomenon.

    The cheap sibling of :func:`detect_all`: each detector short-circuits on
    its first occurrence instead of enumerating all of them.  Used by the
    schedule explorer's classifier, which only records which phenomena occur.
    """
    selected = (
        [by_code(code) for code in codes] if codes is not None
        else _ALL_DETECTORS
    )
    if index is None:
        index = HistoryIndex(history)
    return {detector.code: detector._occurs(history, index) for detector in selected}
