"""Histories: linear orderings of transaction actions, plus the shorthand parser.

A *history* models the interleaved execution of a set of transactions as a
linear ordering of their actions (Section 2.1).  The paper writes histories in
a compact shorthand, e.g. the inconsistent-analysis history H1::

    r1[x=50] w1[x=10] r2[x=10] r2[y=50] c2 r1[y=50] w1[y=90] c1

This module provides:

* :class:`History` — an immutable sequence of :class:`~repro.core.operations.Operation`
  objects with the query helpers used by the phenomenon detectors and the
  dependency-graph builder.
* :func:`parse_history` — a parser for the paper's shorthand, including
  predicate operations (``r1[P]``, ``w2[y in P]``, ``w2[insert y to P]``),
  cursor operations (``rc1[x]``, ``wc1[x]``), and multiversion items
  (``x0``, ``x1`` as in history H1.SI).
"""

from __future__ import annotations

import re
from typing import Dict, FrozenSet, Iterable, Iterator, List, Optional, Set, Tuple

from .operations import Operation, OperationKind, WriteAction

__all__ = ["History", "HistoryError", "parse_history"]


class HistoryError(ValueError):
    """Raised for malformed histories or unparseable shorthand."""


_TOKEN_RE = re.compile(
    r"""
    (?P<kind>rc|wc|r|w|c|a)      # operation kind
    (?P<txn>\d+)                 # transaction number
    (?:\[(?P<body>[^\]]*)\])?    # optional bracketed body
    """,
    re.VERBOSE,
)

_VERSIONED_ITEM_RE = re.compile(r"^(?P<item>[A-Za-z_]+)(?P<version>\d+)$")


class History:
    """An ordered sequence of operations by a set of transactions.

    The class is deliberately value-like: instances are immutable once built,
    hashable when their operations are, and support slicing, concatenation,
    and the containment / ordering queries that the anomaly detectors need.
    """

    def __init__(self, operations: Iterable[Operation], name: Optional[str] = None,
                 validate: bool = True):
        """``validate=False`` skips the well-formedness scan — for callers
        whose operations are well-formed by construction (the schedule
        runner's realized histories, the MV analysis rewrites)."""
        self._ops: Tuple[Operation, ...] = tuple(operations)
        self.name = name
        # Lazily computed caches — sound because instances are immutable.
        self._committed_cache: Optional[FrozenSet[int]] = None
        self._aborted_cache: Optional[FrozenSet[int]] = None
        self._terminal_cache: Optional[Dict[int, int]] = None
        self._hash: Optional[int] = None
        self._mv_cache: Optional[bool] = None
        if validate:
            self._validate()

    # -- construction / validation ------------------------------------------------

    def _validate(self) -> None:
        finished: Set[int] = set()
        for op in self._ops:
            if op.txn in finished:
                raise HistoryError(
                    f"transaction T{op.txn} performs {op.to_shorthand()} after terminating"
                )
            if op.is_terminal:
                finished.add(op.txn)

    @classmethod
    def parse(cls, text: str, name: Optional[str] = None,
              multiversion: bool = False) -> "History":
        """Parse the paper's shorthand notation.  See :func:`parse_history`."""
        return parse_history(text, name=name, multiversion=multiversion)

    # -- sequence protocol ----------------------------------------------------------

    def __len__(self) -> int:
        return len(self._ops)

    def __iter__(self) -> Iterator[Operation]:
        return iter(self._ops)

    def __getitem__(self, index):
        if isinstance(index, slice):
            return History(self._ops[index], name=self.name)
        return self._ops[index]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, History):
            return NotImplemented
        return self._ops == other._ops

    def __hash__(self) -> int:
        if self._hash is None:
            self._hash = hash(self._ops)
        return self._hash

    def __add__(self, other: "History") -> "History":
        if not isinstance(other, History):
            return NotImplemented
        return History(self._ops + other._ops)

    def __repr__(self) -> str:
        label = f" {self.name!r}" if self.name else ""
        return f"<History{label}: {self.to_shorthand()}>"

    # -- basic accessors --------------------------------------------------------------

    @property
    def operations(self) -> Tuple[Operation, ...]:
        """The operations of the history, in order."""
        return self._ops

    def to_shorthand(self) -> str:
        """Render the history back into the paper's shorthand."""
        return " ".join(op.to_shorthand() for op in self._ops)

    def transactions(self) -> List[int]:
        """All transaction identifiers, in order of first appearance."""
        seen: List[int] = []
        for op in self._ops:
            if op.txn not in seen:
                seen.append(op.txn)
        return seen

    def committed_transactions(self) -> Set[int]:
        """Transactions that commit in this history (a fresh, mutable set)."""
        return set(self.committed_set())

    def committed_set(self) -> FrozenSet[int]:
        """Transactions that commit, as the cached frozenset (do not mutate).

        The copy-free sibling of :meth:`committed_transactions` for hot paths
        (the explorer's classifier and detectors) that only test membership.
        """
        cached = self._committed_cache
        if cached is None:
            commit = OperationKind.COMMIT
            cached = self._committed_cache = frozenset(
                op.txn for op in self._ops if op.kind is commit
            )
        return cached

    def aborted_transactions(self) -> Set[int]:
        """Transactions that abort in this history (a fresh, mutable set)."""
        return set(self.aborted_set())

    def aborted_set(self) -> FrozenSet[int]:
        """Transactions that abort, as the cached frozenset (do not mutate)."""
        cached = self._aborted_cache
        if cached is None:
            abort = OperationKind.ABORT
            cached = self._aborted_cache = frozenset(
                op.txn for op in self._ops if op.kind is abort
            )
        return cached

    def active_transactions(self) -> Set[int]:
        """Transactions with no commit or abort in the history."""
        return set(self.transactions()) - self.committed_transactions() - self.aborted_transactions()

    def is_complete(self) -> bool:
        """True when every transaction ends with a commit or an abort."""
        return not self.active_transactions()

    def operations_of(self, txn: int) -> List[Operation]:
        """All operations of one transaction, in history order."""
        return [op for op in self._ops if op.txn == txn]

    def items(self) -> Set[str]:
        """All data items named anywhere in the history."""
        return {op.item for op in self._ops if op.item is not None}

    def predicates(self) -> Set[str]:
        """All predicates named anywhere in the history."""
        return {op.predicate for op in self._ops if op.predicate is not None}

    def is_multiversion(self) -> bool:
        """True when any operation carries a version subscript."""
        if self._mv_cache is None:
            self._mv_cache = any(op.version is not None for op in self._ops)
        return self._mv_cache

    # -- positional queries -------------------------------------------------------------

    def index_of(self, op: Operation) -> int:
        """The position of an operation (identity-or-equality based)."""
        for i, candidate in enumerate(self._ops):
            if candidate is op or candidate == op:
                return i
        raise HistoryError(f"operation {op.to_shorthand()} not in history")

    def terminal_of(self, txn: int) -> Optional[Operation]:
        """The commit or abort of a transaction, or None if still active."""
        for op in self._ops:
            if op.txn == txn and op.is_terminal:
                return op
        return None

    def terminal_index(self, txn: int) -> Optional[int]:
        """Index of a transaction's commit/abort, or None if still active."""
        if self._terminal_cache is None:
            cache: Dict[int, int] = {}
            commit = OperationKind.COMMIT
            abort = OperationKind.ABORT
            for i, op in enumerate(self._ops):
                kind = op.kind
                if (kind is commit or kind is abort) and op.txn not in cache:
                    cache[op.txn] = i
            self._terminal_cache = cache
        return self._terminal_cache.get(txn)

    def commits(self, txn: int) -> bool:
        """True when the transaction commits."""
        return txn in self.committed_set()

    def aborts(self, txn: int) -> bool:
        """True when the transaction aborts."""
        return txn in self.aborted_set()

    def first_index(self, txn: int, kind: OperationKind, item: Optional[str] = None) -> Optional[int]:
        """Index of the first operation of a given kind (and item) by a txn."""
        for i, op in enumerate(self._ops):
            if op.txn == txn and op.kind is kind and (item is None or op.item == item):
                return i
        return None

    def reads_of(self, item: str) -> List[Tuple[int, Operation]]:
        """(index, op) pairs for every read of the item (plain or cursor)."""
        return [
            (i, op)
            for i, op in enumerate(self._ops)
            if op.kind in (OperationKind.READ, OperationKind.CURSOR_READ) and op.item == item
        ]

    def writes_of(self, item: str) -> List[Tuple[int, Operation]]:
        """(index, op) pairs for every write of the item (plain, cursor, or predicate)."""
        return [
            (i, op)
            for i, op in enumerate(self._ops)
            if op.is_write and op.item == item
        ]

    # -- derived histories ------------------------------------------------------------------

    def committed_projection(self) -> "History":
        """The history restricted to operations of committed transactions.

        The dependency graph of a history is defined over the actions of its
        committed transactions (Section 2.1), so serializability checks work
        on this projection.
        """
        committed = self.committed_transactions()
        return History([op for op in self._ops if op.txn in committed], name=self.name)

    def without_transaction(self, txn: int) -> "History":
        """The history with one transaction's operations removed."""
        return History([op for op in self._ops if op.txn != txn], name=self.name)

    def prefix(self, length: int) -> "History":
        """The first ``length`` operations as a new history."""
        return History(self._ops[:length], name=self.name)

    def is_serial(self) -> bool:
        """True when transactions execute one at a time, never interleaved."""
        current: Optional[int] = None
        finished: Set[int] = set()
        for op in self._ops:
            if op.txn in finished:
                return False
            if current is None:
                current = op.txn
            elif op.txn != current:
                # The previous transaction must have terminated already.
                return False
            if op.is_terminal:
                finished.add(op.txn)
                current = None
        return True

    def serial_order(self) -> Optional[List[int]]:
        """The transaction order if the history is serial, else None."""
        if not self.is_serial():
            return None
        order: List[int] = []
        for op in self._ops:
            if op.txn not in order:
                order.append(op.txn)
        return order

    def conflicting_pairs(self) -> List[Tuple[int, int, Operation, Operation]]:
        """All ordered pairs of conflicting operations.

        Returns tuples ``(i, j, op_i, op_j)`` with ``i < j`` and
        ``op_i.conflicts_with(op_j)``.
        """
        pairs: List[Tuple[int, int, Operation, Operation]] = []
        for i, earlier in enumerate(self._ops):
            if not earlier.kind.is_data_access:
                continue
            for j in range(i + 1, len(self._ops)):
                later = self._ops[j]
                if not later.kind.is_data_access:
                    continue
                if earlier.conflicts_with(later):
                    pairs.append((i, j, earlier, later))
        return pairs

    # -- value tracking -----------------------------------------------------------------------

    def final_written_values(self) -> Dict[str, object]:
        """Last committed written value per item, for histories that record values."""
        values: Dict[str, object] = {}
        committed = self.committed_transactions()
        for op in self._ops:
            if op.is_write and op.txn in committed and op.item is not None and op.value is not None:
                values[op.item] = op.value
        return values


def _parse_body(kind: str, txn: int, body: Optional[str],
                multiversion: bool) -> Operation:
    """Turn one shorthand token into an Operation."""
    if kind == "c":
        return Operation(OperationKind.COMMIT, txn)
    if kind == "a":
        return Operation(OperationKind.ABORT, txn)
    if body is None or body.strip() == "":
        raise HistoryError(f"operation '{kind}{txn}' requires a bracketed data item")
    body = body.strip()

    # Split off a recorded value: "x=50", "x1=10", "x=-40".
    value: object = None
    target = body
    if "=" in body and " in " not in body and not body.startswith("insert") \
            and not body.startswith("delete"):
        target, _, raw_value = body.partition("=")
        target = target.strip()
        value = _coerce_value(raw_value.strip())

    if kind in ("rc", "wc"):
        item, version = _split_version(target, multiversion)
        op_kind = OperationKind.CURSOR_READ if kind == "rc" else OperationKind.CURSOR_WRITE
        return Operation(op_kind, txn, item=item, value=value, version=version)

    # Predicate forms: "P", "insert y to P", "delete y from P", "y in P".
    insert_match = re.match(r"^insert\s+(\w+)\s+(?:to|into)\s+(\w+)$", target)
    delete_match = re.match(r"^delete\s+(\w+)\s+from\s+(\w+)$", target)
    update_match = re.match(r"^(\w+)\s+in\s+(\w+)$", target)

    if kind == "w":
        if insert_match:
            return Operation(OperationKind.PREDICATE_WRITE, txn,
                             item=insert_match.group(1), predicate=insert_match.group(2),
                             write_action=WriteAction.INSERT, value=value)
        if delete_match:
            return Operation(OperationKind.PREDICATE_WRITE, txn,
                             item=delete_match.group(1), predicate=delete_match.group(2),
                             write_action=WriteAction.DELETE, value=value)
        if update_match:
            return Operation(OperationKind.PREDICATE_WRITE, txn,
                             item=update_match.group(1), predicate=update_match.group(2),
                             write_action=WriteAction.UPDATE, value=value)
        item, version = _split_version(target, multiversion)
        return Operation(OperationKind.WRITE, txn, item=item, value=value, version=version)

    # kind == "r"
    if _looks_like_predicate(target):
        return Operation(OperationKind.PREDICATE_READ, txn, predicate=target)
    item, version = _split_version(target, multiversion)
    return Operation(OperationKind.READ, txn, item=item, value=value, version=version)


def _looks_like_predicate(name: str) -> bool:
    """Heuristic from the paper's notation: predicates are capitalized (``P``)."""
    return bool(re.match(r"^[A-Z]\w*$", name))


def _split_version(target: str, multiversion: bool) -> Tuple[str, Optional[int]]:
    """Split ``x0`` into ``("x", 0)`` when parsing a multiversion history."""
    if not multiversion:
        return target, None
    match = _VERSIONED_ITEM_RE.match(target)
    if match:
        return match.group("item"), int(match.group("version"))
    return target, None


def _coerce_value(raw: str) -> object:
    """Interpret recorded values as ints/floats when possible, else strings."""
    try:
        return int(raw)
    except ValueError:
        pass
    try:
        return float(raw)
    except ValueError:
        return raw


def parse_history(text: str, name: Optional[str] = None,
                  multiversion: bool = False) -> History:
    """Parse the paper's shorthand into a :class:`History`.

    Parameters
    ----------
    text:
        Shorthand such as ``"r1[x=50] w1[x=10] r2[x=10] c2 c1"``.  Whitespace
        and the paper's filler ellipses (``...``) are ignored.
    name:
        An optional label (e.g. ``"H1"``), carried on the resulting history.
    multiversion:
        When True, trailing digits on item names are interpreted as version
        subscripts (``x0`` is version 0 of item ``x``), matching the paper's
        MV histories such as H1.SI.

    Raises
    ------
    HistoryError
        If any token cannot be parsed or the history is malformed (for
        example, a transaction acting after it committed).
    """
    cleaned = text.replace(".", " ").strip()
    if not cleaned:
        return History([], name=name)
    operations: List[Operation] = []
    position = 0
    while position < len(cleaned):
        if cleaned[position].isspace():
            position += 1
            continue
        match = _TOKEN_RE.match(cleaned, position)
        if not match:
            raise HistoryError(
                f"cannot parse history at: {cleaned[position:position + 20]!r}"
            )
        operations.append(
            _parse_body(match.group("kind"), int(match.group("txn")),
                        match.group("body"), multiversion)
        )
        position = match.end()
    return History(operations, name=name)
