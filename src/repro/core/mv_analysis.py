"""Multiversion history analysis: reads-from, MV serialization graphs, MV→SV mapping.

Section 4.2 of the paper places Snapshot Isolation in the isolation hierarchy
by mapping multiversion (MV) histories to single-valued (SV) histories while
preserving dataflow dependencies — "the only rigorous touchstone needed".
The worked example is history H1.SI, whose dataflows are serializable, mapping
to the serializable SV history H1.SI.SV.

This module provides:

* :func:`reads_from` — the reads-from relation of a history (works for both MV
  histories, where reads name the version they see, and SV histories, where a
  read sees the most recent preceding write).
* :func:`mv_serialization_graph` — a multiversion serialization graph built
  from the declared version order; acyclicity implies the MV history is
  equivalent to a serial one-copy history.
* :func:`mv_to_sv` — the paper's MV→SV mapping: each committed transaction's
  snapshot reads are placed at its start point and its writes just before its
  commit, reproducing H1.SI → H1.SI.SV.
* :func:`same_dataflow` — checks that an MV history and an SV history have the
  same reads-from relation and the same final writes (view equivalence).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple

from .dependency import DependencyEdge, DependencyGraph
from .history import History
from .operations import Operation, OperationKind

__all__ = [
    "ReadsFromEntry",
    "reads_from",
    "assign_write_versions",
    "mv_serialization_graph",
    "mv_is_serializable",
    "mv_to_sv",
    "final_writers",
    "same_dataflow",
]


@dataclass(frozen=True)
class ReadsFromEntry:
    """One entry of the reads-from relation.

    ``writer`` is ``None`` when the read sees the initial database state
    (version 0 in the paper's notation, or no preceding write in an SV
    history).
    """

    reader: int
    item: str
    writer: Optional[int]
    read_index: int


def _version_writers(history: History) -> Dict[Tuple[str, int], int]:
    """Map (item, version) to the transaction that wrote that version."""
    writers: Dict[Tuple[str, int], int] = {}
    for op in history:
        if op.is_write and op.item is not None and op.version is not None:
            writers[(op.item, op.version)] = op.txn
    return writers


def reads_from(history: History) -> List[ReadsFromEntry]:
    """The reads-from relation of a history.

    For multiversion histories (any operation carries a version) a read of
    ``x<v>`` reads from the transaction that wrote version ``v`` of ``x``, or
    from the initial state when no transaction in the history wrote it.  For
    single-version histories a read sees the most recent preceding write of
    the same item by any transaction (its own writes included), or the initial
    state.
    """
    entries: List[ReadsFromEntry] = []
    if history.is_multiversion():
        writers = _version_writers(history)
        for index, op in enumerate(history):
            if not op.is_read or op.item is None:
                continue
            writer = writers.get((op.item, op.version)) if op.version is not None else None
            entries.append(ReadsFromEntry(op.txn, op.item, writer, index))
        return entries

    last_writer: Dict[str, int] = {}
    for index, op in enumerate(history):
        if op.is_read and op.item is not None:
            entries.append(
                ReadsFromEntry(op.txn, op.item, last_writer.get(op.item), index)
            )
        if op.is_write and op.item is not None:
            last_writer[op.item] = op.txn
    return entries


def assign_write_versions(history: History,
                          initial_items: Optional[Iterable[str]] = None) -> History:
    """Stamp committed writes with the version subscripts their commits install.

    The multiversion engines record on each *read* the index of the version it
    saw in the committed version chain, but a write's version index only exists
    once the transaction commits and installs it — so realized MV histories
    come back with versioned reads and unversioned writes, and the MV
    serialization graph would be edgeless.  This pass replays the commit order:
    when a transaction commits, each item it wrote gains one new version at the
    next chain index, and every write of that item by the transaction is
    stamped with it.  Writes of uncommitted or aborted transactions stay
    unversioned — they never install a version.

    ``initial_items`` names the items present in the initial database, whose
    version chains start with the initial state at index 0 (so the first
    committed write installs index 1).  Items *not* listed have no initial
    version and their first committed write installs index 0 — matching the
    engines' chain numbering, which readers' subscripts refer to.  When
    ``initial_items`` is None every item is assumed to pre-exist (the common
    case for the seeded workloads); pass the real initial item set when
    transactions create items, or first-write stamps will be off by one
    relative to their readers.

    Version-``None`` *reads* are completed as well, since the engines leave
    two kinds of read unversioned:

    * A read of the transaction's own buffered write gets the version that
      write installs, so ``mv_to_sv`` keeps it at the commit point instead of
      mistaking it for a snapshot read.
    * A read of an item absent from the initial database (nothing visible yet)
      gets the virtual version ``-1``, which orders before every installed
      version — preserving the read's anti-dependency toward the item's
      eventual creators in the MV serialization graph.

    Histories that are not multiversion, or with no unversioned data access,
    are returned unchanged.
    """
    if not history.is_multiversion():
        return history
    write = OperationKind.WRITE
    cursor_write = OperationKind.CURSOR_WRITE
    predicate_write = OperationKind.PREDICATE_WRITE
    read = OperationKind.READ
    cursor_read = OperationKind.CURSOR_READ
    predicate_read = OperationKind.PREDICATE_READ
    commit = OperationKind.COMMIT
    if all(op.version is not None for op in history
           if op.kind.is_data_access and op.item is not None):
        return history
    preexisting = None if initial_items is None else set(initial_items)
    pending: Dict[int, Dict[str, List[int]]] = {}
    versions: Dict[int, int] = {}
    next_version: Dict[str, int] = {}
    for index, op in enumerate(history):
        kind = op.kind
        if (op.item is not None and op.version is None
                and (kind is write
                     or kind is cursor_write
                     or kind is predicate_write)):
            pending.setdefault(op.txn, {}).setdefault(op.item, []).append(index)
        elif kind is commit:
            for item, write_indices in pending.pop(op.txn, {}).items():
                if item not in next_version:
                    has_initial = preexisting is None or item in preexisting
                    next_version[item] = 1 if has_initial else 0
                else:
                    next_version[item] += 1
                for write_index in write_indices:
                    versions[write_index] = next_version[item]

    # Second pass: complete unversioned reads now that write stamps are known.
    last_own_write: Dict[Tuple[int, str], int] = {}
    for index, op in enumerate(history):
        if op.item is None:
            continue
        kind = op.kind
        if ((kind is read or kind is cursor_read or kind is predicate_read)
                and op.version is None and index not in versions):
            key = (op.txn, op.item)
            own_index = last_own_write.get(key)
            if own_index is not None:
                own_version = versions.get(own_index, history[own_index].version)
                if own_version is not None:
                    versions[index] = own_version
            elif preexisting is not None and op.item not in preexisting:
                versions[index] = -1
        elif kind is write or kind is cursor_write or kind is predicate_write:
            last_own_write[(op.txn, op.item)] = index

    operations = [
        _stamp_version(op, versions[index]) if index in versions else op
        for index, op in enumerate(history)
    ]
    return History(operations, name=history.name, validate=False)


#: Interned version-stamped operations, keyed by (source op, version).
_STAMP_CACHE: Dict[Tuple[Operation, int], Operation] = {}


def _stamp_version(op: Operation, version: int) -> Operation:
    """A copy of ``op`` carrying a version subscript (interned when hashable)."""
    try:
        cached = _STAMP_CACHE.get((op, version))
    except TypeError:
        return Operation(op.kind, op.txn, item=op.item, value=op.value,
                         version=version, predicate=op.predicate,
                         write_action=op.write_action)
    if cached is None:
        cached = Operation(op.kind, op.txn, item=op.item, value=op.value,
                           version=version, predicate=op.predicate,
                           write_action=op.write_action)
        if len(_STAMP_CACHE) < 100_000:
            _STAMP_CACHE[(op, version)] = cached
    return cached


def mv_serialization_graph(history: History) -> DependencyGraph:
    """The multiversion serialization graph of a committed MV history.

    Nodes are the committed transactions.  Edges follow the standard MVSG
    construction for the version order given by the version subscripts:

    * ``wr``: the writer of a version precedes every committed reader of it.
    * ``ww``: the writer of an earlier version of an item precedes the writer
      of a later version.
    * ``rw``: a committed reader of version ``m`` of an item precedes the
      writer of any later version ``n > m``.
    """
    committed = history.committed_transactions()
    # One pass builds everything the edge rules need: the (item, version) ->
    # writer map, the per-item version lists (in first-appearance order, the
    # same order iterating the writer map filtered by item used to produce),
    # and the first write operation per (item, version, txn) — replacing the
    # per-edge full-history scans of ``_find_write``.
    writers: Dict[Tuple[str, int], int] = {}
    versions_by_item: Dict[str, List[int]] = {}
    first_write: Dict[Tuple[str, int, int], Operation] = {}
    for op in history:
        if op.is_write and op.item is not None and op.version is not None:
            key = (op.item, op.version)
            if key not in writers:
                versions_by_item.setdefault(op.item, []).append(op.version)
            writers[key] = op.txn
            first_write.setdefault((op.item, op.version, op.txn), op)
    nodes = [txn for txn in history.transactions() if txn in committed]
    edges: List[DependencyEdge] = []
    seen: set = set()

    def add_edge(source: int, target: int, kind: str, item: str,
                 source_op: Operation, target_op: Operation) -> None:
        if source == target or source not in committed or target not in committed:
            return
        key = (source, target, kind, item)
        if key in seen:
            return
        seen.add(key)
        edges.append(DependencyEdge(source, target, kind, item, source_op, target_op))

    def write_op(item: str, version: int, txn: int) -> Operation:
        try:
            return first_write[(item, version, txn)]
        except KeyError:
            raise ValueError(f"no write of {item}{version} by T{txn} in history") from None

    # wr and rw edges from reads.
    for op in history:
        if not op.is_read or op.item is None or op.version is None:
            continue
        if op.txn not in committed:
            continue
        writer = writers.get((op.item, op.version))
        if writer is not None:
            add_edge(writer, op.txn, "wr", op.item,
                     write_op(op.item, op.version, writer), op)
        for version in versions_by_item.get(op.item, ()):
            if version <= op.version:
                continue
            other_writer = writers[(op.item, version)]
            add_edge(op.txn, other_writer, "rw", op.item, op,
                     write_op(op.item, version, other_writer))

    # ww edges from the version order.
    for item, versions in versions_by_item.items():
        ordered = sorted((version, writers[(item, version)]) for version in versions)
        for (earlier_version, earlier_writer), (later_version, later_writer) in zip(
                ordered, ordered[1:]):
            add_edge(earlier_writer, later_writer, "ww", item,
                     write_op(item, earlier_version, earlier_writer),
                     write_op(item, later_version, later_writer))

    return DependencyGraph(nodes, edges)


def mv_is_serializable(history: History) -> bool:
    """True when the MV serialization graph of the history is acyclic."""
    return mv_serialization_graph(history).is_acyclic()


def mv_to_sv(history: History) -> History:
    """Map a multiversion history to a single-valued history (Section 4.2).

    Each transaction's reads of *foreign* versions (versions it did not write
    itself, including the initial state) are placed at the transaction's start
    point; its writes, reads of its own versions, and terminal operation are
    placed at its commit (or abort) point.  Ties keep the original relative
    order.  This reproduces the paper's H1.SI → H1.SI.SV example.
    """
    ops_by_txn: Dict[int, List[Operation]] = {}
    first_index: Dict[int, int] = {}
    for position, op in enumerate(history):
        txn = op.txn
        ops = ops_by_txn.get(txn)
        if ops is None:
            ops = ops_by_txn[txn] = []
            first_index[txn] = position
        ops.append(op)
    read = OperationKind.READ
    cursor_read = OperationKind.CURSOR_READ
    predicate_read = OperationKind.PREDICATE_READ
    events: List[Tuple[int, int, List[Operation]]] = []
    for order, txn in enumerate(ops_by_txn):
        ops = ops_by_txn[txn]
        own_versions = {
            (op.item, op.version) for op in ops if op.is_write and op.version is not None
        }
        snapshot_reads: List[Operation] = []
        commit_block: List[Operation] = []
        for op in ops:
            stripped = _strip_version(op)
            kind = op.kind
            if ((kind is read or kind is cursor_read or kind is predicate_read)
                    and (op.item, op.version) not in own_versions):
                snapshot_reads.append(stripped)
            else:
                commit_block.append(stripped)
        start_time = first_index[txn]
        terminal_index = history.terminal_index(txn)
        commit_time = terminal_index if terminal_index is not None else len(history) + order
        events.append((start_time, order, snapshot_reads))
        events.append((commit_time, order, commit_block))
    events.sort(key=lambda event: (event[0], event[1]))
    operations: List[Operation] = []
    for _, _, block in events:
        operations.extend(block)
    suffix = ".SV"
    name = f"{history.name}{suffix}" if history.name else None
    return History(operations, name=name, validate=False)


#: Interned version-stripped operations: the explorer's MV classification maps
#: the same (interned) versioned operations over and over.
_STRIP_CACHE: Dict[Operation, Operation] = {}


def _strip_version(op: Operation) -> Operation:
    """Drop the version subscript from an operation (for the SV rendering)."""
    if op.version is None:
        return op
    try:
        cached = _STRIP_CACHE.get(op)
    except TypeError:  # unhashable recorded value
        return Operation(op.kind, op.txn, item=op.item, value=op.value,
                         predicate=op.predicate, write_action=op.write_action)
    if cached is None:
        cached = Operation(op.kind, op.txn, item=op.item, value=op.value,
                           predicate=op.predicate, write_action=op.write_action)
        if len(_STRIP_CACHE) < 100_000:
            _STRIP_CACHE[op] = cached
    return cached


def final_writers(history: History) -> Dict[str, Optional[int]]:
    """The transaction whose committed write is last for each item."""
    committed = history.committed_transactions()
    result: Dict[str, Optional[int]] = {}
    if history.is_multiversion():
        writers = _version_writers(history)
        per_item: Dict[str, List[Tuple[int, int]]] = {}
        for (item, version), writer in writers.items():
            if writer in committed:
                per_item.setdefault(item, []).append((version, writer))
        for item, versions in per_item.items():
            result[item] = max(versions)[1] if versions else None
        return result
    for op in history:
        if op.is_write and op.item is not None and op.txn in committed:
            result[op.item] = op.txn
    return result


def same_dataflow(mv_history: History, sv_history: History) -> bool:
    """View equivalence: same reads-from relation and same final writers.

    The reads-from relations are compared as sets of (reader, item, writer)
    triples, ignoring read positions, and only for committed readers.
    """
    def dataflow(history: History) -> set:
        committed = history.committed_transactions()
        return {
            (entry.reader, entry.item, entry.writer)
            for entry in reads_from(history)
            if entry.reader in committed
        }

    if dataflow(mv_history) != dataflow(sv_history):
        return False
    return final_writers(mv_history) == final_writers(sv_history)
