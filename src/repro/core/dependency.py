"""Dependency graphs, conflict serializability, and history equivalence.

Section 2.1 of the paper: a history gives rise to a *dependency graph* whose
nodes are the committed transactions and whose edges record the temporal data
flow between conflicting actions.  Two histories are equivalent if they have
the same committed transactions and the same dependency graph, and a history
is *serializable* if it is equivalent to some serial history — equivalently,
if its dependency graph is acyclic (the Serializability Theorem).

This module builds those graphs, tests for cycles, produces witness serial
orders, and classifies edges (write-read, read-write, write-write) so the
anomaly analysis can report *why* a history is non-serializable.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from .history import History
from .operations import Operation

__all__ = [
    "DependencyEdge",
    "DependencyGraph",
    "build_dependency_graph",
    "is_serializable",
    "equivalent_serial_orders",
    "histories_equivalent",
]


@dataclass(frozen=True)
class DependencyEdge:
    """A directed edge in the dependency graph.

    ``source`` precedes ``target``: an action of ``source`` conflicts with and
    comes before an action of ``target`` in the history.
    """

    source: int
    target: int
    kind: str  # "wr", "rw", or "ww"
    item: Optional[str]
    source_op: Operation
    target_op: Operation

    def describe(self) -> str:
        """A short human-readable description of the edge."""
        where = self.item if self.item is not None else self.source_op.predicate
        return (
            f"T{self.source} --{self.kind}[{where}]--> T{self.target}"
        )


def _edge_kind(earlier: Operation, later: Operation) -> str:
    """Classify a conflict edge: write→read, read→write, or write→write."""
    if earlier.is_write and later.is_write:
        return "ww"
    if earlier.is_write and later.is_read:
        return "wr"
    return "rw"


class DependencyGraph:
    """The dependency (conflict) graph of a history's committed transactions."""

    def __init__(self, nodes: Iterable[int], edges: Iterable[DependencyEdge]):
        self.nodes: List[int] = list(nodes)
        self.edges: List[DependencyEdge] = list(edges)
        self._adjacency: Dict[int, Set[int]] = {node: set() for node in self.nodes}
        for edge in self.edges:
            self._adjacency.setdefault(edge.source, set()).add(edge.target)
            self._adjacency.setdefault(edge.target, set())

    # -- structure ----------------------------------------------------------------

    def successors(self, node: int) -> Set[int]:
        """Transactions reachable by a single edge from ``node``."""
        return set(self._adjacency.get(node, set()))

    def edge_set(self) -> FrozenSet[Tuple[int, int]]:
        """The set of (source, target) pairs, ignoring labels and multiplicity."""
        return frozenset((edge.source, edge.target) for edge in self.edges)

    def edges_between(self, source: int, target: int) -> List[DependencyEdge]:
        """All labelled edges from ``source`` to ``target``."""
        return [e for e in self.edges if e.source == source and e.target == target]

    # -- cycles and serial orders ----------------------------------------------------

    def find_cycle(self) -> Optional[List[int]]:
        """A list of transactions forming a cycle, or None when acyclic."""
        WHITE, GREY, BLACK = 0, 1, 2
        colour: Dict[int, int] = {node: WHITE for node in self.nodes}
        parent: Dict[int, Optional[int]] = {}

        for start in self.nodes:
            if colour[start] != WHITE:
                continue
            stack: List[Tuple[int, Iterable[int]]] = [(start, iter(sorted(self.successors(start))))]
            colour[start] = GREY
            parent[start] = None
            while stack:
                node, children = stack[-1]
                advanced = False
                for child in children:
                    if colour.get(child, WHITE) == WHITE:
                        colour[child] = GREY
                        parent[child] = node
                        stack.append((child, iter(sorted(self.successors(child)))))
                        advanced = True
                        break
                    if colour.get(child) == GREY:
                        # Found a back edge: unwind the cycle node..child.
                        cycle = [child, node]
                        walker = parent[node]
                        while walker is not None and walker != child:
                            cycle.append(walker)
                            walker = parent[walker]
                        cycle.reverse()
                        return cycle
                if not advanced:
                    colour[node] = BLACK
                    stack.pop()
        return None

    def is_acyclic(self) -> bool:
        """True when the graph has no cycle (the history is serializable)."""
        return self.find_cycle() is None

    def topological_order(self) -> Optional[List[int]]:
        """One serial order consistent with the graph, or None if cyclic."""
        in_degree: Dict[int, int] = {node: 0 for node in self.nodes}
        for source, target in self.edge_set():
            in_degree[target] = in_degree.get(target, 0) + 1
        ready = sorted(node for node, degree in in_degree.items() if degree == 0)
        order: List[int] = []
        edges = self.edge_set()
        remaining = {node: degree for node, degree in in_degree.items()}
        while ready:
            node = ready.pop(0)
            order.append(node)
            for source, target in edges:
                if source == node:
                    remaining[target] -= 1
                    if remaining[target] == 0:
                        ready.append(target)
            ready.sort()
        if len(order) != len(self.nodes):
            return None
        return order

    def all_topological_orders(self, limit: int = 64) -> List[List[int]]:
        """Every serial order consistent with the graph (bounded by ``limit``)."""
        edges = self.edge_set()
        results: List[List[int]] = []

        def backtrack(remaining: List[int], acc: List[int]) -> None:
            if len(results) >= limit:
                return
            if not remaining:
                results.append(list(acc))
                return
            for node in list(remaining):
                blocked = any(
                    (other, node) in edges for other in remaining if other != node
                )
                if blocked:
                    continue
                next_remaining = [n for n in remaining if n != node]
                backtrack(next_remaining, acc + [node])

        backtrack(sorted(self.nodes), [])
        return results

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        edges = ", ".join(edge.describe() for edge in self.edges)
        return f"<DependencyGraph nodes={self.nodes} edges=[{edges}]>"


def build_dependency_graph(history: History,
                           committed_only: bool = True) -> DependencyGraph:
    """Build the dependency graph of a history.

    Parameters
    ----------
    history:
        Any history (single-version or multiversion — the conflict relation
        uses item names, so versions of the same item conflict as the paper's
        single-valued interpretation requires).
    committed_only:
        When True (the default, matching Section 2.1) only the actions of
        committed transactions become nodes and edges.
    """
    base = history.committed_projection() if committed_only else history
    nodes = base.transactions()
    edges: List[DependencyEdge] = []
    seen: Set[Tuple[int, int, str, Optional[str]]] = set()
    for i, j, earlier, later in base.conflicting_pairs():
        kind = _edge_kind(earlier, later)
        item = earlier.item if earlier.item is not None else later.item
        key = (earlier.txn, later.txn, kind, item)
        if key in seen:
            continue
        seen.add(key)
        edges.append(
            DependencyEdge(
                source=earlier.txn,
                target=later.txn,
                kind=kind,
                item=item,
                source_op=earlier,
                target_op=later,
            )
        )
    return DependencyGraph(nodes, edges)


def is_serializable(history: History) -> bool:
    """True when the history's committed projection is conflict-serializable."""
    return build_dependency_graph(history).is_acyclic()


def equivalent_serial_orders(history: History, limit: int = 64) -> List[List[int]]:
    """All serial transaction orders equivalent to the history (up to ``limit``)."""
    return build_dependency_graph(history).all_topological_orders(limit=limit)


def histories_equivalent(first: History, second: History) -> bool:
    """Equivalence per Section 2.1.

    Two histories are equivalent when they have the same committed
    transactions and the same dependency graph (same labelled edge sets).
    """
    first_graph = build_dependency_graph(first)
    second_graph = build_dependency_graph(second)
    if set(first_graph.nodes) != set(second_graph.nodes):
        return False

    def labelled_edges(graph: DependencyGraph) -> Set[Tuple[int, int, str, Optional[str]]]:
        return {(e.source, e.target, e.kind, e.item) for e in graph.edges}

    return labelled_edges(first_graph) == labelled_edges(second_graph)
