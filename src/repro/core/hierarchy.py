"""The isolation hierarchy: weaker / stronger / equivalent / incomparable.

Section 3 (Definition before Remark 1) defines the ordering used throughout
the paper:

* L1 is **weaker** than L2 (``L1 « L2``) when every non-serializable history
  allowed by L2 is also allowed by L1, and at least one non-serializable
  history allowed by L1 is forbidden by L2.
* L1 and L2 are **equivalent** (``L1 == L2``) when they allow exactly the same
  non-serializable histories.
* L1 and L2 are **incomparable** (``L1 »« L2``) when each allows a
  non-serializable history the other forbids.

Levels are compared *only* on the non-serializable histories they admit.

This module provides both the *empirical* comparison (evaluate two levels over
a corpus of histories) and the *declared* lattice of Figure 2 with its
annotated edges, plus the specific Remarks (1, 7, 8, 9, 10) as data so the
benchmarks can verify them.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Sequence, Set, Tuple

from .dependency import is_serializable
from .history import History
from .isolation import IsolationLevelName

__all__ = [
    "Relation",
    "compare_levels",
    "ComparisonResult",
    "Figure2Edge",
    "FIGURE_2_EDGES",
    "FIGURE_2_INCOMPARABLE",
    "REMARKS",
    "declared_order",
    "is_declared_weaker",
]

#: A level, for comparison purposes, is anything that can say whether it
#: permits a history.
Admits = Callable[[History], bool]


class Relation(enum.Enum):
    """The outcome of comparing two isolation levels."""

    WEAKER = "«"          # first is weaker than second
    STRONGER = "»"        # first is stronger than second
    EQUIVALENT = "=="
    INCOMPARABLE = "»«"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True)
class ComparisonResult:
    """The result of an empirical comparison over a history corpus."""

    relation: Relation
    #: Non-serializable histories permitted by the first level but not the second.
    only_first: Tuple[History, ...]
    #: Non-serializable histories permitted by the second level but not the first.
    only_second: Tuple[History, ...]
    #: How many non-serializable histories from the corpus both levels permit.
    shared: int

    def witnesses(self) -> Dict[str, List[str]]:
        """Shorthand renderings of the distinguishing histories."""
        return {
            "only_first": [h.to_shorthand() for h in self.only_first],
            "only_second": [h.to_shorthand() for h in self.only_second],
        }


def _admits(level: object) -> Admits:
    """Accept either a callable or an object exposing ``permits(history)``."""
    if callable(level) and not hasattr(level, "permits"):
        return level  # type: ignore[return-value]
    return level.permits  # type: ignore[union-attr]


def compare_levels(first: object, second: object,
                   corpus: Iterable[History]) -> ComparisonResult:
    """Compare two isolation levels over a corpus of histories.

    Only the non-serializable histories of the corpus matter (per the paper's
    definition); serializable histories are ignored.  The result is relative
    to the corpus: a richer corpus can only refine EQUIVALENT into one of the
    other relations, never the reverse.
    """
    first_admits = _admits(first)
    second_admits = _admits(second)
    only_first: List[History] = []
    only_second: List[History] = []
    shared = 0
    for history in corpus:
        if is_serializable(history):
            continue
        allowed_first = first_admits(history)
        allowed_second = second_admits(history)
        if allowed_first and allowed_second:
            shared += 1
        elif allowed_first and not allowed_second:
            only_first.append(history)
        elif allowed_second and not allowed_first:
            only_second.append(history)
    if only_first and only_second:
        relation = Relation.INCOMPARABLE
    elif only_first:
        relation = Relation.WEAKER
    elif only_second:
        relation = Relation.STRONGER
    else:
        relation = Relation.EQUIVALENT
    return ComparisonResult(
        relation=relation,
        only_first=tuple(only_first),
        only_second=tuple(only_second),
        shared=shared,
    )


# -- Figure 2: the declared lattice -------------------------------------------------


@dataclass(frozen=True)
class Figure2Edge:
    """An edge of Figure 2: ``lower « higher``, annotated with the phenomena
    (or anomalies) that differentiate the two levels."""

    lower: IsolationLevelName
    higher: IsolationLevelName
    differentiators: Tuple[str, ...]


#: The edges of Figure 2 (with the ANSI levels already strengthened per
#: Remark 5 / Table 3).  ``lower « higher`` along every edge.
FIGURE_2_EDGES: Tuple[Figure2Edge, ...] = (
    Figure2Edge(IsolationLevelName.DEGREE_0,
                IsolationLevelName.READ_UNCOMMITTED, ("P0",)),
    Figure2Edge(IsolationLevelName.READ_UNCOMMITTED,
                IsolationLevelName.READ_COMMITTED, ("P1",)),
    Figure2Edge(IsolationLevelName.READ_COMMITTED,
                IsolationLevelName.CURSOR_STABILITY, ("P4C",)),
    Figure2Edge(IsolationLevelName.READ_COMMITTED,
                IsolationLevelName.ORACLE_READ_CONSISTENCY, ("P4C",)),
    Figure2Edge(IsolationLevelName.CURSOR_STABILITY,
                IsolationLevelName.REPEATABLE_READ, ("P2", "P4")),
    Figure2Edge(IsolationLevelName.ORACLE_READ_CONSISTENCY,
                IsolationLevelName.SNAPSHOT_ISOLATION, ("A3", "A5A", "P4")),
    Figure2Edge(IsolationLevelName.REPEATABLE_READ,
                IsolationLevelName.SERIALIZABLE, ("P3",)),
    Figure2Edge(IsolationLevelName.SNAPSHOT_ISOLATION,
                IsolationLevelName.SERIALIZABLE, ("A5B",)),
)

#: Pairs of levels Figure 2 leaves unordered (each admits histories the other
#: forbids).  Remark 9 states REPEATABLE READ »« Snapshot Isolation.
FIGURE_2_INCOMPARABLE: Tuple[Tuple[IsolationLevelName, IsolationLevelName], ...] = (
    (IsolationLevelName.REPEATABLE_READ, IsolationLevelName.SNAPSHOT_ISOLATION),
    (IsolationLevelName.CURSOR_STABILITY, IsolationLevelName.ORACLE_READ_CONSISTENCY),
    (IsolationLevelName.CURSOR_STABILITY, IsolationLevelName.SNAPSHOT_ISOLATION),
    (IsolationLevelName.ORACLE_READ_CONSISTENCY, IsolationLevelName.REPEATABLE_READ),
)

#: The numbered remarks about level ordering, as (remark number, lower, relation, higher).
REMARKS: Tuple[Tuple[int, IsolationLevelName, Relation, IsolationLevelName], ...] = (
    (1, IsolationLevelName.READ_UNCOMMITTED, Relation.WEAKER, IsolationLevelName.READ_COMMITTED),
    (1, IsolationLevelName.READ_COMMITTED, Relation.WEAKER, IsolationLevelName.REPEATABLE_READ),
    (1, IsolationLevelName.REPEATABLE_READ, Relation.WEAKER, IsolationLevelName.SERIALIZABLE),
    (7, IsolationLevelName.READ_COMMITTED, Relation.WEAKER, IsolationLevelName.CURSOR_STABILITY),
    (7, IsolationLevelName.CURSOR_STABILITY, Relation.WEAKER, IsolationLevelName.REPEATABLE_READ),
    (8, IsolationLevelName.READ_COMMITTED, Relation.WEAKER, IsolationLevelName.SNAPSHOT_ISOLATION),
    (9, IsolationLevelName.REPEATABLE_READ, Relation.INCOMPARABLE, IsolationLevelName.SNAPSHOT_ISOLATION),
    (10, IsolationLevelName.ANOMALY_SERIALIZABLE, Relation.WEAKER, IsolationLevelName.SNAPSHOT_ISOLATION),
)


def _reachable(start: IsolationLevelName,
               edges: Sequence[Figure2Edge]) -> Set[IsolationLevelName]:
    """Levels reachable from ``start`` by following ``lower -> higher`` edges."""
    frontier = [start]
    seen: Set[IsolationLevelName] = set()
    while frontier:
        node = frontier.pop()
        for edge in edges:
            if edge.lower is node and edge.higher not in seen:
                seen.add(edge.higher)
                frontier.append(edge.higher)
    return seen


def is_declared_weaker(lower: IsolationLevelName,
                       higher: IsolationLevelName) -> bool:
    """True when Figure 2 declares ``lower « higher`` (transitively)."""
    return higher in _reachable(lower, FIGURE_2_EDGES)


def declared_order(first: IsolationLevelName,
                   second: IsolationLevelName) -> Relation:
    """The relation Figure 2 declares between two levels."""
    if first is second:
        return Relation.EQUIVALENT
    if is_declared_weaker(first, second):
        return Relation.WEAKER
    if is_declared_weaker(second, first):
        return Relation.STRONGER
    return Relation.INCOMPARABLE
