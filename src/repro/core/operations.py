"""Operations: the atomic actions that make up a transaction history.

The paper (Section 2.2) writes histories in a shorthand notation such as
``w1[x]`` (transaction 1 writes item ``x``), ``r2[x]`` (transaction 2 reads
``x``), ``r1[P]`` (transaction 1 reads the set of items satisfying predicate
``P``), ``c1`` / ``a1`` (commit / abort of transaction 1).  Section 4.1 extends
the notation with ``rc1[x]`` (read through a cursor) and ``wc1[x]`` (write the
current record of a cursor), and Section 4.2 uses versioned items such as
``x0`` / ``x1`` for multiversion (MV) histories.

This module defines the :class:`Operation` value object and the
:class:`OperationKind` enumeration used by every other part of the library.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Optional


class OperationKind(enum.Enum):
    """The kind of an action appearing in a history."""

    #: Identity hashing: kinds key the hottest caches in the repo (operation
    #: interning, history indexes), and Enum's default __hash__ re-hashes the
    #: member name on every lookup.  Members are singletons, so identity
    #: hashing is consistent with equality.
    __hash__ = object.__hash__

    READ = "r"
    WRITE = "w"
    CURSOR_READ = "rc"
    CURSOR_WRITE = "wc"
    PREDICATE_READ = "rP"
    PREDICATE_WRITE = "wP"
    COMMIT = "c"
    ABORT = "a"

    @property
    def is_read(self) -> bool:
        """True for item reads, cursor reads, and predicate reads."""
        return (self is OperationKind.READ
                or self is OperationKind.CURSOR_READ
                or self is OperationKind.PREDICATE_READ)

    @property
    def is_write(self) -> bool:
        """True for item writes, cursor writes, and predicate writes."""
        return (self is OperationKind.WRITE
                or self is OperationKind.CURSOR_WRITE
                or self is OperationKind.PREDICATE_WRITE)

    @property
    def is_terminal(self) -> bool:
        """True for commits and aborts."""
        return self is OperationKind.COMMIT or self is OperationKind.ABORT

    @property
    def is_data_access(self) -> bool:
        """True for any read or write, False for commit/abort."""
        return not (self is OperationKind.COMMIT or self is OperationKind.ABORT)

    @property
    def uses_predicate(self) -> bool:
        """True for predicate reads and predicate writes."""
        return (self is OperationKind.PREDICATE_READ
                or self is OperationKind.PREDICATE_WRITE)

    @property
    def uses_cursor(self) -> bool:
        """True for cursor reads and cursor writes."""
        return (self is OperationKind.CURSOR_READ
                or self is OperationKind.CURSOR_WRITE)


class WriteAction(enum.Enum):
    """The concrete mutation performed by a (predicate) write.

    The paper's corrected P3 explicitly covers *any* write affecting a tuple
    satisfying a predicate: an insert, an update, or a delete.
    """

    INSERT = "insert"
    UPDATE = "update"
    DELETE = "delete"

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value


@dataclass(frozen=True)
class Operation:
    """A single action in a history.

    Attributes
    ----------
    kind:
        What the action does (read, write, commit, ...).
    txn:
        The identifier of the transaction performing the action.  The paper
        uses small integers (``T1``, ``T2``), and so do we, but any hashable
        value works.
    item:
        The data item the action touches (``None`` for commits, aborts, and
        pure predicate reads).
    value:
        The value read or written, when the history records it
        (``r1[x=50]`` records a read of 50).  ``None`` when unknown.
    version:
        For multiversion histories: the version subscript of the item
        (``x0`` is version 0 of ``x``).  ``None`` in single-version histories.
    predicate:
        The name of the predicate for predicate reads/writes (``P`` in
        ``r1[P]`` or ``w2[y in P]``).
    write_action:
        For predicate writes, whether the write is an insert, update, or
        delete into the predicate's extent.
    """

    kind: OperationKind
    txn: int
    item: Optional[str] = None
    value: object = None
    version: Optional[int] = None
    predicate: Optional[str] = None
    write_action: Optional[WriteAction] = field(default=None)

    def __post_init__(self) -> None:
        if self.kind.is_terminal and self.item is not None:
            raise ValueError("commit/abort operations must not name a data item")
        if self.kind.uses_predicate and self.predicate is None:
            raise ValueError("predicate operations must name a predicate")
        if self.kind in (OperationKind.READ, OperationKind.WRITE,
                         OperationKind.CURSOR_READ, OperationKind.CURSOR_WRITE):
            if self.item is None:
                raise ValueError(f"{self.kind.name} operations must name a data item")

    def __hash__(self) -> int:
        # Operations are hashed constantly (history caches, classification
        # memos, interning); the dataclass-generated hash walks every field on
        # every call, so memoize it on the instance.  Consistent with the
        # generated __eq__, which compares the same field tuple.
        cached = self.__dict__.get("_hash")
        if cached is None:
            cached = hash((self.kind, self.txn, self.item, self.value,
                           self.version, self.predicate, self.write_action))
            object.__setattr__(self, "_hash", cached)
        return cached

    # -- classification helpers -------------------------------------------------

    @property
    def is_read(self) -> bool:
        return self.kind.is_read

    @property
    def is_write(self) -> bool:
        return self.kind.is_write

    @property
    def is_commit(self) -> bool:
        return self.kind is OperationKind.COMMIT

    @property
    def is_abort(self) -> bool:
        return self.kind is OperationKind.ABORT

    @property
    def is_terminal(self) -> bool:
        return self.kind.is_terminal

    def touches_item(self, item: str) -> bool:
        """True when this operation reads or writes the named item."""
        return self.item == item

    def same_item_as(self, other: "Operation") -> bool:
        """True when both operations name the same (non-None) data item."""
        return self.item is not None and self.item == other.item

    def conflicts_with(self, other: "Operation") -> bool:
        """Conflict test per Section 2.1.

        Two actions conflict when they are performed by distinct transactions
        on the same data item and at least one of them is a write.  Predicate
        operations conflict with operations on items the history marks as
        belonging to the predicate (the ``item`` field of a predicate write),
        and with other operations on the same predicate.
        """
        if self.txn == other.txn:
            return False
        if not (self.kind.is_data_access and other.kind.is_data_access):
            return False
        if not (self.is_write or other.is_write):
            return False
        # Plain item overlap.
        if self.item is not None and self.item == other.item:
            return True
        # Predicate overlap: a predicate op conflicts with any op on the same
        # predicate, and with any item op whose item is recorded as being in
        # the predicate (the paper's ``w2[y in P]`` notation).
        if self.predicate is not None and self.predicate == other.predicate:
            return True
        if self.predicate is not None and other.item is not None and other.predicate == self.predicate:
            return True
        return False

    # -- rendering ---------------------------------------------------------------

    def to_shorthand(self) -> str:
        """Render the operation in the paper's shorthand notation.

        Memoized per instance: realized operations are interned and rendered
        once per distinct operation instead of once per history occurrence.
        """
        cached = self.__dict__.get("_shorthand")
        if cached is None:
            cached = self._render_shorthand()
            object.__setattr__(self, "_shorthand", cached)
        return cached

    def _render_shorthand(self) -> str:
        if self.kind is OperationKind.COMMIT:
            return f"c{self.txn}"
        if self.kind is OperationKind.ABORT:
            return f"a{self.txn}"
        prefix = {
            OperationKind.READ: "r",
            OperationKind.WRITE: "w",
            OperationKind.CURSOR_READ: "rc",
            OperationKind.CURSOR_WRITE: "wc",
            OperationKind.PREDICATE_READ: "r",
            OperationKind.PREDICATE_WRITE: "w",
        }[self.kind]
        body = self._shorthand_body()
        return f"{prefix}{self.txn}[{body}]"

    def _shorthand_body(self) -> str:
        if self.kind is OperationKind.PREDICATE_READ:
            return self.predicate or "P"
        if self.kind is OperationKind.PREDICATE_WRITE:
            if self.write_action is WriteAction.INSERT:
                return f"insert {self.item} to {self.predicate}"
            if self.write_action is WriteAction.DELETE:
                return f"delete {self.item} from {self.predicate}"
            return f"{self.item} in {self.predicate}"
        name = self.item or ""
        if self.version is not None:
            name = f"{name}{self.version}"
        if self.value is not None:
            return f"{name}={self.value}"
        return name

    def __str__(self) -> str:  # pragma: no cover - delegates
        return self.to_shorthand()


# -- convenience constructors ----------------------------------------------------


def read(txn: int, item: str, value: object = None, version: Optional[int] = None) -> Operation:
    """Build ``r<txn>[item]`` (optionally versioned / valued)."""
    return Operation(OperationKind.READ, txn, item=item, value=value, version=version)


def write(txn: int, item: str, value: object = None, version: Optional[int] = None) -> Operation:
    """Build ``w<txn>[item]`` (optionally versioned / valued)."""
    return Operation(OperationKind.WRITE, txn, item=item, value=value, version=version)


def cursor_read(txn: int, item: str, value: object = None) -> Operation:
    """Build ``rc<txn>[item]`` — a read through a cursor (Section 4.1)."""
    return Operation(OperationKind.CURSOR_READ, txn, item=item, value=value)


def cursor_write(txn: int, item: str, value: object = None) -> Operation:
    """Build ``wc<txn>[item]`` — a write of the current record of a cursor."""
    return Operation(OperationKind.CURSOR_WRITE, txn, item=item, value=value)


def predicate_read(txn: int, predicate: str) -> Operation:
    """Build ``r<txn>[P]`` — a read of all items satisfying predicate ``P``."""
    return Operation(OperationKind.PREDICATE_READ, txn, predicate=predicate)


def predicate_write(
    txn: int,
    item: str,
    predicate: str,
    action: WriteAction = WriteAction.UPDATE,
) -> Operation:
    """Build ``w<txn>[item in P]`` — a write affecting the extent of ``P``."""
    return Operation(
        OperationKind.PREDICATE_WRITE,
        txn,
        item=item,
        predicate=predicate,
        write_action=action,
    )


def commit(txn: int) -> Operation:
    """Build ``c<txn>``."""
    return Operation(OperationKind.COMMIT, txn)


def abort(txn: int) -> Operation:
    """Build ``a<txn>``."""
    return Operation(OperationKind.ABORT, txn)
