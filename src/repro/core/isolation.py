"""Isolation level definitions (Tables 1 and 3) in terms of forbidden phenomena.

The ANSI SQL-92 levels of Table 1 forbid subsets of {Dirty Read, Fuzzy Read,
Phantom}, under either the strict (A1/A2/A3) or the broad (P1/P2/P3)
interpretation.  The paper's corrected definitions of Table 3 add P0 (Dirty
Write) to every level.  This module encodes both tables as data and as
executable *admissibility tests*: a history is admissible at a level when none
of the level's forbidden phenomena occur in it.

Snapshot Isolation and Cursor Stability cannot be captured this way — that is
one of the paper's conclusions (Section 5) — so those levels are defined
operationally by the engines in :mod:`repro.mvcc` and :mod:`repro.locking`,
and are represented here only by their *names* and their expected anomaly
profile (Table 4), which lives in :mod:`repro.analysis.matrix`.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List, Tuple

from .dependency import is_serializable
from .history import History
from .phenomena import Phenomenon, by_code

__all__ = [
    "IsolationLevelName",
    "Possibility",
    "PhenomenonBasedLevel",
    "ANSI_STRICT_LEVELS",
    "ANSI_BROAD_LEVELS",
    "CORRECTED_LEVELS",
    "TRUE_SERIALIZABLE",
    "TABLE_1",
    "TABLE_3",
    "level_by_name",
]


class IsolationLevelName(enum.Enum):
    """Every isolation level the paper names.

    The ``ANSI_*`` members refer to the (inadequate) Table 1 definitions based
    on the three original phenomena; the unprefixed members refer to the
    corrected Table 3 / Table 2 levels; the remaining members are the
    commercially popular levels of Section 4.
    """

    DEGREE_0 = "Degree 0"
    READ_UNCOMMITTED = "READ UNCOMMITTED"
    READ_COMMITTED = "READ COMMITTED"
    CURSOR_STABILITY = "Cursor Stability"
    REPEATABLE_READ = "REPEATABLE READ"
    SERIALIZABLE = "SERIALIZABLE"
    SNAPSHOT_ISOLATION = "Snapshot Isolation"
    ORACLE_READ_CONSISTENCY = "Oracle Read Consistency"
    ANSI_READ_UNCOMMITTED = "ANSI READ UNCOMMITTED"
    ANSI_READ_COMMITTED = "ANSI READ COMMITTED"
    ANSI_REPEATABLE_READ = "ANSI REPEATABLE READ"
    ANOMALY_SERIALIZABLE = "ANOMALY SERIALIZABLE"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


class Possibility(enum.Enum):
    """Cell values of the paper's tables."""

    POSSIBLE = "Possible"
    NOT_POSSIBLE = "Not Possible"
    SOMETIMES_POSSIBLE = "Sometimes Possible"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


@dataclass(frozen=True)
class PhenomenonBasedLevel:
    """An isolation level defined as "forbid these phenomena".

    Attributes
    ----------
    name:
        Which of the paper's named levels this definition realizes.
    forbidden:
        The codes of the forbidden phenomena (e.g. ``("P0", "P1")``).
    interpretation:
        ``"strict"`` when the level uses the A1/A2/A3 anomalies (the reading
        the paper criticizes), ``"broad"`` for P1/P2/P3, ``"corrected"`` for
        the Table 3 definitions that also forbid P0.
    """

    name: IsolationLevelName
    forbidden: Tuple[str, ...]
    interpretation: str = "corrected"
    description: str = ""

    @property
    def forbidden_phenomena(self) -> Tuple[Phenomenon, ...]:
        """The detector objects for the forbidden phenomena."""
        return tuple(by_code(code) for code in self.forbidden)

    def permits(self, history: History) -> bool:
        """True when no forbidden phenomenon occurs in the history."""
        return not self.violations(history)

    def violations(self, history: History) -> List[str]:
        """The codes of the forbidden phenomena that occur in the history."""
        return [
            code for code in self.forbidden if by_code(code).occurs_in(history)
        ]

    def forbids(self, code: str) -> bool:
        """True when the level forbids the phenomenon with the given code."""
        return code.upper() in {c.upper() for c in self.forbidden}

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        forbidden = ", ".join(self.forbidden) if self.forbidden else "nothing"
        return f"{self.name.value} [{self.interpretation}] forbids {forbidden}"


@dataclass(frozen=True)
class SerializableLevel:
    """The real SERIALIZABLE level: admissibility = conflict serializability.

    ANSI Subclause 4.28 requires "fully serializable execution"; the paper's
    point (the ANOMALY SERIALIZABLE row of Table 1) is that forbidding the
    three phenomena is *not* the same thing.  This class captures the real
    requirement so the two can be compared.
    """

    name: IsolationLevelName = IsolationLevelName.SERIALIZABLE
    interpretation: str = "graph"
    forbidden: Tuple[str, ...] = ("P0", "P1", "P2", "P3")

    def permits(self, history: History) -> bool:
        """True when the committed projection is conflict-serializable."""
        return is_serializable(history)

    def violations(self, history: History) -> List[str]:
        """["non-serializable"] when the dependency graph is cyclic."""
        return [] if self.permits(history) else ["non-serializable"]


# -- Table 1: the original ANSI definitions ------------------------------------------

ANSI_STRICT_LEVELS: Dict[IsolationLevelName, PhenomenonBasedLevel] = {
    IsolationLevelName.ANSI_READ_UNCOMMITTED: PhenomenonBasedLevel(
        IsolationLevelName.ANSI_READ_UNCOMMITTED, (), "strict",
        "Table 1 READ UNCOMMITTED: all three anomalies possible."),
    IsolationLevelName.ANSI_READ_COMMITTED: PhenomenonBasedLevel(
        IsolationLevelName.ANSI_READ_COMMITTED, ("A1",), "strict",
        "Table 1 READ COMMITTED under the strict interpretation: forbids A1."),
    IsolationLevelName.ANSI_REPEATABLE_READ: PhenomenonBasedLevel(
        IsolationLevelName.ANSI_REPEATABLE_READ, ("A1", "A2"), "strict",
        "Table 1 REPEATABLE READ under the strict interpretation."),
    IsolationLevelName.ANOMALY_SERIALIZABLE: PhenomenonBasedLevel(
        IsolationLevelName.ANOMALY_SERIALIZABLE, ("A1", "A2", "A3"), "strict",
        "Table 1 'ANOMALY SERIALIZABLE': forbids A1, A2, A3 — but is not "
        "actually serializable."),
}

ANSI_BROAD_LEVELS: Dict[IsolationLevelName, PhenomenonBasedLevel] = {
    IsolationLevelName.ANSI_READ_UNCOMMITTED: PhenomenonBasedLevel(
        IsolationLevelName.ANSI_READ_UNCOMMITTED, (), "broad",
        "Table 1 READ UNCOMMITTED with broad phenomena."),
    IsolationLevelName.ANSI_READ_COMMITTED: PhenomenonBasedLevel(
        IsolationLevelName.ANSI_READ_COMMITTED, ("P1",), "broad",
        "Table 1 READ COMMITTED with broad phenomena: forbids P1."),
    IsolationLevelName.ANSI_REPEATABLE_READ: PhenomenonBasedLevel(
        IsolationLevelName.ANSI_REPEATABLE_READ, ("P1", "P2"), "broad",
        "Table 1 REPEATABLE READ with broad phenomena."),
    IsolationLevelName.ANOMALY_SERIALIZABLE: PhenomenonBasedLevel(
        IsolationLevelName.ANOMALY_SERIALIZABLE, ("P1", "P2", "P3"), "broad",
        "Table 1 ANOMALY SERIALIZABLE with broad phenomena — still misses P0."),
}

# -- Table 3: the corrected definitions (Remark 5) ----------------------------------

CORRECTED_LEVELS: Dict[IsolationLevelName, PhenomenonBasedLevel] = {
    IsolationLevelName.READ_UNCOMMITTED: PhenomenonBasedLevel(
        IsolationLevelName.READ_UNCOMMITTED, ("P0",), "corrected",
        "Table 3 READ UNCOMMITTED == Degree 1: dirty writes are never allowed."),
    IsolationLevelName.READ_COMMITTED: PhenomenonBasedLevel(
        IsolationLevelName.READ_COMMITTED, ("P0", "P1"), "corrected",
        "Table 3 READ COMMITTED == Degree 2."),
    IsolationLevelName.REPEATABLE_READ: PhenomenonBasedLevel(
        IsolationLevelName.REPEATABLE_READ, ("P0", "P1", "P2"), "corrected",
        "Table 3 REPEATABLE READ: item reads are stable, phantoms remain."),
    IsolationLevelName.SERIALIZABLE: PhenomenonBasedLevel(
        IsolationLevelName.SERIALIZABLE, ("P0", "P1", "P2", "P3"), "corrected",
        "Table 3 SERIALIZABLE == Degree 3: all four phenomena forbidden."),
}

#: Degree 0 of [GLPT]: only action atomicity, nothing forbidden at the history level.
DEGREE_0 = PhenomenonBasedLevel(
    IsolationLevelName.DEGREE_0, (), "corrected",
    "GLPT Degree 0: well-formed writes only; even dirty writes allowed.")

#: The real thing, for comparisons against ANOMALY SERIALIZABLE.
TRUE_SERIALIZABLE = SerializableLevel()


# -- Declared table contents (used by the benchmarks as the paper's expected output) --

#: Table 1 — ANSI SQL isolation levels defined by the three original phenomena.
TABLE_1: Dict[IsolationLevelName, Dict[str, Possibility]] = {
    IsolationLevelName.ANSI_READ_UNCOMMITTED: {
        "P1": Possibility.POSSIBLE, "P2": Possibility.POSSIBLE, "P3": Possibility.POSSIBLE,
    },
    IsolationLevelName.ANSI_READ_COMMITTED: {
        "P1": Possibility.NOT_POSSIBLE, "P2": Possibility.POSSIBLE, "P3": Possibility.POSSIBLE,
    },
    IsolationLevelName.ANSI_REPEATABLE_READ: {
        "P1": Possibility.NOT_POSSIBLE, "P2": Possibility.NOT_POSSIBLE, "P3": Possibility.POSSIBLE,
    },
    IsolationLevelName.ANOMALY_SERIALIZABLE: {
        "P1": Possibility.NOT_POSSIBLE, "P2": Possibility.NOT_POSSIBLE, "P3": Possibility.NOT_POSSIBLE,
    },
}

#: Table 3 — the corrected levels defined by the four phenomena.
TABLE_3: Dict[IsolationLevelName, Dict[str, Possibility]] = {
    IsolationLevelName.READ_UNCOMMITTED: {
        "P0": Possibility.NOT_POSSIBLE, "P1": Possibility.POSSIBLE,
        "P2": Possibility.POSSIBLE, "P3": Possibility.POSSIBLE,
    },
    IsolationLevelName.READ_COMMITTED: {
        "P0": Possibility.NOT_POSSIBLE, "P1": Possibility.NOT_POSSIBLE,
        "P2": Possibility.POSSIBLE, "P3": Possibility.POSSIBLE,
    },
    IsolationLevelName.REPEATABLE_READ: {
        "P0": Possibility.NOT_POSSIBLE, "P1": Possibility.NOT_POSSIBLE,
        "P2": Possibility.NOT_POSSIBLE, "P3": Possibility.POSSIBLE,
    },
    IsolationLevelName.SERIALIZABLE: {
        "P0": Possibility.NOT_POSSIBLE, "P1": Possibility.NOT_POSSIBLE,
        "P2": Possibility.NOT_POSSIBLE, "P3": Possibility.NOT_POSSIBLE,
    },
}


def level_by_name(name: IsolationLevelName,
                  interpretation: str = "corrected") -> PhenomenonBasedLevel:
    """Fetch a phenomenon-based level definition.

    ``interpretation`` selects among the strict Table 1 reading (``"strict"``),
    the broad Table 1 reading (``"broad"``), and the corrected Table 3
    definitions (``"corrected"``, the default).
    """
    table = {
        "strict": ANSI_STRICT_LEVELS,
        "broad": ANSI_BROAD_LEVELS,
        "corrected": CORRECTED_LEVELS,
    }.get(interpretation)
    if table is None:
        raise ValueError(f"unknown interpretation: {interpretation!r}")
    if name is IsolationLevelName.DEGREE_0:
        return DEGREE_0
    if name not in table:
        raise KeyError(
            f"{name.value} has no {interpretation} phenomenon-based definition"
        )
    return table[name]
