"""The paper's named example histories, with their documented properties.

Every history quoted in the paper is reproduced here verbatim (in shorthand)
as a :class:`PaperHistory` carrying the properties the paper asserts about it:
whether it is serializable, which phenomena it exhibits, which it avoids, and
the section that introduces it.  The test-suite and the `bench_histories`
benchmark verify each assertion against the detectors and the dependency-graph
machinery.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from .history import History, parse_history

__all__ = [
    "PaperHistory",
    "H1", "H2", "H3", "H4", "H5", "H1_SI", "H1_SI_SV",
    "DIRTY_WRITE_CONSTRAINT", "DIRTY_WRITE_RECOVERY",
    "CATALOG", "by_name",
]


@dataclass(frozen=True)
class PaperHistory:
    """A history quoted in the paper, plus the paper's claims about it."""

    name: str
    shorthand: str
    section: str
    serializable: bool
    #: Phenomenon codes the paper says this history exhibits.
    exhibits: Tuple[str, ...] = ()
    #: Phenomenon codes the paper explicitly says this history does NOT exhibit.
    avoids: Tuple[str, ...] = ()
    multiversion: bool = False
    commentary: str = ""

    @property
    def history(self) -> History:
        """The parsed history object."""
        return parse_history(self.shorthand, name=self.name,
                             multiversion=self.multiversion)


#: H1 — the classical inconsistent analysis: T1 transfers 40 from x to y while
#: T2 reads a total balance of 60 instead of 100.  Exhibits P1 (broad Dirty
#: Read) but none of the strict anomalies A1, A2, A3 — the paper's argument
#: that the strict interpretations are too weak (Section 3).
H1 = PaperHistory(
    name="H1",
    shorthand="r1[x=50] w1[x=10] r2[x=10] r2[y=50] c2 r1[y=50] w1[y=90] c1",
    section="3",
    serializable=False,
    exhibits=("P1",),
    avoids=("A1", "A2", "A3"),
    commentary="Bank transfer of 40 from x to y; T2 sees total 60, not 100.",
)

#: H2 — inconsistent analysis without any dirty read: T1 sees a total of 140.
#: Exhibits P2 but not A1, A2, A3, P1.
H2 = PaperHistory(
    name="H2",
    shorthand="r1[x=50] r2[x=50] w2[x=10] r2[y=50] w2[y=90] c2 r1[y=90] c1",
    section="3",
    serializable=False,
    exhibits=("P2", "A5A"),
    avoids=("A1", "A2", "A3", "P1"),
    commentary="T2 moves 40 from x to y; T1 reads x before and y after, seeing 140.",
)

#: H3 — the phantom example: T1 lists active employees, T2 inserts one and
#: updates the employee count z, then T1 checks the count and sees a
#: discrepancy.  Non-serializable yet allowed by A3.
H3 = PaperHistory(
    name="H3",
    shorthand="r1[P] w2[insert y to P] r2[z] w2[z] c2 r1[z] c1",
    section="3",
    serializable=False,
    exhibits=("P3",),
    avoids=("A3", "A1", "A2"),
    commentary="Employee list vs. employee count mismatch; predicate read once.",
)

#: H4 — lost update: both transactions read x=100, T2 adds 20 and commits,
#: then T1 adds 30 on top of its stale read, producing 130 instead of 150.
H4 = PaperHistory(
    name="H4",
    shorthand="r1[x=100] r2[x=100] w2[x=120] c2 w1[x=130] c1",
    section="4.1",
    serializable=False,
    exhibits=("P4", "P2"),
    avoids=("P0", "P1"),
    commentary="T2's increment of 20 is lost; final balance reflects only T1's +30.",
)

#: H5 — write skew: a constraint x + y > 0 is maintained by each transaction in
#: isolation but violated by the interleaving.  Allowed by Snapshot Isolation.
H5 = PaperHistory(
    name="H5",
    shorthand="r1[x=50] r1[y=50] r2[x=50] r2[y=50] w1[y=-40] w2[x=-40] c1 c2",
    section="4.2",
    serializable=False,
    exhibits=("A5B", "P2"),
    avoids=("P0", "P1", "P4", "A5A"),
    commentary="Both balances driven negative: x + y = -80 despite the constraint.",
)

#: H1.SI — history H1's actions as they would execute under Snapshot Isolation:
#: each read names the version it sees, and the dataflows are serializable.
H1_SI = PaperHistory(
    name="H1.SI",
    shorthand="r1[x0=50] w1[x1=10] r2[x0=50] r2[y0=50] c2 r1[y0=50] w1[y1=90] c1",
    section="4.2",
    serializable=True,
    multiversion=True,
    commentary="Under SI, T2 reads the committed versions x0, y0: total is 100.",
)

#: H1.SI.SV — the single-valued mapping of H1.SI the paper gives; serial-izable
#: (in fact it is serial in the order T2, T1 with respect to dataflow).
H1_SI_SV = PaperHistory(
    name="H1.SI.SV",
    shorthand="r1[x=50] r1[y=50] r2[x=50] r2[y=50] c2 w1[x=10] w1[y=90] c1",
    section="4.2",
    serializable=True,
    commentary="The SV history that H1.SI maps to, preserving dataflow dependencies.",
)

#: The dirty-write constraint-violation example of Section 3 (before Remark 3):
#: T1 writes 1 into both x and y, T2 writes 2 into both; interleaved writes
#: leave x=2, y=1, violating x == y.
DIRTY_WRITE_CONSTRAINT = PaperHistory(
    name="P0-constraint",
    shorthand="w1[x=1] w2[x=2] w2[y=2] c2 w1[y=1] c1",
    section="3",
    serializable=False,
    exhibits=("P0",),
    commentary="x=2 and y=1 survive, violating the constraint x == y.",
)

#: The dirty-write recovery example of Section 3: w1[x] w2[x] a1 — neither
#: before-image can be restored safely.
DIRTY_WRITE_RECOVERY = PaperHistory(
    name="P0-recovery",
    shorthand="w1[x] w2[x] a1",
    section="3",
    serializable=True,  # only T2 (still active) and the aborted T1; trivially serializable
    exhibits=("P0",),
    commentary="Undo by before-image would wipe out w2[x]; without it, T2's own abort breaks.",
)


#: Every catalogued history, keyed by name.
CATALOG: Dict[str, PaperHistory] = {
    entry.name: entry
    for entry in (H1, H2, H3, H4, H5, H1_SI, H1_SI_SV,
                  DIRTY_WRITE_CONSTRAINT, DIRTY_WRITE_RECOVERY)
}


def by_name(name: str) -> PaperHistory:
    """Look up a catalogued history by its paper name (e.g. ``"H1"``)."""
    try:
        return CATALOG[name]
    except KeyError:
        raise KeyError(f"no catalogued history named {name!r}") from None
