"""``python -m repro`` — the unified command-line front door.

One entry point, four subcommands, delegating to the per-subsystem CLIs
(which remain runnable directly for compatibility):

* ``campaign`` — run/resume/inspect persistent exploration campaigns
  (:mod:`repro.persist.cli`);
* ``distrib``  — the fault-tolerant distributed campaign runner
  (:mod:`repro.distrib.cli`);
* ``serve``    — the online isolation certifier server
  (:mod:`repro.service.cli`);
* ``bench``    — the certifier load benchmark (:mod:`repro.service.cli`).

Exit codes are consistent across all subcommands: 0 success, 1 runtime
failure, 2 usage/config error.
"""

from __future__ import annotations

import sys
from typing import Optional, Sequence

_USAGE = """\
usage: python -m repro <command> [options]

commands:
  campaign   run, resume, and inspect persistent exploration campaigns
  distrib    drive a campaign through the fault-tolerant distributed runner
  serve      run the online isolation certifier server
  bench      benchmark the certifier under concurrent load

Run `python -m repro <command> --help` for command options.
"""


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = list(sys.argv[1:] if argv is None else argv)
    if not args:
        print(_USAGE, file=sys.stderr, end="")
        return 2
    command, rest = args[0], args[1:]
    if command in ("-h", "--help", "help"):
        print(_USAGE, end="")
        return 0
    if command == "campaign":
        from .persist.cli import main as campaign_main
        return campaign_main(rest)
    if command == "distrib":
        from .distrib.cli import main as distrib_main
        return distrib_main(rest)
    if command == "serve":
        from .service.cli import serve_main
        return serve_main(rest)
    if command == "bench":
        from .service.cli import bench_main
        return bench_main(rest)
    print(f"error: unknown command {command!r}\n", file=sys.stderr)
    print(_USAGE, file=sys.stderr, end="")
    return 2


if __name__ == "__main__":
    sys.exit(main())
