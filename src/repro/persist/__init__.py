"""Campaign persistence: resumable exploration, cross-run dedupe, SQL analytics.

**Not to be confused with** :mod:`repro.storage`.  The repo has two layers
with "storage" in their nature, on opposite sides of the experiment:

* :mod:`repro.storage` is the *simulated database under test* — the items,
  rows, tables, predicates, and recovery machinery that the paper's
  transactions read and write.  It is part of the system being measured.
* :mod:`repro.persist` (this package) is the *measurement infrastructure* —
  where exploration campaigns durably record their own progress, results,
  and caches so they survive the exploring process.  It never participates
  in a schedule's semantics; attaching a store cannot change a single
  record (the kill-and-resume tests assert byte-identical coverage).

What lives here:

* :mod:`~repro.persist.records` — canonical serialization of everything a
  store persists (schedule records, memoized outcomes, classifications,
  Table 4 cells);
* :mod:`~repro.persist.store` — the :class:`CampaignStore` abstract
  interface and the dict-backed :class:`InMemoryStore`;
* :mod:`~repro.persist.sqlite_store` — :class:`SqliteStore`: WAL-mode
  SQLite with atomic chunk commits and window-function analytics;
* :mod:`~repro.persist.session` — parent-side glue ``explore(store=...)``
  drives (progress cursors, chunk commits, dedupe-tier exchange);
* :mod:`~repro.persist.analytics` — coverage/witness-edge persistence and
  the SQL-shaped analytics front end;
* :mod:`~repro.persist.cli` — ``python -m repro.persist.cli`` to run,
  resume, and inspect campaigns.
"""

from .analytics import fingerprint_from_store
from .records import (
    CertificateRecord,
    LeaseRecord,
    default_campaign_id,
    workload_key,
)
from .sqlite_store import SqliteStore
from .store import (
    AnomalyFrequencyRow,
    CampaignConfigMismatch,
    CampaignInfo,
    CampaignStore,
    ConflictEdgeRow,
    InMemoryStore,
    ScopeProgress,
    StaleLeaseError,
    StoredWitness,
    StoreError,
)

__all__ = [
    "CampaignStore",
    "InMemoryStore",
    "SqliteStore",
    "CampaignInfo",
    "ScopeProgress",
    "StoreError",
    "CampaignConfigMismatch",
    "StaleLeaseError",
    "LeaseRecord",
    "CertificateRecord",
    "AnomalyFrequencyRow",
    "StoredWitness",
    "ConflictEdgeRow",
    "workload_key",
    "default_campaign_id",
    "fingerprint_from_store",
]
