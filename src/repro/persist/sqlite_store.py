"""SQLite campaign store: durable chunks, WAL crash-safety, SQL analytics.

The schema follows the row encodings of :mod:`repro.persist.records` —
every collection column is canonical JSON, so the JSON1 functions
(``json_each``) can unnest phenomenon lists inside queries, and the
analytics that used to be bespoke python walks become plain SQL with
window functions:

* anomaly frequency over logical time — per-chunk witness counts with a
  running total via ``SUM(...) OVER (ORDER BY chunk_index)``;
* witness lookup by Table 4 cell — earliest stored witness via ``ORDER BY
  schedule_index LIMIT 1`` over a ``json_each`` containment probe;
* conflict-edge aggregation — ``RANK() OVER (PARTITION BY scope ORDER BY
  COUNT(*) DESC)`` over the witness-edge table.

Durability: the connection runs in WAL mode and every ``commit_chunk`` is
one transaction inserting the chunk's record rows and advancing the scope
cursor, so a SIGKILL between any two statements leaves the cursor pointing
at a fully materialized prefix of the stream.  Workers never open the
database — only the parent process writes — which keeps the concurrency
story to SQLite's single-writer default.

Crash hardening: every write transaction goes through one ``_write``
wrapper that sets ``PRAGMA busy_timeout`` and retries transient
``database is locked`` / ``database is busy`` errors a bounded number of
times with exponential backoff and seeded jitter (other processes — CI
inspectors, a second campaign, backup tooling — may hold the file briefly).
Retry counts surface through :meth:`SqliteStore.stats`, and the fault-
injection harness can force transient lock errors beneath the wrapper via
``busy_fault_hook`` to prove the retry path end to end.

Schema v2 adds the ``leases`` table: the distributed runner's durable
work-queue state (chunk lease state, fencing token, attempt count).  v3
adds the ``certificates`` table: the online certifier service's anomaly
certificates, keyed ``(campaign, stream, seq)``.  Older stores migrate in
place — both tables are purely additive.
"""

from __future__ import annotations

import json
import random
import sqlite3
import time
from pathlib import Path
from typing import (Any, Callable, Dict, Iterator, Mapping, Optional, Sequence,
                    Tuple, TypeVar, Union)

from ..explorer.memo import HistoryClassification, ScheduleOutcome
from ..explorer.schedules import Interleaving
from ..explorer.worker import ScheduleRecord
from . import records as rec
from .store import (
    AnomalyFrequencyRow,
    CampaignConfigMismatch,
    CampaignInfo,
    CampaignStore,
    ConflictEdgeRow,
    ScopeProgress,
    StaleLeaseError,
    StoredWitness,
    StoreError,
)

__all__ = ["SqliteStore", "SCHEMA_VERSION"]

SCHEMA_VERSION = 3

_T = TypeVar("_T")

_SCHEMA = """
CREATE TABLE IF NOT EXISTS meta (
    key   TEXT PRIMARY KEY,
    value TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS campaigns (
    campaign TEXT PRIMARY KEY,
    config   TEXT NOT NULL,
    seq      INTEGER NOT NULL
);
CREATE TABLE IF NOT EXISTS cursors (
    campaign     TEXT NOT NULL,
    scope        TEXT NOT NULL,
    cursor       INTEGER NOT NULL,
    records      INTEGER NOT NULL,
    complete     INTEGER NOT NULL DEFAULT 0,
    total_chunks INTEGER,
    stats        TEXT,
    PRIMARY KEY (campaign, scope)
);
CREATE TABLE IF NOT EXISTS records (
    campaign       TEXT NOT NULL,
    scope          TEXT NOT NULL,
    chunk_index    INTEGER NOT NULL,
    schedule_index INTEGER NOT NULL,
    interleaving   TEXT NOT NULL,
    history        TEXT NOT NULL,
    serializable   INTEGER NOT NULL,
    phenomena      TEXT NOT NULL,
    committed      TEXT NOT NULL,
    aborted        TEXT NOT NULL,
    blocked_events INTEGER NOT NULL,
    deadlocks      INTEGER NOT NULL,
    stalled        INTEGER NOT NULL,
    PRIMARY KEY (campaign, scope, schedule_index)
);
CREATE INDEX IF NOT EXISTS records_by_chunk
    ON records (campaign, scope, chunk_index);
CREATE TABLE IF NOT EXISTS rep_records (
    campaign       TEXT NOT NULL,
    scope          TEXT NOT NULL,
    chunk_index    INTEGER NOT NULL,
    position       INTEGER NOT NULL,
    interleaving   TEXT NOT NULL,
    history        TEXT NOT NULL,
    serializable   INTEGER NOT NULL,
    phenomena      TEXT NOT NULL,
    committed      TEXT NOT NULL,
    aborted        TEXT NOT NULL,
    blocked_events INTEGER NOT NULL,
    deadlocks      INTEGER NOT NULL,
    stalled        INTEGER NOT NULL,
    PRIMARY KEY (campaign, scope, chunk_index, position)
);
CREATE TABLE IF NOT EXISTS outcomes (
    workload       TEXT NOT NULL,
    scope          TEXT NOT NULL,
    key            TEXT NOT NULL,
    history        TEXT NOT NULL,
    serializable   INTEGER NOT NULL,
    phenomena      TEXT NOT NULL,
    committed      TEXT NOT NULL,
    aborted        TEXT NOT NULL,
    blocked_events INTEGER NOT NULL,
    deadlocks      INTEGER NOT NULL,
    stalled        INTEGER NOT NULL,
    PRIMARY KEY (workload, scope, key)
);
CREATE TABLE IF NOT EXISTS classifications (
    shorthand    TEXT PRIMARY KEY,
    serializable INTEGER NOT NULL,
    phenomena    TEXT NOT NULL,
    committed    TEXT NOT NULL,
    aborted      TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS coverage (
    campaign             TEXT NOT NULL,
    scope                TEXT NOT NULL,
    code                 TEXT NOT NULL,
    witnessed            INTEGER NOT NULL,
    witness_interleaving TEXT,
    witness_history      TEXT,
    PRIMARY KEY (campaign, scope, code)
);
CREATE TABLE IF NOT EXISTS witness_edges (
    campaign TEXT NOT NULL,
    scope    TEXT NOT NULL,
    code     TEXT NOT NULL,
    source   INTEGER NOT NULL,
    target   INTEGER NOT NULL,
    kind     TEXT NOT NULL,
    item     TEXT
);
CREATE INDEX IF NOT EXISTS witness_edges_by_campaign
    ON witness_edges (campaign, scope, kind);
CREATE TABLE IF NOT EXISTS table4_cells (
    campaign TEXT NOT NULL,
    scope    TEXT NOT NULL,
    code     TEXT NOT NULL,
    payload  TEXT NOT NULL,
    PRIMARY KEY (campaign, scope, code)
);
CREATE TABLE IF NOT EXISTS leases (
    campaign    TEXT NOT NULL,
    scope       TEXT NOT NULL,
    chunk_index INTEGER NOT NULL,
    state       TEXT NOT NULL,
    token       INTEGER NOT NULL,
    owner       TEXT,
    attempts    INTEGER NOT NULL DEFAULT 0,
    PRIMARY KEY (campaign, scope, chunk_index)
);
CREATE TABLE IF NOT EXISTS certificates (
    campaign TEXT NOT NULL,
    stream   TEXT NOT NULL,
    seq      INTEGER NOT NULL,
    code     TEXT NOT NULL,
    txns     TEXT NOT NULL,
    items    TEXT NOT NULL,
    op_index INTEGER NOT NULL,
    witness  TEXT NOT NULL,
    PRIMARY KEY (campaign, stream, seq)
);
"""

_RECORD_INSERT = """
INSERT INTO records (campaign, scope, chunk_index, schedule_index,
                     interleaving, history, serializable, phenomena, committed,
                     aborted, blocked_events, deadlocks, stalled)
VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)
"""

_REP_INSERT = """
INSERT INTO rep_records (campaign, scope, chunk_index, position,
                         interleaving, history, serializable, phenomena,
                         committed, aborted, blocked_events, deadlocks, stalled)
VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)
"""

_RECORD_COLS = ("interleaving, history, serializable, phenomena, committed, "
                "aborted, blocked_events, deadlocks, stalled")


class SqliteStore(CampaignStore):
    """Campaign store on a single SQLite file (stdlib ``sqlite3``, WAL mode)."""

    def __init__(self, path: Union[str, Path],
                 synchronous: str = "NORMAL",
                 busy_timeout_ms: int = 5000,
                 busy_retries: int = 5,
                 busy_backoff_s: float = 0.01,
                 busy_jitter_seed: int = 0) -> None:
        self.path = str(path)
        self._busy_retries = int(busy_retries)
        self._busy_backoff_s = float(busy_backoff_s)
        self._busy_rng = random.Random(busy_jitter_seed)
        self._stats: Dict[str, int] = {"write_transactions": 0, "busy_retries": 0}
        #: Test/fault-injection hook: consulted once per write-transaction
        #: attempt; returning True makes that attempt fail with a transient
        #: ``database is locked`` error beneath the retry wrapper.
        self.busy_fault_hook: Optional[Callable[[], bool]] = None
        self._conn = sqlite3.connect(self.path)
        self._conn.isolation_level = None      # explicit BEGIN/COMMIT below
        cur = self._conn.cursor()
        cur.execute("PRAGMA journal_mode=WAL")
        cur.execute(f"PRAGMA synchronous={synchronous}")
        cur.execute(f"PRAGMA busy_timeout={int(busy_timeout_ms)}")
        cur.executescript(_SCHEMA)
        cur.execute("INSERT OR IGNORE INTO meta (key, value) VALUES (?, ?)",
                    ("schema_version", str(SCHEMA_VERSION)))
        stored = int(cur.execute("SELECT value FROM meta WHERE key = ?",
                                 ("schema_version",)).fetchone()[0])
        if stored in (1, 2):
            # v1 → v2 (leases) and v2 → v3 (certificates) are purely additive
            # (the executescript above already created the empty tables);
            # stamp the store in place.
            cur.execute("UPDATE meta SET value = ? WHERE key = ?",
                        (str(SCHEMA_VERSION), "schema_version"))
            stored = SCHEMA_VERSION
        if stored != SCHEMA_VERSION:
            raise StoreError(f"store {self.path!r} has schema version {stored}, "
                             f"this build expects {SCHEMA_VERSION}")
        self._conn.commit()

    def close(self) -> None:
        self._conn.close()

    def description(self) -> str:
        return f"SqliteStore ({self.path}, schema v{SCHEMA_VERSION})"

    def stats(self) -> Dict[str, int]:
        return dict(self._stats)

    # -- write transactions -----------------------------------------------------------

    def _write(self, fn: Callable[[sqlite3.Cursor], _T]) -> _T:
        """Run ``fn`` inside ``BEGIN IMMEDIATE``..``COMMIT`` with busy-retry.

        Transient ``database is locked`` / ``busy`` errors — a concurrent
        reader holding the file, a checkpoint, an injected fault — are
        retried up to ``busy_retries`` times with exponential backoff and
        seeded jitter; anything else (including store-invariant errors
        raised by ``fn`` itself) rolls back and propagates immediately.
        """
        attempt = 0
        while True:
            cur = self._conn.cursor()
            try:
                if self.busy_fault_hook is not None and self.busy_fault_hook():
                    raise sqlite3.OperationalError("database is locked (injected)")
                cur.execute("BEGIN IMMEDIATE")
                result = fn(cur)
                cur.execute("COMMIT")
            except sqlite3.OperationalError as error:
                self._rollback(cur)
                message = str(error).lower()
                if ("locked" not in message and "busy" not in message) \
                        or attempt >= self._busy_retries:
                    raise
                attempt += 1
                self._stats["busy_retries"] += 1
                delay = self._busy_backoff_s * (2 ** (attempt - 1))
                time.sleep(delay * (0.5 + self._busy_rng.random()))
            except BaseException:
                self._rollback(cur)
                raise
            else:
                self._stats["write_transactions"] += 1
                return result

    def _rollback(self, cur: sqlite3.Cursor) -> None:
        try:
            cur.execute("ROLLBACK")
        except sqlite3.Error:
            pass                    # the failed attempt never opened a txn

    # -- campaigns --------------------------------------------------------------------

    def open_campaign(self, campaign_id: str,
                      config: Optional[Mapping[str, Any]] = None) -> CampaignInfo:
        row = self._conn.execute(
            "SELECT config FROM campaigns WHERE campaign = ?",
            (campaign_id,)).fetchone()
        if row is not None:
            stored = row[0]
        else:
            if config is None:
                raise StoreError(f"unknown campaign {campaign_id!r} and no config "
                                 f"supplied to create it")
            encoded = rec.canonical_json(dict(config))

            def txn(cur: sqlite3.Cursor) -> Optional[str]:
                # Re-check under BEGIN IMMEDIATE: another process may have
                # created the campaign between our read and this write.
                existing = cur.execute(
                    "SELECT config FROM campaigns WHERE campaign = ?",
                    (campaign_id,)).fetchone()
                if existing is not None:
                    return existing[0]
                seq = cur.execute("SELECT COUNT(*) FROM campaigns").fetchone()[0]
                cur.execute("INSERT INTO campaigns (campaign, config, seq) "
                            "VALUES (?, ?, ?)", (campaign_id, encoded, seq))
                return None

            created = self._write(txn)
            if created is None:
                return CampaignInfo(campaign_id, dict(config))
            stored = created
        if config is not None and rec.canonical_json(dict(config)) != stored:
            raise CampaignConfigMismatch(
                f"campaign {campaign_id!r} exists with a different config: "
                f"stored {stored}, got {rec.canonical_json(dict(config))}")
        return CampaignInfo(campaign_id, json.loads(stored))

    def get_campaign(self, campaign_id: str) -> Optional[CampaignInfo]:
        row = self._conn.execute("SELECT config FROM campaigns WHERE campaign = ?",
                                 (campaign_id,)).fetchone()
        if row is None:
            return None
        return CampaignInfo(campaign_id, json.loads(row[0]))

    def list_campaigns(self) -> Tuple[CampaignInfo, ...]:
        rows = self._conn.execute(
            "SELECT campaign, config FROM campaigns ORDER BY seq").fetchall()
        return tuple(CampaignInfo(cid, json.loads(cfg)) for cid, cfg in rows)

    # -- progress ---------------------------------------------------------------------

    def _require_campaign(self, campaign_id: str) -> None:
        row = self._conn.execute("SELECT 1 FROM campaigns WHERE campaign = ?",
                                 (campaign_id,)).fetchone()
        if row is None:
            raise StoreError(f"unknown campaign {campaign_id!r}")

    def scope_progress(self, campaign_id: str) -> Dict[str, ScopeProgress]:
        self._require_campaign(campaign_id)
        out: Dict[str, ScopeProgress] = {}
        rows = self._conn.execute(
            "SELECT scope, cursor, records, complete, total_chunks, stats "
            "FROM cursors WHERE campaign = ?", (campaign_id,)).fetchall()
        for scope, cursor, count, complete, total, stats in rows:
            out[scope] = ScopeProgress(scope, cursor, count, bool(complete), total,
                                       json.loads(stats) if stats else {})
        return out

    def commit_chunk(self, campaign_id: str, scope: str, chunk_index: int,
                     records: Sequence[ScheduleRecord],
                     rep_records: Optional[Sequence[ScheduleRecord]] = None,
                     lease_token: Optional[int] = None) -> None:
        self._require_campaign(campaign_id)

        def txn(cur: sqlite3.Cursor) -> None:
            if lease_token is not None:
                lease = cur.execute(
                    "SELECT state, token FROM leases WHERE campaign = ? AND "
                    "scope = ? AND chunk_index = ?",
                    (campaign_id, scope, chunk_index)).fetchone()
                if lease is None or lease[0] != "leased" \
                        or int(lease[1]) != lease_token:
                    held = "no lease" if lease is None else \
                        f"state={lease[0]!r} token={lease[1]}"
                    raise StaleLeaseError(
                        f"fenced commit of chunk {chunk_index} "
                        f"({campaign_id!r}/{scope!r}) with token {lease_token} "
                        f"rejected: {held}")
            row = cur.execute(
                "SELECT cursor, records FROM cursors WHERE campaign = ? AND "
                "scope = ?", (campaign_id, scope)).fetchone()
            cursor, base = row if row is not None else (0, 0)
            if chunk_index != cursor:
                raise StoreError(f"non-contiguous commit: chunk {chunk_index} with "
                                 f"cursor {cursor} ({campaign_id!r}/{scope!r})")
            cur.executemany(_RECORD_INSERT, [
                (campaign_id, scope, chunk_index, base + offset)
                + rec.record_to_row(record)
                for offset, record in enumerate(records)])
            if rep_records:
                cur.executemany(_REP_INSERT, [
                    (campaign_id, scope, chunk_index, position)
                    + rec.record_to_row(record)
                    for position, record in enumerate(rep_records)])
            if row is None:
                cur.execute("INSERT INTO cursors (campaign, scope, cursor, records) "
                            "VALUES (?, ?, ?, ?)",
                            (campaign_id, scope, chunk_index + 1,
                             base + len(records)))
            else:
                cur.execute("UPDATE cursors SET cursor = ?, records = ? "
                            "WHERE campaign = ? AND scope = ?",
                            (chunk_index + 1, base + len(records),
                             campaign_id, scope))
            if lease_token is not None:
                cur.execute("UPDATE leases SET state = 'done' WHERE campaign = ? "
                            "AND scope = ? AND chunk_index = ?",
                            (campaign_id, scope, chunk_index))

        self._write(txn)

    def load_chunk(self, campaign_id: str, scope: str, chunk_index: int,
                   ) -> Tuple[Tuple[ScheduleRecord, ...], Tuple[ScheduleRecord, ...]]:
        row = self._conn.execute(
            "SELECT cursor FROM cursors WHERE campaign = ? AND scope = ?",
            (campaign_id, scope)).fetchone()
        if row is None or chunk_index >= row[0]:
            raise StoreError(f"chunk {chunk_index} of {campaign_id!r}/{scope!r} "
                             f"is not committed")
        records = tuple(rec.record_from_row(r) for r in self._conn.execute(
            f"SELECT {_RECORD_COLS} FROM records WHERE campaign = ? AND scope = ? "
            f"AND chunk_index = ? ORDER BY schedule_index",
            (campaign_id, scope, chunk_index)).fetchall())
        reps = tuple(rec.record_from_row(r) for r in self._conn.execute(
            f"SELECT {_RECORD_COLS} FROM rep_records WHERE campaign = ? AND "
            f"scope = ? AND chunk_index = ? ORDER BY position",
            (campaign_id, scope, chunk_index)).fetchall())
        return records, reps

    def mark_scope_complete(self, campaign_id: str, scope: str, total_chunks: int,
                            stats: Optional[Mapping[str, int]] = None) -> None:
        self._require_campaign(campaign_id)
        encoded = rec.canonical_json(dict(stats)) if stats else None
        self._write(lambda cur: cur.execute(
            "INSERT INTO cursors (campaign, scope, cursor, records, complete, "
            "total_chunks, stats) VALUES (?, ?, 0, 0, 1, ?, ?) "
            "ON CONFLICT (campaign, scope) DO UPDATE SET complete = 1, "
            "total_chunks = excluded.total_chunks, stats = excluded.stats",
            (campaign_id, scope, total_chunks, encoded)))

    def iter_records(self, campaign_id: str, scope: str) -> Iterator[ScheduleRecord]:
        for row in self._conn.execute(
                f"SELECT {_RECORD_COLS} FROM records WHERE campaign = ? AND "
                f"scope = ? ORDER BY schedule_index", (campaign_id, scope)):
            yield rec.record_from_row(row)

    # -- leases -----------------------------------------------------------------------

    def load_leases(self, campaign_id: str,
                    ) -> Dict[Tuple[str, int], rec.LeaseRecord]:
        self._require_campaign(campaign_id)
        out: Dict[Tuple[str, int], rec.LeaseRecord] = {}
        for row in self._conn.execute(
                "SELECT scope, chunk_index, state, token, owner, attempts "
                "FROM leases WHERE campaign = ? ORDER BY scope, chunk_index",
                (campaign_id,)):
            lease = rec.lease_from_row(row)
            out[(lease.scope, lease.chunk_index)] = lease
        return out

    def put_lease(self, campaign_id: str, lease: rec.LeaseRecord) -> None:
        self._require_campaign(campaign_id)
        row = rec.lease_to_row(lease)
        self._write(lambda cur: cur.execute(
            "INSERT OR REPLACE INTO leases (campaign, scope, chunk_index, state, "
            "token, owner, attempts) VALUES (?, ?, ?, ?, ?, ?, ?)",
            (campaign_id,) + row))

    # -- anomaly certificates ---------------------------------------------------------

    def save_certificates(self, campaign_id: str,
                          certificates: Sequence[rec.CertificateRecord]) -> int:
        self._require_campaign(campaign_id)
        if not certificates:
            return 0
        rows = [rec.certificate_to_row(c) for c in certificates]

        def txn(cur: sqlite3.Cursor) -> int:
            before = cur.execute(
                "SELECT COUNT(*) FROM certificates WHERE campaign = ?",
                (campaign_id,)).fetchone()[0]
            cur.executemany(
                "INSERT OR REPLACE INTO certificates (campaign, stream, seq, "
                "code, txns, items, op_index, witness) "
                "VALUES (?, ?, ?, ?, ?, ?, ?, ?)",
                [(campaign_id,) + row for row in rows])
            after = cur.execute(
                "SELECT COUNT(*) FROM certificates WHERE campaign = ?",
                (campaign_id,)).fetchone()[0]
            return after - before

        return self._write(txn)

    def load_certificates(self, campaign_id: str, stream: Optional[str] = None,
                          ) -> Tuple[rec.CertificateRecord, ...]:
        self._require_campaign(campaign_id)
        query = ("SELECT stream, seq, code, txns, items, op_index, witness "
                 "FROM certificates WHERE campaign = ?")
        params: Tuple[Any, ...] = (campaign_id,)
        if stream is not None:
            query += " AND stream = ?"
            params += (stream,)
        query += " ORDER BY stream, seq"
        return tuple(rec.certificate_from_row(row)
                     for row in self._conn.execute(query, params))

    # -- dedupe tiers -----------------------------------------------------------------

    def load_outcomes(self, workload: str, scope: str,
                      ) -> Dict[Interleaving, ScheduleOutcome]:
        out: Dict[Interleaving, ScheduleOutcome] = {}
        for row in self._conn.execute(
                "SELECT key, history, serializable, phenomena, committed, aborted, "
                "blocked_events, deadlocks, stalled FROM outcomes "
                "WHERE workload = ? AND scope = ?", (workload, scope)):
            key, outcome = rec.outcome_from_row(row)
            out[key] = outcome
        return out

    def save_outcomes(self, workload: str, scope: str,
                      entries: Mapping[Interleaving, ScheduleOutcome]) -> int:
        if not entries:
            return 0

        def txn(cur: sqlite3.Cursor) -> int:
            before = cur.execute(
                "SELECT COUNT(*) FROM outcomes WHERE workload = ? AND scope = ?",
                (workload, scope)).fetchone()[0]
            cur.executemany(
                "INSERT OR REPLACE INTO outcomes (workload, scope, key, history, "
                "serializable, phenomena, committed, aborted, blocked_events, "
                "deadlocks, stalled) VALUES (?, ?, ?, ?, ?, ?, ?, ?, ?, ?, ?)",
                [(workload, scope) + rec.outcome_to_row(key, outcome)
                 for key, outcome in entries.items()])
            after = cur.execute(
                "SELECT COUNT(*) FROM outcomes WHERE workload = ? AND scope = ?",
                (workload, scope)).fetchone()[0]
            return after - before

        return self._write(txn)

    def load_classifications(self) -> Dict[str, HistoryClassification]:
        out: Dict[str, HistoryClassification] = {}
        for row in self._conn.execute(
                "SELECT shorthand, serializable, phenomena, committed, aborted "
                "FROM classifications"):
            shorthand, classification = rec.classification_from_row(row)
            out[shorthand] = classification
        return out

    def save_classifications(self,
                             entries: Mapping[str, HistoryClassification]) -> int:
        if not entries:
            return 0

        def txn(cur: sqlite3.Cursor) -> int:
            before = cur.execute("SELECT COUNT(*) FROM classifications").fetchone()[0]
            cur.executemany(
                "INSERT OR REPLACE INTO classifications (shorthand, serializable, "
                "phenomena, committed, aborted) VALUES (?, ?, ?, ?, ?)",
                [rec.classification_to_row(shorthand, classification)
                 for shorthand, classification in entries.items()])
            after = cur.execute("SELECT COUNT(*) FROM classifications").fetchone()[0]
            return after - before

        return self._write(txn)

    # -- derived artifacts ------------------------------------------------------------

    def save_coverage(self, campaign_id: str,
                      rows: Sequence[Tuple[str, str, int, Optional[str],
                                           Optional[str]]]) -> None:
        self._require_campaign(campaign_id)

        def txn(cur: sqlite3.Cursor) -> None:
            cur.execute("DELETE FROM coverage WHERE campaign = ?", (campaign_id,))
            cur.executemany(
                "INSERT INTO coverage (campaign, scope, code, witnessed, "
                "witness_interleaving, witness_history) VALUES (?, ?, ?, ?, ?, ?)",
                [(campaign_id,) + tuple(row) for row in rows])

        self._write(txn)

    def save_witness_edges(self, campaign_id: str,
                           rows: Sequence[Tuple[str, str, int, int, str,
                                                Optional[str]]]) -> None:
        self._require_campaign(campaign_id)

        def txn(cur: sqlite3.Cursor) -> None:
            cur.execute("DELETE FROM witness_edges WHERE campaign = ?",
                        (campaign_id,))
            cur.executemany(
                "INSERT INTO witness_edges (campaign, scope, code, source, target, "
                "kind, item) VALUES (?, ?, ?, ?, ?, ?, ?)",
                [(campaign_id,) + tuple(row) for row in rows])

        self._write(txn)

    def save_table4_cell(self, campaign_id: str, scope: str, code: str,
                         payload: str) -> None:
        self._require_campaign(campaign_id)
        self._write(lambda cur: cur.execute(
            "INSERT OR REPLACE INTO table4_cells (campaign, scope, code, "
            "payload) VALUES (?, ?, ?, ?)", (campaign_id, scope, code, payload)))

    def load_table4_cells(self, campaign_id: str) -> Dict[Tuple[str, str], str]:
        return {(scope, code): payload for scope, code, payload in
                self._conn.execute("SELECT scope, code, payload FROM table4_cells "
                                   "WHERE campaign = ?", (campaign_id,))}

    # -- SQL analytics ----------------------------------------------------------------

    def anomaly_frequency(self, campaign_id: str, scope: str,
                          code: str) -> Tuple[AnomalyFrequencyRow, ...]:
        rows = self._conn.execute(
            """
            SELECT chunk_index,
                   COUNT(*) AS schedules,
                   SUM(hit) AS witnessed,
                   SUM(SUM(hit)) OVER (ORDER BY chunk_index
                                       ROWS UNBOUNDED PRECEDING) AS cumulative
            FROM (
                SELECT chunk_index,
                       EXISTS (SELECT 1 FROM json_each(r.phenomena) j
                               WHERE j.value = ?) AS hit
                FROM records r
                WHERE r.campaign = ? AND r.scope = ?
            )
            GROUP BY chunk_index
            ORDER BY chunk_index
            """, (code, campaign_id, scope)).fetchall()
        return tuple(AnomalyFrequencyRow(chunk, schedules, witnessed, cumulative)
                     for chunk, schedules, witnessed, cumulative in rows)

    def witness_for(self, campaign_id: str, scope: str,
                    code: str) -> Optional[StoredWitness]:
        row = self._conn.execute(
            """
            SELECT schedule_index, interleaving, history
            FROM (
                SELECT schedule_index, interleaving, history,
                       ROW_NUMBER() OVER (ORDER BY schedule_index) AS rn
                FROM records r
                WHERE r.campaign = ? AND r.scope = ?
                  AND EXISTS (SELECT 1 FROM json_each(r.phenomena) j
                              WHERE j.value = ?)
            )
            WHERE rn = 1
            """, (campaign_id, scope, code)).fetchone()
        if row is None:
            return None
        index, interleaving, history = row
        return StoredWitness(index, rec.decode_interleaving(interleaving), history)

    def conflict_edge_summary(self, campaign_id: str) -> Tuple[ConflictEdgeRow, ...]:
        rows = self._conn.execute(
            """
            SELECT scope, kind, COUNT(*) AS n,
                   RANK() OVER (PARTITION BY scope
                                ORDER BY COUNT(*) DESC) AS rnk
            FROM witness_edges
            WHERE campaign = ?
            GROUP BY scope, kind
            ORDER BY scope, rnk, kind
            """, (campaign_id,)).fetchall()
        return tuple(ConflictEdgeRow(scope, kind, n, rank)
                     for scope, kind, n, rank in rows)
