"""Persisting derived artifacts and querying them back: the analytics front end.

The store's row tables make anomaly analytics *queries* instead of python
walks (frequency over logical time, witness lookup by Table 4 cell,
conflict-edge aggregation — see :class:`~repro.persist.store.CampaignStore`'s
analytics methods and their SQL in :mod:`repro.persist.sqlite_store`).  This
module is the write side and the human-facing summary:

* :func:`persist_result` — after a campaign finishes, derive and store its
  coverage cells and the dependency (conflict) edges of every witnessed
  cell's witness history, so edge aggregation has rows to rank;
* :func:`campaign_summary` — the CLI's ``inspect`` payload: progress per
  scope, coverage, and the analytics tables rendered as plain text.
"""

from __future__ import annotations

import hashlib
from typing import List, Optional, Tuple

from ..core.dependency import build_dependency_graph
from ..core.history import History
from .records import LEASE_STATES, canonical_json, encode_interleaving
from .store import CampaignStore


def _lease_summary(store: CampaignStore, campaign_id: str) -> Optional[dict]:
    """Per-state lease counts and the quarantined chunk list, or ``None``.

    Distributed campaigns (and fault-injected ones) leave their durable
    work-queue state in the ``leases`` table; ``inspect`` used to ignore it
    entirely, so a campaign stalled on poisoned chunks summarized exactly
    like a healthy one.  Campaigns never run distributed have no lease rows
    and keep their summary unchanged (``None`` here, key omitted).
    """
    leases = store.load_leases(campaign_id)
    if not leases:
        return None
    counts = {state: 0 for state in LEASE_STATES}
    quarantined = []
    for (scope, chunk_index), lease in sorted(leases.items()):
        counts[lease.state] += 1
        if lease.state == "poisoned":
            quarantined.append({"scope": scope, "chunk_index": chunk_index,
                                "attempts": lease.attempts})
    return {"counts": counts, "quarantined": quarantined}

__all__ = ["persist_result", "witness_edge_rows", "campaign_summary",
           "campaign_summary_data", "fingerprint_from_store"]


def fingerprint_from_store(store: CampaignStore, campaign_id: str) -> str:
    """The campaign's record fingerprint, rebuilt purely from stored rows.

    Byte-compatible with ``ExplorationResult.fingerprint()``: scopes are
    visited in sorted order (identical to sorting levels by their ``value``)
    and each record hashes as the same ``repr`` tuple, so a completed
    campaign's stored fingerprint equals the live run's.
    """
    digest = hashlib.sha256()
    for scope in sorted(store.scope_progress(campaign_id)):
        digest.update(scope.encode())
        for record in store.iter_records(campaign_id, scope):
            digest.update(repr((
                record.interleaving, record.history, record.serializable,
                record.phenomena, record.committed, record.aborted,
                record.blocked_events, record.deadlocks, record.stalled,
            )).encode())
    return digest.hexdigest()


def witness_edge_rows(report) -> List[Tuple[str, str, int, int, str,
                                            Optional[str]]]:
    """Dependency-edge rows of every witnessed cell of a coverage report.

    One row per labelled edge of the witness history's dependency graph:
    ``(scope, code, source, target, kind, item)``.  The witness history is a
    shorthand string, so this parses and rebuilds the graph — a few dozen
    operations per witnessed cell, paid once per campaign.
    """
    rows: List[Tuple[str, str, int, int, str, Optional[str]]] = []
    for level, coverage in report.levels.items():
        for code, cell in coverage.phenomena.items():
            if not cell.witness_history:
                continue
            graph = build_dependency_graph(History.parse(cell.witness_history))
            for edge in graph.edges:
                rows.append((level.value, code, edge.source, edge.target,
                             edge.kind, edge.item))
    return rows


def persist_result(store: CampaignStore, campaign_id: str, result,
                   codes: Optional[Tuple[str, ...]] = None):
    """Derive and store a finished campaign's coverage cells and witness edges.

    ``result`` is the :class:`~repro.explorer.ExplorationResult` the campaign
    produced.  Returns the built
    :class:`~repro.analysis.coverage.CoverageReport`.
    """
    from ..analysis.coverage import build_coverage_report
    report = build_coverage_report(result, codes=codes)
    coverage_rows = []
    for level, coverage in report.levels.items():
        for code, cell in coverage.phenomena.items():
            interleaving = (encode_interleaving(cell.witness_interleaving)
                            if cell.witness_interleaving is not None else None)
            coverage_rows.append((level.value, code, cell.witnessed,
                                  interleaving, cell.witness_history))
    store.save_coverage(campaign_id, coverage_rows)
    store.save_witness_edges(campaign_id, witness_edge_rows(report))
    return report


def campaign_summary_data(store: CampaignStore, campaign_id: str,
                          codes: Tuple[str, ...] = ("P1", "P2", "P3",
                                                    "A5A", "A5B"),
                          ) -> Optional[dict]:
    """The ``inspect --json`` payload: :func:`campaign_summary` as data.

    Same queries, machine-shaped: one dict per campaign with per-scope
    progress, per-code anomaly totals and first witnesses, and the ranked
    conflict-edge summary.  ``None`` when the campaign does not exist.
    """
    info = store.get_campaign(campaign_id)
    if info is None:
        return None
    scopes = []
    progress = store.scope_progress(campaign_id)
    for scope in sorted(progress):
        state = progress[scope]
        anomalies = []
        for code in codes:
            series = store.anomaly_frequency(campaign_id, scope, code)
            total = series[-1].cumulative if series else 0
            if not total:
                continue
            witness = store.witness_for(campaign_id, scope, code)
            assert witness is not None
            anomalies.append({
                "code": code, "witnesses": total, "chunks": len(series),
                "first_schedule": witness.schedule_index,
                "witness": encode_interleaving(witness.interleaving),
            })
        scopes.append({"scope": scope, "complete": state.complete,
                       "cursor": state.cursor, "records": state.records,
                       "anomalies": anomalies})
    edges = [{"scope": row.scope, "kind": row.kind, "count": row.count,
              "rank": row.rank}
             for row in store.conflict_edge_summary(campaign_id)]
    payload = {"campaign_id": campaign_id, "store": store.description(),
               "config": dict(info.config), "scopes": scopes,
               "conflict_edges": edges}
    leases = _lease_summary(store, campaign_id)
    if leases is not None:
        payload["leases"] = leases
    certificates = store.load_certificates(campaign_id)
    if certificates:
        payload["certificates"] = len(certificates)
    return payload


def campaign_summary(store: CampaignStore, campaign_id: str,
                     codes: Tuple[str, ...] = ("P1", "P2", "P3", "A5A", "A5B"),
                     ) -> str:
    """A plain-text inspection of one campaign: progress, analytics, edges."""
    info = store.get_campaign(campaign_id)
    if info is None:
        return f"campaign {campaign_id!r}: not found"
    lines = [f"campaign {campaign_id}",
             f"  store: {store.description()}",
             f"  config: {canonical_json(dict(info.config))}"]
    progress = store.scope_progress(campaign_id)
    if not progress:
        lines.append("  no progress recorded yet")
    for scope in sorted(progress):
        state = progress[scope]
        status = "complete" if state.complete else f"cursor={state.cursor}"
        lines.append(f"  [{scope}] {status}, {state.records} records")
        for code in codes:
            series = store.anomaly_frequency(campaign_id, scope, code)
            total = series[-1].cumulative if series else 0
            if not total:
                continue
            witness = store.witness_for(campaign_id, scope, code)
            assert witness is not None
            lines.append(f"    {code}: {total} witnesses over "
                         f"{len(series)} chunks; first at schedule "
                         f"#{witness.schedule_index}: "
                         f"{encode_interleaving(witness.interleaving)}")
    edges = store.conflict_edge_summary(campaign_id)
    if edges:
        lines.append("  witness conflict edges (count-ranked per scope):")
        for row in edges:
            lines.append(f"    [{row.scope}] {row.kind}: {row.count} "
                         f"(rank {row.rank})")
    leases = _lease_summary(store, campaign_id)
    if leases is not None:
        counts = leases["counts"]
        lines.append("  chunk leases: " + ", ".join(
            f"{counts[state]} {state}" for state in LEASE_STATES))
        for chunk in leases["quarantined"]:
            lines.append(f"    quarantined: [{chunk['scope']}] chunk "
                         f"#{chunk['chunk_index']} after "
                         f"{chunk['attempts']} attempts")
    certificates = store.load_certificates(campaign_id)
    if certificates:
        lines.append(f"  anomaly certificates: {len(certificates)}")
    return "\n".join(lines)
