"""Parent-side glue between ``explore()`` and a :class:`CampaignStore`.

A :class:`CampaignSession` owns one campaign of one ``explore()`` call: it
derives the canonical campaign config from the explore inputs, opens (or
validates) the campaign row, and hands each isolation level a
:class:`LevelPersistence` that the level loop drives:

* ``cursor`` — how many chunks of this scope are already durable; the level
  loop skips executing those and loads their records instead;
* ``commit_chunk`` — one atomic store write per freshly executed chunk
  (records + cursor advance, plus the chunk's fresh outcome-memo entries);
* ``preload_classifier`` / ``preload_outcome_memo`` — seed the serial
  dedupe tiers from the store before the level streams;
* ``finish`` — persist the level's fresh classifications and mark the scope
  complete.

Everything here runs in the parent process only.  Workers never see the
store: the parent commits chunks as their results arrive in chunk order,
which is what makes the cursor a contiguous high-water mark and a SIGKILL
at any moment resumable.
"""

from __future__ import annotations

from typing import Any, Dict, Mapping, Optional, Sequence, Tuple

from ..core.isolation import IsolationLevelName
from ..explorer.memo import BatchClassifier, ScheduleOutcome
from ..explorer.schedules import Interleaving
from ..explorer.worker import ScheduleRecord, preload_outcome_entries
from ..workloads.program_sets import ProgramSetSpec
from .records import default_campaign_id, workload_key
from .store import CampaignStore

__all__ = ["CampaignSession", "LevelPersistence", "campaign_config"]


def campaign_config(spec: ProgramSetSpec, mode: str, max_schedules: int,
                    seed: int, reduction: str, chunk_size: int) -> Dict[str, Any]:
    """The canonical campaign config: every input the record stream depends on.

    Deliberately excludes workers, shared_cache, outcome_memo, static_pruning,
    and batch_kernel — those change wall-clock behaviour only, never records
    (the explorer's determinism contract), so a campaign may be resumed with
    different values for them.  ``chunk_size`` *is* included: it fixes the
    chunk boundaries the progress cursor counts.
    """
    return {
        "spec_name": spec.name,
        "spec_params": [[key, value] for key, value in spec.params],
        "mode": mode,
        "max_schedules": max_schedules,
        "seed": seed,
        "reduction": reduction,
        "chunk_size": chunk_size,
    }


class LevelPersistence:
    """One scope's resume cursor, chunk commits, and dedupe preloads."""

    def __init__(self, session: "CampaignSession", level: IsolationLevelName,
                 outcome_memo: bool, serial: bool):
        self.session = session
        self.level = level
        self.scope = level.value
        self.serial = serial
        self.outcome_memo = outcome_memo
        store = session.store
        self.cursor = store.cursor(session.campaign_id, self.scope)
        #: Statically pruned detector count, stored with the scope stats so
        #: store-read coverage reports carry the same pruning note.
        self.static_pruned = 0
        self.stats: Dict[str, int] = {}
        self._committed = 0

    # -- resume ------------------------------------------------------------------------

    def load_chunk(self, chunk_index: int,
                   ) -> Tuple[Tuple[ScheduleRecord, ...], Tuple[ScheduleRecord, ...]]:
        records, reps = self.session.store.load_chunk(
            self.session.campaign_id, self.scope, chunk_index)
        self.stats["store_chunks_loaded"] = self.stats.get("store_chunks_loaded", 0) + 1
        self.stats["store_records_loaded"] = (
            self.stats.get("store_records_loaded", 0) + len(records))
        return records, reps

    # -- commits -----------------------------------------------------------------------

    def commit_chunk(self, chunk_index: int,
                     records: Sequence[ScheduleRecord],
                     rep_records: Optional[Sequence[ScheduleRecord]] = None,
                     fresh_outcomes: Optional[Mapping[Interleaving,
                                                      ScheduleOutcome]] = None,
                     ) -> None:
        store = self.session.store
        store.commit_chunk(self.session.campaign_id, self.scope, chunk_index,
                           records, rep_records)
        if fresh_outcomes:
            store.save_outcomes(self.session.workload, self.scope, fresh_outcomes)
        self._committed += 1
        self.stats["store_chunks_committed"] = self._committed
        self.stats["store_records_committed"] = (
            self.stats.get("store_records_committed", 0) + len(records))

    def finish(self, total_chunks: int,
               classifier: Optional[BatchClassifier] = None) -> None:
        """Persist fresh classifications and mark the scope durably complete."""
        if classifier is not None:
            fresh = classifier.exports()
            if fresh:
                self.session.store.save_classifications(fresh)
        stats = dict(self.stats)
        stats["static_pruned_detectors"] = self.static_pruned
        self.session.store.mark_scope_complete(
            self.session.campaign_id, self.scope, total_chunks, stats)

    # -- dedupe preloads ---------------------------------------------------------------

    def preload_classifier(self, classifier: BatchClassifier) -> None:
        stored = self.session.classifications()
        if stored:
            classifier.preload(stored)
            self.stats["store_classifications_preloaded"] = len(stored)

    def preload_outcome_memo(self, spec: ProgramSetSpec, programs) -> None:
        """Seed the parent-process outcome memo from the store (serial path)."""
        if not (self.serial and self.outcome_memo):
            return
        stored = self.session.store.load_outcomes(self.session.workload, self.scope)
        if stored:
            preload_outcome_entries(spec, self.level, programs, stored)
            self.stats["store_outcomes_preloaded"] = len(stored)


class CampaignSession:
    """One campaign of one ``explore()`` call against one store."""

    def __init__(self, store: CampaignStore, spec: ProgramSetSpec,
                 config: Mapping[str, Any],
                 campaign_id: Optional[str] = None):
        self.store = store
        self.spec = spec
        self.config = dict(config)
        self.campaign_id = campaign_id or default_campaign_id(self.config)
        self.workload = workload_key(spec)
        store.open_campaign(self.campaign_id, self.config)
        self._classifications: Optional[Dict[str, Any]] = None

    def classifications(self) -> Dict[str, Any]:
        """Stored classifications, loaded once per session (shared by levels)."""
        if self._classifications is None:
            self._classifications = self.store.load_classifications()
        return self._classifications

    def level(self, level: IsolationLevelName, outcome_memo: bool,
              serial: bool) -> LevelPersistence:
        return LevelPersistence(self, level, outcome_memo, serial)

    # -- parallel dedupe-tier exchange -------------------------------------------------

    def seed_classification_log(self, log: Any) -> int:
        """Append the stored classifications to a fresh manager log.

        Returns the number of seed batches appended (0 or 1): the caller
        skips them when draining worker-published batches back to the store.
        """
        stored = self.classifications()
        if stored:
            log.append(stored)
            return 1
        return 0

    def seed_outcome_log(self, log: Any, scope: str) -> int:
        stored = self.store.load_outcomes(self.workload, scope)
        if stored:
            log.append(stored)
            return 1
        return 0

    def drain_classification_log(self, log: Any, seed_batches: int) -> int:
        """Persist every worker-published classification batch to the store."""
        merged: Dict[str, Any] = {}
        for batch in list(log)[seed_batches:]:
            merged.update(batch)
        if merged:
            self.store.save_classifications(merged)
        return len(merged)

    def drain_outcome_log(self, log: Any, scope: str, seed_batches: int) -> int:
        merged: Dict[Interleaving, ScheduleOutcome] = {}
        for batch in list(log)[seed_batches:]:
            merged.update(batch)
        if merged:
            self.store.save_outcomes(self.workload, scope, merged)
        return len(merged)
