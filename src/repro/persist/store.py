"""The pluggable campaign-store interface and its in-memory reference backend.

A :class:`CampaignStore` is the durability boundary of the explorer (modeled
on GRR's ``data_store.py``: one abstract interface, interchangeable backends
selected at call time).  It persists five kinds of state:

* **campaigns** — one row per campaign: the identifier plus the canonical
  config (workload spec, mode, budget, seed, reduction, chunk size) that a
  resume must match exactly;
* **progress cursors** — per scope (isolation level), the contiguous
  high-water mark of durably committed chunks.  ``commit_chunk`` is atomic:
  either the chunk's records *and* the advanced cursor land together or
  neither does, so a SIGKILL at any point leaves a resumable store;
* **schedule records** — every realized :class:`ScheduleRecord`, row per
  schedule, queryable by the SQL analytics layer and reloadable chunk by
  chunk for byte-identical resume;
* **dedupe tiers** — memoized canonical-form outcomes (keyed by workload)
  and history classifications (keyed by shorthand, shared across
  workloads), the cross-run extension of the in-process memo/shared-cache;
* **derived artifacts** — coverage cells, witness conflict edges, and
  explored Table 4 cells, written once a campaign completes.

Both backends store *encoded rows* (see :mod:`repro.persist.records`) and
decode on read, so serialization is exercised identically and the two
backends are interchangeable in the kill-and-resume determinism tests.
Backends must be usable from the parent process only — workers never touch
the store, which keeps the interface free of cross-process locking.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Mapping, Optional, Sequence, Tuple

from ..explorer.memo import HistoryClassification, ScheduleOutcome
from ..explorer.schedules import Interleaving
from ..explorer.worker import ScheduleRecord
from . import records as rec

__all__ = [
    "StoreError",
    "CampaignConfigMismatch",
    "StaleLeaseError",
    "CampaignInfo",
    "ScopeProgress",
    "AnomalyFrequencyRow",
    "StoredWitness",
    "ConflictEdgeRow",
    "LeaseRecord",
    "CampaignStore",
    "InMemoryStore",
]

# Re-exported so lease users need not reach into the codec module.
LeaseRecord = rec.LeaseRecord


class StoreError(RuntimeError):
    """A campaign-store invariant was violated (bad cursor, unknown campaign)."""


class CampaignConfigMismatch(StoreError):
    """Resuming a campaign with a config that differs from the stored one."""


class StaleLeaseError(StoreError):
    """A fenced commit carried a lease token that is no longer current.

    Raised *inside* the commit transaction, before any row lands: the zombie
    worker's chunk result is discarded whole, never half-applied.
    """


@dataclass(frozen=True)
class CampaignInfo:
    """One campaign's identity and canonical configuration."""

    campaign_id: str
    config: Mapping[str, Any]


@dataclass(frozen=True)
class ScopeProgress:
    """Durable progress of one scope (isolation level) within a campaign."""

    scope: str
    cursor: int          #: chunks [0, cursor) are durably committed
    records: int         #: schedule records committed so far
    complete: bool
    total_chunks: Optional[int]
    stats: Mapping[str, int] = field(default_factory=dict)


@dataclass(frozen=True)
class AnomalyFrequencyRow:
    """Anomaly frequency in one chunk of the stream, with the running total.

    "Over time" means over *logical* time — the chunk index of the
    deterministic schedule stream — so the series is reproducible and
    independent of wall clock, worker count, and interruptions.
    """

    chunk_index: int
    schedules: int
    witnessed: int
    cumulative: int


@dataclass(frozen=True)
class StoredWitness:
    """The earliest stored witness of one (scope, phenomenon) cell."""

    schedule_index: int
    interleaving: Interleaving
    history: str


@dataclass(frozen=True)
class ConflictEdgeRow:
    """Aggregated witness conflict edges of one kind under one scope."""

    scope: str
    kind: str
    count: int
    rank: int            #: densest edge kind within the scope ranks 1


class CampaignStore(abc.ABC):
    """Abstract campaign persistence: progress, records, dedupe, analytics.

    Implementations guarantee: (1) ``commit_chunk`` is atomic with the cursor
    advance; (2) chunks commit contiguously (``chunk_index`` must equal the
    current cursor); (3) reads decode to objects equal to what was written
    (:mod:`repro.persist.records` round-trip); (4) analytics answers are
    identical across backends for identical contents.
    """

    # -- lifecycle --------------------------------------------------------------------

    def close(self) -> None:
        """Release backend resources. The in-memory backend has none."""

    def __enter__(self) -> "CampaignStore":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()

    @abc.abstractmethod
    def description(self) -> str:
        """One-line backend description for CLI output."""

    def stats(self) -> Dict[str, int]:
        """Backend health counters (busy retries, write transactions, ...).

        The in-memory backend has nothing to report; the SQLite backend
        surfaces its lock-contention retry counts here.
        """
        return {}

    # -- campaigns --------------------------------------------------------------------

    @abc.abstractmethod
    def open_campaign(self, campaign_id: str,
                      config: Optional[Mapping[str, Any]] = None) -> CampaignInfo:
        """Create the campaign or validate ``config`` against the stored one.

        Raises :class:`CampaignConfigMismatch` when the campaign exists with a
        different config, and :class:`StoreError` when it does not exist and
        no config was supplied.
        """

    @abc.abstractmethod
    def get_campaign(self, campaign_id: str) -> Optional[CampaignInfo]:
        """The stored campaign, or ``None``."""

    @abc.abstractmethod
    def list_campaigns(self) -> Tuple[CampaignInfo, ...]:
        """Every stored campaign, in creation order."""

    # -- progress ---------------------------------------------------------------------

    @abc.abstractmethod
    def scope_progress(self, campaign_id: str) -> Dict[str, ScopeProgress]:
        """Durable progress per scope (empty for a fresh campaign)."""

    def cursor(self, campaign_id: str, scope: str) -> int:
        """The contiguous committed-chunk high-water mark for one scope."""
        progress = self.scope_progress(campaign_id).get(scope)
        return progress.cursor if progress else 0

    @abc.abstractmethod
    def commit_chunk(self, campaign_id: str, scope: str, chunk_index: int,
                     records: Sequence[ScheduleRecord],
                     rep_records: Optional[Sequence[ScheduleRecord]] = None,
                     lease_token: Optional[int] = None) -> None:
        """Durably commit one chunk's records and advance the cursor, atomically.

        ``records`` are the assembled per-schedule records of the chunk (what
        the exploration stream yields); ``rep_records`` are the freshly
        executed representative records when sleep-set reduction is active
        (needed to rebuild the executed-representative stream on resume).
        ``chunk_index`` must equal the current cursor — chunks are committed
        contiguously, in stream order.

        When ``lease_token`` is given the commit is *fenced*: inside the same
        transaction the chunk's lease row must be in state ``leased`` holding
        exactly this token, else :class:`StaleLeaseError` is raised and
        nothing lands.  On success the lease row transitions to ``done``
        atomically with the records and the cursor, so a reclaimed-and-
        regranted chunk can only ever be committed by the current holder.
        """

    # -- leases (the distributed runner's durable work-queue state) -------------------

    @abc.abstractmethod
    def load_leases(self, campaign_id: str) -> Dict[Tuple[str, int], rec.LeaseRecord]:
        """Every stored lease of the campaign, keyed ``(scope, chunk_index)``."""

    @abc.abstractmethod
    def put_lease(self, campaign_id: str, lease: rec.LeaseRecord) -> None:
        """Upsert one chunk's lease row (grant, reclaim, poison, requeue)."""

    @abc.abstractmethod
    def load_chunk(self, campaign_id: str, scope: str, chunk_index: int,
                   ) -> Tuple[Tuple[ScheduleRecord, ...], Tuple[ScheduleRecord, ...]]:
        """The committed chunk's (records, rep_records), decoded."""

    @abc.abstractmethod
    def mark_scope_complete(self, campaign_id: str, scope: str, total_chunks: int,
                            stats: Optional[Mapping[str, int]] = None) -> None:
        """Record that every chunk of the scope is durably committed."""

    @abc.abstractmethod
    def iter_records(self, campaign_id: str, scope: str) -> Iterator[ScheduleRecord]:
        """Every committed record of the scope, in stream order."""

    # -- anomaly certificates (the online certifier service) --------------------------

    @abc.abstractmethod
    def save_certificates(self, campaign_id: str,
                          certificates: Sequence["rec.CertificateRecord"]) -> int:
        """Upsert anomaly certificates keyed ``(stream, seq)``; returns how
        many were new.  Re-saving a stream's certificates is idempotent."""

    @abc.abstractmethod
    def load_certificates(self, campaign_id: str, stream: Optional[str] = None,
                          ) -> Tuple["rec.CertificateRecord", ...]:
        """Stored certificates (optionally one stream's), ordered by
        ``(stream, seq)``."""

    # -- dedupe tiers -----------------------------------------------------------------

    @abc.abstractmethod
    def load_outcomes(self, workload: str, scope: str,
                      ) -> Dict[Interleaving, ScheduleOutcome]:
        """Memoized canonical-form outcomes for one (workload, scope)."""

    @abc.abstractmethod
    def save_outcomes(self, workload: str, scope: str,
                      entries: Mapping[Interleaving, ScheduleOutcome]) -> int:
        """Upsert memoized outcomes; returns how many keys were new."""

    @abc.abstractmethod
    def load_classifications(self) -> Dict[str, HistoryClassification]:
        """Every stored history classification (shared across workloads)."""

    @abc.abstractmethod
    def save_classifications(self,
                             entries: Mapping[str, HistoryClassification]) -> int:
        """Upsert classifications by shorthand; returns how many were new."""

    # -- derived artifacts ------------------------------------------------------------

    @abc.abstractmethod
    def save_coverage(self, campaign_id: str,
                      rows: Sequence[Tuple[str, str, int, Optional[str],
                                           Optional[str]]]) -> None:
        """Replace the campaign's coverage cells.

        Rows are ``(scope, code, witnessed, witness_interleaving,
        witness_history)`` with the interleaving already encoded.
        """

    @abc.abstractmethod
    def save_witness_edges(self, campaign_id: str,
                           rows: Sequence[Tuple[str, str, int, int, str,
                                                Optional[str]]]) -> None:
        """Replace the campaign's witness conflict edges.

        Rows are ``(scope, code, source, target, kind, item)`` — the
        dependency edges of each witnessed cell's witness history.
        """

    @abc.abstractmethod
    def save_table4_cell(self, campaign_id: str, scope: str, code: str,
                         payload: str) -> None:
        """Upsert one explored Table 4 cell (canonical JSON payload)."""

    @abc.abstractmethod
    def load_table4_cells(self, campaign_id: str) -> Dict[Tuple[str, str], str]:
        """Every stored Table 4 cell payload, keyed ``(scope, code)``."""

    # -- SQL-shaped analytics ---------------------------------------------------------

    @abc.abstractmethod
    def anomaly_frequency(self, campaign_id: str, scope: str,
                          code: str) -> Tuple[AnomalyFrequencyRow, ...]:
        """Witness counts of one phenomenon per chunk, with running totals."""

    @abc.abstractmethod
    def witness_for(self, campaign_id: str, scope: str,
                    code: str) -> Optional[StoredWitness]:
        """The earliest stored witness of one (scope, code) cell, if any."""

    @abc.abstractmethod
    def conflict_edge_summary(self, campaign_id: str) -> Tuple[ConflictEdgeRow, ...]:
        """Witness conflict edges aggregated by (scope, kind), ranked per scope."""


@dataclass
class _ScopeState:
    """In-memory progress + encoded rows of one (campaign, scope)."""

    cursor: int = 0
    complete: bool = False
    total_chunks: Optional[int] = None
    stats: Dict[str, int] = field(default_factory=dict)
    chunk_bounds: List[int] = field(default_factory=list)  #: record count after chunk i
    rows: List[Tuple] = field(default_factory=list)        #: encoded record rows
    chunk_of_row: List[int] = field(default_factory=list)  #: chunk index per row
    rep_rows: Dict[int, List[Tuple]] = field(default_factory=dict)


class InMemoryStore(CampaignStore):
    """Dict-backed reference backend: same encoding, same semantics, no disk.

    Useful for tests and for in-process resumable campaigns; its analytics
    are plain-python reimplementations of the SQLite backend's SQL, and the
    two are held in agreement by ``tests/persist/test_analytics.py``.
    """

    def __init__(self) -> None:
        self._campaigns: Dict[str, Dict[str, Any]] = {}
        self._order: List[str] = []
        self._scopes: Dict[Tuple[str, str], _ScopeState] = {}
        self._outcomes: Dict[Tuple[str, str], Dict[str, Tuple]] = {}
        self._classifications: Dict[str, Tuple] = {}
        self._coverage: Dict[str, List[Tuple]] = {}
        self._witness_edges: Dict[str, List[Tuple]] = {}
        self._table4: Dict[str, Dict[Tuple[str, str], str]] = {}
        self._leases: Dict[str, Dict[Tuple[str, int], Tuple]] = {}
        self._certificates: Dict[str, Dict[Tuple[str, int], Tuple]] = {}

    def description(self) -> str:
        return "InMemoryStore (process-local, dict-backed)"

    # -- campaigns --------------------------------------------------------------------

    def open_campaign(self, campaign_id: str,
                      config: Optional[Mapping[str, Any]] = None) -> CampaignInfo:
        stored = self._campaigns.get(campaign_id)
        if stored is None:
            if config is None:
                raise StoreError(f"unknown campaign {campaign_id!r} and no config "
                                 f"supplied to create it")
            self._campaigns[campaign_id] = dict(config)
            self._order.append(campaign_id)
            return CampaignInfo(campaign_id, dict(config))
        if config is not None and rec.canonical_json(dict(config)) != \
                rec.canonical_json(stored):
            raise CampaignConfigMismatch(
                f"campaign {campaign_id!r} exists with a different config: "
                f"stored {rec.canonical_json(stored)}, "
                f"got {rec.canonical_json(dict(config))}")
        return CampaignInfo(campaign_id, dict(stored))

    def get_campaign(self, campaign_id: str) -> Optional[CampaignInfo]:
        stored = self._campaigns.get(campaign_id)
        return CampaignInfo(campaign_id, dict(stored)) if stored is not None else None

    def list_campaigns(self) -> Tuple[CampaignInfo, ...]:
        return tuple(CampaignInfo(cid, dict(self._campaigns[cid]))
                     for cid in self._order)

    # -- progress ---------------------------------------------------------------------

    def _scope(self, campaign_id: str, scope: str, create: bool = False,
               ) -> Optional[_ScopeState]:
        if campaign_id not in self._campaigns:
            raise StoreError(f"unknown campaign {campaign_id!r}")
        key = (campaign_id, scope)
        state = self._scopes.get(key)
        if state is None and create:
            state = self._scopes[key] = _ScopeState()
        return state

    def scope_progress(self, campaign_id: str) -> Dict[str, ScopeProgress]:
        if campaign_id not in self._campaigns:
            raise StoreError(f"unknown campaign {campaign_id!r}")
        out: Dict[str, ScopeProgress] = {}
        for (cid, scope), state in self._scopes.items():
            if cid == campaign_id:
                out[scope] = ScopeProgress(scope, state.cursor, len(state.rows),
                                           state.complete, state.total_chunks,
                                           dict(state.stats))
        return out

    def commit_chunk(self, campaign_id: str, scope: str, chunk_index: int,
                     records: Sequence[ScheduleRecord],
                     rep_records: Optional[Sequence[ScheduleRecord]] = None,
                     lease_token: Optional[int] = None) -> None:
        state = self._scope(campaign_id, scope, create=True)
        assert state is not None
        if chunk_index != state.cursor:
            raise StoreError(f"non-contiguous commit: chunk {chunk_index} with "
                             f"cursor {state.cursor} ({campaign_id!r}/{scope!r})")
        lease_row: Optional[Tuple] = None
        if lease_token is not None:
            lease_row = self._leases.get(campaign_id, {}).get((scope, chunk_index))
            if lease_row is None or lease_row[2] != "leased" \
                    or int(lease_row[3]) != lease_token:
                held = "no lease" if lease_row is None else \
                    f"state={lease_row[2]!r} token={lease_row[3]}"
                raise StaleLeaseError(
                    f"fenced commit of chunk {chunk_index} "
                    f"({campaign_id!r}/{scope!r}) with token {lease_token} "
                    f"rejected: {held}")
        for record in records:
            state.rows.append(rec.record_to_row(record))
            state.chunk_of_row.append(chunk_index)
        if rep_records:
            state.rep_rows[chunk_index] = [rec.record_to_row(r) for r in rep_records]
        state.cursor = chunk_index + 1
        state.chunk_bounds.append(len(state.rows))
        if lease_row is not None:
            self._leases[campaign_id][(scope, chunk_index)] = \
                lease_row[:2] + ("done",) + lease_row[3:]

    def load_chunk(self, campaign_id: str, scope: str, chunk_index: int,
                   ) -> Tuple[Tuple[ScheduleRecord, ...], Tuple[ScheduleRecord, ...]]:
        state = self._scope(campaign_id, scope)
        if state is None or chunk_index >= state.cursor:
            raise StoreError(f"chunk {chunk_index} of {campaign_id!r}/{scope!r} "
                             f"is not committed")
        start = state.chunk_bounds[chunk_index - 1] if chunk_index else 0
        stop = state.chunk_bounds[chunk_index]
        loaded = tuple(rec.record_from_row(row)
                       for row in state.rows[start:stop])
        reps = tuple(rec.record_from_row(row)
                     for row in state.rep_rows.get(chunk_index, ()))
        return loaded, reps

    def mark_scope_complete(self, campaign_id: str, scope: str, total_chunks: int,
                            stats: Optional[Mapping[str, int]] = None) -> None:
        state = self._scope(campaign_id, scope, create=True)
        assert state is not None
        state.complete = True
        state.total_chunks = total_chunks
        if stats:
            state.stats.update(stats)

    def iter_records(self, campaign_id: str, scope: str) -> Iterator[ScheduleRecord]:
        state = self._scope(campaign_id, scope)
        for row in (state.rows if state is not None else ()):
            yield rec.record_from_row(row)

    # -- leases -----------------------------------------------------------------------

    def load_leases(self, campaign_id: str) -> Dict[Tuple[str, int], rec.LeaseRecord]:
        if campaign_id not in self._campaigns:
            raise StoreError(f"unknown campaign {campaign_id!r}")
        return {key: rec.lease_from_row(row)
                for key, row in sorted(self._leases.get(campaign_id, {}).items())}

    def put_lease(self, campaign_id: str, lease: rec.LeaseRecord) -> None:
        if campaign_id not in self._campaigns:
            raise StoreError(f"unknown campaign {campaign_id!r}")
        row = rec.lease_to_row(lease)
        self._leases.setdefault(campaign_id, {})[
            (lease.scope, lease.chunk_index)] = row

    # -- anomaly certificates ---------------------------------------------------------

    def save_certificates(self, campaign_id: str,
                          certificates: Sequence[rec.CertificateRecord]) -> int:
        if campaign_id not in self._campaigns:
            raise StoreError(f"unknown campaign {campaign_id!r}")
        rows = self._certificates.setdefault(campaign_id, {})
        fresh = 0
        for certificate in certificates:
            row = rec.certificate_to_row(certificate)
            key = (certificate.stream, certificate.seq)
            if key not in rows:
                fresh += 1
            rows[key] = row
        return fresh

    def load_certificates(self, campaign_id: str, stream: Optional[str] = None,
                          ) -> Tuple[rec.CertificateRecord, ...]:
        if campaign_id not in self._campaigns:
            raise StoreError(f"unknown campaign {campaign_id!r}")
        rows = self._certificates.get(campaign_id, {})
        return tuple(rec.certificate_from_row(row)
                     for key, row in sorted(rows.items())
                     if stream is None or key[0] == stream)

    # -- dedupe tiers -----------------------------------------------------------------

    def load_outcomes(self, workload: str, scope: str,
                      ) -> Dict[Interleaving, ScheduleOutcome]:
        rows = self._outcomes.get((workload, scope), {})
        out: Dict[Interleaving, ScheduleOutcome] = {}
        for key_text, row in rows.items():
            key, outcome = rec.outcome_from_row((key_text,) + row)
            out[key] = outcome
        return out

    def save_outcomes(self, workload: str, scope: str,
                      entries: Mapping[Interleaving, ScheduleOutcome]) -> int:
        rows = self._outcomes.setdefault((workload, scope), {})
        fresh = 0
        for key, outcome in entries.items():
            encoded = rec.outcome_to_row(key, outcome)
            if encoded[0] not in rows:
                fresh += 1
            rows[encoded[0]] = encoded[1:]
        return fresh

    def load_classifications(self) -> Dict[str, HistoryClassification]:
        out: Dict[str, HistoryClassification] = {}
        for shorthand, row in self._classifications.items():
            _, classification = rec.classification_from_row((shorthand,) + row)
            out[shorthand] = classification
        return out

    def save_classifications(self,
                             entries: Mapping[str, HistoryClassification]) -> int:
        fresh = 0
        for shorthand, classification in entries.items():
            encoded = rec.classification_to_row(shorthand, classification)
            if encoded[0] not in self._classifications:
                fresh += 1
            self._classifications[encoded[0]] = encoded[1:]
        return fresh

    # -- derived artifacts ------------------------------------------------------------

    def save_coverage(self, campaign_id: str,
                      rows: Sequence[Tuple[str, str, int, Optional[str],
                                           Optional[str]]]) -> None:
        self._coverage[campaign_id] = [tuple(row) for row in rows]

    def save_witness_edges(self, campaign_id: str,
                           rows: Sequence[Tuple[str, str, int, int, str,
                                                Optional[str]]]) -> None:
        self._witness_edges[campaign_id] = [tuple(row) for row in rows]

    def save_table4_cell(self, campaign_id: str, scope: str, code: str,
                         payload: str) -> None:
        self._table4.setdefault(campaign_id, {})[(scope, code)] = payload

    def load_table4_cells(self, campaign_id: str) -> Dict[Tuple[str, str], str]:
        return dict(self._table4.get(campaign_id, {}))

    # -- SQL-shaped analytics (plain-python mirrors of SqliteStore's queries) ---------

    def anomaly_frequency(self, campaign_id: str, scope: str,
                          code: str) -> Tuple[AnomalyFrequencyRow, ...]:
        state = self._scope(campaign_id, scope)
        if state is None:
            return ()
        per_chunk: Dict[int, List[int]] = {}
        for row, chunk in zip(state.rows, state.chunk_of_row):
            bucket = per_chunk.setdefault(chunk, [0, 0])
            bucket[0] += 1
            if code in rec.decode_strs(row[3]):
                bucket[1] += 1
        out: List[AnomalyFrequencyRow] = []
        cumulative = 0
        for chunk in sorted(per_chunk):
            schedules, witnessed = per_chunk[chunk]
            cumulative += witnessed
            out.append(AnomalyFrequencyRow(chunk, schedules, witnessed, cumulative))
        return tuple(out)

    def witness_for(self, campaign_id: str, scope: str,
                    code: str) -> Optional[StoredWitness]:
        state = self._scope(campaign_id, scope)
        if state is None:
            return None
        for index, row in enumerate(state.rows):
            if code in rec.decode_strs(row[3]):
                return StoredWitness(index, rec.decode_interleaving(row[0]), row[1])
        return None

    def conflict_edge_summary(self, campaign_id: str) -> Tuple[ConflictEdgeRow, ...]:
        counts: Dict[Tuple[str, str], int] = {}
        for row in self._witness_edges.get(campaign_id, ()):
            scope, _code, _source, _target, kind, _item = row
            counts[(scope, kind)] = counts.get((scope, kind), 0) + 1
        out: List[ConflictEdgeRow] = []
        for scope in sorted({scope for scope, _ in counts}):
            kinds = sorted(((kind, n) for (s, kind), n in counts.items()
                            if s == scope), key=lambda item: (-item[1], item[0]))
            rank = 0
            previous: Optional[int] = None
            for position, (kind, n) in enumerate(kinds, start=1):
                if n != previous:
                    rank = position     # RANK() semantics: ties share, then skip
                    previous = n
                out.append(ConflictEdgeRow(scope, kind, n, rank))
        return tuple(out)

    # -- introspection ----------------------------------------------------------------

    def schedule_index_of_chunk(self, campaign_id: str, scope: str,
                                chunk_index: int) -> int:
        """Global schedule index where ``chunk_index`` starts (test helper)."""
        state = self._scope(campaign_id, scope)
        if state is None or not state.chunk_bounds:
            return 0
        if chunk_index == 0:
            return 0
        return state.chunk_bounds[min(chunk_index, len(state.chunk_bounds)) - 1]
