"""Canonical serialization of campaign records: dataclasses ↔ stored rows.

Everything a :class:`~repro.persist.store.CampaignStore` persists crosses
through this module, in both directions, so the two backends cannot drift:
per-schedule :class:`~repro.explorer.worker.ScheduleRecord` rows, memoized
:class:`~repro.explorer.memo.ScheduleOutcome` entries keyed by canonical
interleaving, shared :class:`~repro.explorer.memo.HistoryClassification`
entries keyed by history shorthand, and measured
:class:`~repro.analysis.coverage.ExploredCell` payloads for the explored
Table 4.

The encoding is deliberately boring and deliberately *canonical*: flat row
tuples of SQL-native scalars (ints and strings), with every collection
rendered as JSON with sorted keys and fixed separators.  Canonicality is a
determinism requirement, not cosmetics — resumed campaigns must reproduce
byte-identical coverage reports, so ``decode(encode(x)) == x`` exactly and
``encode`` itself is a pure function (the repo invariant linter's
``store-records`` check and the round-trip property tests in
``tests/persist/test_records_roundtrip.py`` both enforce this across all
five supported isolation levels, stalled and deadlock-aborted outcomes
included).
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Any, Dict, Mapping, Optional, Sequence, Tuple

from ..analysis.coverage import ExploredCell
from ..core.isolation import Possibility
from ..explorer.memo import HistoryClassification, ScheduleOutcome
from ..explorer.schedules import Interleaving
from ..explorer.worker import ScheduleRecord
from ..workloads.program_sets import ProgramSetSpec

__all__ = [
    "RECORD_COLUMNS",
    "OUTCOME_COLUMNS",
    "CLASSIFICATION_COLUMNS",
    "encode_interleaving",
    "decode_interleaving",
    "encode_ints",
    "decode_ints",
    "encode_strs",
    "decode_strs",
    "canonical_json",
    "record_to_row",
    "record_from_row",
    "record_to_bytes",
    "record_from_bytes",
    "outcome_to_row",
    "outcome_from_row",
    "classification_to_row",
    "classification_from_row",
    "cell_to_payload",
    "cell_from_payload",
    "LEASE_STATES",
    "LEASE_COLUMNS",
    "LeaseRecord",
    "lease_to_row",
    "lease_from_row",
    "workload_key",
    "config_fingerprint",
]

#: Column order of a serialized :class:`ScheduleRecord` row (after whatever
#: key prefix the backend adds).
RECORD_COLUMNS: Tuple[str, ...] = (
    "interleaving", "history", "serializable", "phenomena", "committed",
    "aborted", "blocked_events", "deadlocks", "stalled",
)

#: Column order of a serialized :class:`ScheduleOutcome` row.
OUTCOME_COLUMNS: Tuple[str, ...] = (
    "history", "serializable", "phenomena", "committed", "aborted",
    "blocked_events", "deadlocks", "stalled",
)

#: Column order of a serialized :class:`HistoryClassification` row.
CLASSIFICATION_COLUMNS: Tuple[str, ...] = (
    "serializable", "phenomena", "committed", "aborted",
)


def encode_interleaving(interleaving: Interleaving) -> str:
    """``(1, 2, 1)`` → ``"1,2,1"`` — compact, order-preserving, canonical."""
    return ",".join(map(str, interleaving))


def decode_interleaving(text: str) -> Interleaving:
    return tuple(int(part) for part in text.split(",")) if text else ()


def encode_ints(values: Sequence[int]) -> str:
    """A tuple of ints as canonical JSON (committed/aborted sets, sorted upstream).

    Hand-assembled rather than ``json.dumps``: ints never need escaping, the
    output is byte-identical, and this runs several times per record on the
    campaign commit path, where encoding (not SQLite) dominates the store's
    serial overhead.
    """
    return "[%s]" % ",".join(map(str, values)) if values else "[]"


def decode_ints(text: str) -> Tuple[int, ...]:
    return tuple(int(value) for value in json.loads(text))


def encode_strs(values: Sequence[str]) -> str:
    """A tuple of strings as canonical JSON (phenomenon codes, sorted upstream)."""
    # Most records manifest no phenomena; skip json.dumps for the common case.
    return json.dumps(list(values), separators=(",", ":")) if values else "[]"


def decode_strs(text: str) -> Tuple[str, ...]:
    return tuple(str(value) for value in json.loads(text))


def canonical_json(payload: Any) -> str:
    """Deterministic JSON: sorted keys, fixed separators, no whitespace drift."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


# -- ScheduleRecord -------------------------------------------------------------------


def record_to_row(record: ScheduleRecord) -> Tuple:
    """A record as a flat tuple of SQL-native scalars, in RECORD_COLUMNS order."""
    return (
        encode_interleaving(record.interleaving),
        record.history,
        int(record.serializable),
        encode_strs(record.phenomena),
        encode_ints(record.committed),
        encode_ints(record.aborted),
        int(record.blocked_events),
        int(record.deadlocks),
        int(record.stalled),
    )


def record_from_row(row: Sequence) -> ScheduleRecord:
    """The exact record a :func:`record_to_row` row encodes."""
    return ScheduleRecord(
        interleaving=decode_interleaving(row[0]),
        history=row[1],
        serializable=bool(row[2]),
        phenomena=decode_strs(row[3]),
        committed=decode_ints(row[4]),
        aborted=decode_ints(row[5]),
        blocked_events=int(row[6]),
        deadlocks=int(row[7]),
        stalled=bool(row[8]),
    )


def record_to_bytes(record: ScheduleRecord) -> bytes:
    """One record as canonical bytes (the property-test and fingerprint currency)."""
    return canonical_json(list(record_to_row(record))).encode("utf-8")


def record_from_bytes(blob: bytes) -> ScheduleRecord:
    return record_from_row(json.loads(blob.decode("utf-8")))


# -- ScheduleOutcome (cross-run execution dedupe) -------------------------------------


def outcome_to_row(key: Interleaving, outcome: ScheduleOutcome) -> Tuple:
    """``(canonical key, *OUTCOME_COLUMNS)`` for the store's outcome table."""
    return (
        encode_interleaving(key),
        outcome.history,
        int(outcome.serializable),
        encode_strs(outcome.phenomena),
        encode_ints(outcome.committed),
        encode_ints(outcome.aborted),
        int(outcome.blocked_events),
        int(outcome.deadlocks),
        int(outcome.stalled),
    )


def outcome_from_row(row: Sequence) -> Tuple[Interleaving, ScheduleOutcome]:
    return decode_interleaving(row[0]), ScheduleOutcome(
        history=row[1],
        serializable=bool(row[2]),
        phenomena=decode_strs(row[3]),
        committed=decode_ints(row[4]),
        aborted=decode_ints(row[5]),
        blocked_events=int(row[6]),
        deadlocks=int(row[7]),
        stalled=bool(row[8]),
    )


# -- HistoryClassification (cross-run *and* cross-workload dedupe) --------------------


def classification_to_row(shorthand: str,
                          classification: HistoryClassification) -> Tuple:
    """``(shorthand, *CLASSIFICATION_COLUMNS)`` for the classification table."""
    return (
        shorthand,
        int(classification.serializable),
        encode_strs(classification.phenomena),
        encode_ints(classification.committed),
        encode_ints(classification.aborted),
    )


def classification_from_row(row: Sequence) -> Tuple[str, HistoryClassification]:
    shorthand = row[0]
    return shorthand, HistoryClassification(
        shorthand=shorthand,
        serializable=bool(row[1]),
        phenomena=decode_strs(row[2]),
        committed=decode_ints(row[3]),
        aborted=decode_ints(row[4]),
    )


# -- ExploredCell (the measured Table 4) ----------------------------------------------


def cell_to_payload(cell: ExploredCell) -> str:
    """One measured Table 4 cell as canonical JSON."""
    witness = None
    if cell.witness is not None:
        variant, interleaving, history = cell.witness
        witness = [variant, list(interleaving), history]
    return canonical_json({
        "code": cell.code,
        "possibility": cell.possibility.name,
        "schedules": cell.schedules,
        "manifested": cell.manifested,
        "stalled": cell.stalled,
        "witness": witness,
        "variant_frequencies": [[name, frequency]
                                for name, frequency in cell.variant_frequencies],
        "pruned_variants": cell.pruned_variants,
        "static_reasons": [[name, reason]
                           for name, reason in cell.static_reasons],
    })


def cell_from_payload(payload: str) -> ExploredCell:
    data = json.loads(payload)
    witness = None
    if data["witness"] is not None:
        variant, interleaving, history = data["witness"]
        witness = (variant, tuple(interleaving), history)
    return ExploredCell(
        code=data["code"],
        possibility=Possibility[data["possibility"]],
        schedules=data["schedules"],
        manifested=data["manifested"],
        stalled=data["stalled"],
        witness=witness,
        variant_frequencies=tuple(
            (name, frequency) for name, frequency in data["variant_frequencies"]),
        pruned_variants=data["pruned_variants"],
        static_reasons=tuple(
            (name, reason) for name, reason in data["static_reasons"]),
    )


# -- LeaseRecord (the distributed runner's durable chunk-lease state) -----------------

#: The lease state machine's vocabulary, in lifecycle order.  ``pending``
#: chunks are grantable, ``leased`` chunks are owned by exactly one worker
#: until their deadline passes, ``done`` chunks are durably committed (the
#: transition happens inside the fenced ``commit_chunk`` transaction), and
#: ``poisoned`` chunks exhausted their retry budget and are quarantined.
LEASE_STATES: Tuple[str, ...] = ("pending", "leased", "done", "poisoned")

#: Column order of a serialized :class:`LeaseRecord` row (after whatever
#: key prefix the backend adds).
LEASE_COLUMNS: Tuple[str, ...] = (
    "scope", "chunk_index", "state", "token", "owner", "attempts",
)


@dataclass(frozen=True)
class LeaseRecord:
    """Durable state of one schedule chunk's lease.

    Deadlines are deliberately *not* part of the durable record: they are
    measured on the supervising parent's monotonic clock and mean nothing to
    a later process.  What must survive a crash is the state, the fencing
    ``token`` (monotonically increasing per grant, campaign-wide — a commit
    carrying any older token is rejected), and the ``attempts`` count that
    feeds the retry backoff and the poison quarantine.
    """

    scope: str
    chunk_index: int
    state: str
    token: int
    owner: Optional[str] = None
    attempts: int = 0


def lease_to_row(lease: LeaseRecord) -> Tuple:
    """A lease as a flat tuple of SQL-native scalars, in LEASE_COLUMNS order."""
    if lease.state not in LEASE_STATES:
        raise ValueError(f"unknown lease state {lease.state!r} "
                         f"(expected one of {LEASE_STATES})")
    return (
        lease.scope,
        int(lease.chunk_index),
        lease.state,
        int(lease.token),
        lease.owner,
        int(lease.attempts),
    )


def lease_from_row(row: Sequence) -> LeaseRecord:
    """The exact lease a :func:`lease_to_row` row encodes."""
    return LeaseRecord(
        scope=row[0],
        chunk_index=int(row[1]),
        state=row[2],
        token=int(row[3]),
        owner=row[4],
        attempts=int(row[5]),
    )


# -- certificate records --------------------------------------------------------------


#: Every code an anomaly certificate may carry: the paper's phenomenon codes
#: plus ``CYCLE`` (the online certifier's serializability-violation
#: certificate — a fresh cycle closed in the committed-transaction conflict
#: graph).  Codec round-trips reject anything else, exactly like lease states.
CERTIFICATE_CODES: Tuple[str, ...] = (
    "P0", "P1", "P2", "P3", "A1", "A2", "A3", "P4", "P4C", "A5A", "A5B",
    "CYCLE",
)

#: Column order of a serialized :class:`CertificateRecord` row (after whatever
#: key prefix the backend adds).
CERTIFICATE_COLUMNS: Tuple[str, ...] = (
    "stream", "seq", "code", "txns", "items", "op_index", "witness",
)


@dataclass(frozen=True)
class CertificateRecord:
    """One anomaly certificate emitted by the online isolation certifier.

    ``seq`` numbers certificates per stream (a stream fires each code at most
    once — flags are sticky — so ``(stream, seq)`` is a stable identity).
    ``op_index`` is the stream position whose arrival fired the code, and
    ``witness`` is the shorthand fragment of the involved transactions' recent
    operations still inside the certifier's witness window — enough to replay
    the pattern, bounded regardless of stream length.
    """

    stream: str
    seq: int
    code: str
    txns: Tuple[int, ...]
    items: Tuple[str, ...]
    op_index: int
    witness: str


def certificate_to_row(certificate: CertificateRecord) -> Tuple:
    """A certificate as a flat tuple of SQL-native scalars, in CERTIFICATE_COLUMNS order."""
    if certificate.code not in CERTIFICATE_CODES:
        raise ValueError(f"unknown certificate code {certificate.code!r} "
                         f"(expected one of {CERTIFICATE_CODES})")
    return (
        certificate.stream,
        int(certificate.seq),
        certificate.code,
        encode_ints(certificate.txns),
        encode_strs(certificate.items),
        int(certificate.op_index),
        certificate.witness,
    )


def certificate_from_row(row: Sequence) -> CertificateRecord:
    """The exact certificate a :func:`certificate_to_row` row encodes."""
    return CertificateRecord(
        stream=row[0],
        seq=int(row[1]),
        code=row[2],
        txns=decode_ints(row[3]),
        items=decode_strs(row[4]),
        op_index=int(row[5]),
        witness=row[6],
    )


__all__.extend([
    "CERTIFICATE_CODES",
    "CERTIFICATE_COLUMNS",
    "CertificateRecord",
    "certificate_to_row",
    "certificate_from_row",
])


# -- keys -----------------------------------------------------------------------------


def workload_key(spec: ProgramSetSpec) -> str:
    """The cross-run dedupe key of a workload: builder name + parameters.

    Registered builders are deterministic by the explorer's contract, so two
    specs with the same key build identical programs — the precondition for
    reusing a canonical schedule's memoized outcome across runs.
    """
    return f"{spec.name}|{canonical_json(dict(spec.params))}"


def config_fingerprint(config: Mapping[str, Any]) -> str:
    """A short stable digest of a campaign config (the default campaign id)."""
    digest = hashlib.sha256(canonical_json(dict(config)).encode("utf-8"))
    return digest.hexdigest()[:12]


def default_campaign_id(config: Mapping[str, Any],
                        prefix: Optional[str] = None) -> str:
    """``<spec name>-<config digest>`` — readable and collision-resistant."""
    head = prefix or str(config.get("spec_name", "campaign"))
    return f"{head}-{config_fingerprint(config)}"


__all__.append("default_campaign_id")


def merge_stats(into: Dict[str, int], extra: Mapping[str, int]) -> None:
    """Accumulate counter dicts (the cache_stats convention)."""
    for key, value in extra.items():
        into[key] = into.get(key, 0) + value


__all__.append("merge_stats")
