"""``python -m repro.persist.cli`` — run, resume, and inspect campaigns.

Subcommands:

* ``run``     — start (or transparently resume) an exploration campaign
  against a SQLite store; prints the coverage report when it finishes and
  persists the derived coverage cells and witness edges for SQL analytics.
* ``resume``  — continue an existing campaign from its stored config; no
  workload flags needed (or allowed) — the campaign *is* the config.
* ``inspect`` — progress, anomaly-frequency, witness, and conflict-edge
  analytics of one campaign (or a one-line listing of all of them).
* ``list``    — every campaign in the store, with completion status.

The store path is plain SQLite: anything that speaks SQL can query the
tables directly; this CLI only wraps the common operations.

``--throttle-ms`` injects a sleep into every chunk commit.  That exists for
the kill-and-resume CI job (it widens the window in which a SIGKILL lands
mid-campaign) and for demos; it changes wall-clock only, never records.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from typing import Any, Dict, List, Optional, Sequence

from ..core.isolation import IsolationLevelName
from ..workloads.program_sets import ProgramSetSpec, available_program_sets
from .analytics import campaign_summary, campaign_summary_data, persist_result
from .sqlite_store import SqliteStore
from .store import CampaignStore, StoreError

__all__ = ["main"]


def _existing_store(path: str) -> SqliteStore:
    """Open a store that must already exist (resume/inspect/list).

    ``sqlite3.connect`` would happily create an empty database at a
    mistyped path and then report "unknown campaign" — confusing.  Fail
    up front with the real problem instead.
    """
    if not os.path.exists(path):
        raise SystemExit(f"store file not found: {path}")
    return SqliteStore(path)


class _ThrottledStore:
    """A store proxy that sleeps per chunk commit (CI kill-window widening)."""

    def __init__(self, inner: CampaignStore, delay_s: float):
        self._inner = inner
        self._delay_s = delay_s

    def __getattr__(self, name: str) -> Any:
        attr = getattr(self._inner, name)
        if name != "commit_chunk":
            return attr

        def commit_chunk(*args: Any, **kwargs: Any) -> Any:
            time.sleep(self._delay_s)
            return attr(*args, **kwargs)

        return commit_chunk


def _parse_param(raw: str) -> Any:
    """``key=value`` values as JSON when possible, bare strings otherwise."""
    try:
        return json.loads(raw)
    except ValueError:
        return raw


def _spec_from_args(args: argparse.Namespace) -> ProgramSetSpec:
    params: Dict[str, Any] = {}
    for item in args.set or []:
        if "=" not in item:
            raise SystemExit(f"--set expects key=value, got {item!r}")
        key, _, value = item.partition("=")
        params[key] = _parse_param(value)
    return ProgramSetSpec.make(args.program_set, **params)


def _levels_from_arg(raw: Optional[str]) -> Optional[List[IsolationLevelName]]:
    if raw is None:
        return None
    levels = []
    for part in raw.split(","):
        part = part.strip()
        try:
            levels.append(IsolationLevelName(part))
        except ValueError:
            known = ", ".join(level.value for level in IsolationLevelName)
            raise SystemExit(f"unknown isolation level {part!r}; one of: {known}")
    return levels


def _workers_from_arg(raw: str):
    return raw if raw == "auto" else int(raw)


def _maybe_throttled(store: CampaignStore, throttle_ms: float):
    if throttle_ms <= 0:
        return store
    return _ThrottledStore(store, throttle_ms / 1000.0)


def _run_explore(store: CampaignStore, spec: ProgramSetSpec,
                 args: argparse.Namespace, config: Dict[str, Any],
                 campaign_id: Optional[str]) -> int:
    from ..explorer.explorer import explore
    from ..explorer.options import ExploreOptions
    from .records import default_campaign_id

    levels = _levels_from_arg(getattr(args, "levels", None))
    kwargs: Dict[str, Any] = dict(
        mode=config["mode"], max_schedules=config["max_schedules"],
        seed=config["seed"], reduction=config["reduction"],
        chunk_size=config["chunk_size"],
        workers=_workers_from_arg(args.workers),
        store=_maybe_throttled(store, args.throttle_ms),
        campaign_id=campaign_id or default_campaign_id(config),
    )
    if levels is not None:
        kwargs["levels"] = levels
    result = explore(spec, ExploreOptions(**kwargs))
    campaign = kwargs["campaign_id"]
    report = persist_result(store, campaign, result)
    executed = result.executed_schedules()
    print(report.render(title=f"campaign {campaign}"))
    print(f"campaign {campaign}: {executed} schedules executed this run, "
          f"{result.space.selected} in the space")
    return 0


def _cmd_run(args: argparse.Namespace) -> int:
    from .session import campaign_config

    spec = _spec_from_args(args)
    config = campaign_config(spec, mode=args.mode,
                             max_schedules=args.max_schedules, seed=args.seed,
                             reduction=args.reduction,
                             chunk_size=args.chunk_size)
    with_store = SqliteStore(args.store)
    try:
        return _run_explore(with_store, spec, args, config, args.campaign)
    finally:
        with_store.close()


def _cmd_resume(args: argparse.Namespace) -> int:
    store = _existing_store(args.store)
    try:
        info = store.get_campaign(args.campaign)
        if info is None:
            known = ", ".join(c.campaign_id for c in store.list_campaigns())
            raise SystemExit(f"unknown campaign {args.campaign!r}; "
                             f"store has: {known or '<none>'}")
        config = info.config
        if config.get("kind") == "table4-explored":
            raise SystemExit(
                f"campaign {args.campaign!r} is a Table 4 campaign; resume it "
                f"by re-running compute_table4_explored with the same store")
        spec = ProgramSetSpec.make(config["spec_name"],
                                   **{key: value
                                      for key, value in config["spec_params"]})
        return _run_explore(store, spec, args, config, args.campaign)
    finally:
        store.close()


def _cmd_inspect(args: argparse.Namespace) -> int:
    store = _existing_store(args.store)
    try:
        if args.json:
            if args.campaign is None:
                payload: Any = [campaign_summary_data(store, info.campaign_id)
                                for info in store.list_campaigns()]
            else:
                payload = campaign_summary_data(store, args.campaign)
                if payload is None:
                    raise SystemExit(f"unknown campaign {args.campaign!r}")
            print(json.dumps(payload, indent=2, sort_keys=True))
            return 0
        if args.campaign is None:
            for info in store.list_campaigns():
                print(campaign_summary(store, info.campaign_id))
            if not store.list_campaigns():
                print("no campaigns in store")
            return 0
        print(campaign_summary(store, args.campaign))
        if args.report:
            from ..analysis.coverage import coverage_report_from_store
            report = coverage_report_from_store(store, args.campaign)
            print(report.render(title=f"campaign {args.campaign}"))
        return 0
    finally:
        store.close()


def _cmd_list(args: argparse.Namespace) -> int:
    store = _existing_store(args.store)
    try:
        campaigns = store.list_campaigns()
        if not campaigns:
            print("no campaigns in store")
            return 0
        for info in campaigns:
            progress = store.scope_progress(info.campaign_id)
            done = sum(1 for state in progress.values() if state.complete)
            records = sum(state.records for state in progress.values())
            print(f"{info.campaign_id}: {done}/{len(progress)} scopes complete, "
                  f"{records} records")
        return 0
    finally:
        store.close()


def _add_common_run_flags(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--levels", default=None,
                        help="comma-separated isolation levels "
                             "(default: the explorer's DEFAULT_LEVELS)")
    parser.add_argument("--workers", default="1",
                        help="worker processes, or 'auto' (default: 1)")
    parser.add_argument("--throttle-ms", type=float, default=0.0,
                        help="sleep this long before every chunk commit "
                             "(CI kill-window widening; wall-clock only)")


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.persist.cli",
        description="Run, resume, and inspect persistent exploration campaigns.")
    sub = parser.add_subparsers(dest="command", required=True)

    run = sub.add_parser("run", help="start (or resume) a campaign")
    run.add_argument("--store", required=True, help="SQLite store path")
    run.add_argument("--program-set", required=True,
                     help=f"one of: {', '.join(available_program_sets())}")
    run.add_argument("--set", action="append", metavar="KEY=VALUE",
                     help="program-set parameter (repeatable; JSON values)")
    run.add_argument("--campaign", default=None,
                     help="campaign id (default: derived from the config)")
    run.add_argument("--mode", default="auto",
                     choices=["auto", "exhaustive", "sample"])
    run.add_argument("--max-schedules", type=int, default=1000)
    run.add_argument("--seed", type=int, default=0)
    run.add_argument("--chunk-size", type=int, default=64)
    run.add_argument("--reduction", default="none",
                     choices=["none", "sleep-set"])
    _add_common_run_flags(run)
    run.set_defaults(func=_cmd_run)

    resume = sub.add_parser("resume",
                            help="continue a campaign from its stored config")
    resume.add_argument("--store", required=True, help="SQLite store path")
    resume.add_argument("--campaign", required=True)
    _add_common_run_flags(resume)
    resume.set_defaults(func=_cmd_resume)

    inspect = sub.add_parser("inspect", help="progress and anomaly analytics")
    inspect.add_argument("--store", required=True, help="SQLite store path")
    inspect.add_argument("--campaign", default=None,
                         help="campaign id (default: summarize all)")
    inspect.add_argument("--report", action="store_true",
                         help="also rebuild and print the coverage report "
                              "from stored records")
    inspect.add_argument("--json", action="store_true",
                         help="emit the summary as JSON instead of text")
    inspect.set_defaults(func=_cmd_inspect)

    listing = sub.add_parser("list", help="one line per campaign")
    listing.add_argument("--store", required=True, help="SQLite store path")
    listing.set_defaults(func=_cmd_list)
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return args.func(args)
    except StoreError as error:
        # Config mismatches and store-invariant violations are user errors
        # (wrong flags, wrong campaign, wrong store) — report them cleanly
        # instead of dumping a traceback.
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
