"""Randomized workload generation: histories for the hierarchy analysis and
transaction programs for the Snapshot-Isolation-vs-locking benchmarks.

Two kinds of artifacts are generated, both fully deterministic given a seed:

* **Histories** (:func:`random_history`, :func:`history_corpus`) — syntactic
  interleavings of reads/writes/commits/aborts over a small item space.  These
  feed the phenomenon-based analyses: the Table 1 / Table 3 matrices and the
  empirical level comparisons of Figure 2, where what matters is the *space of
  possible histories*, not any particular engine execution.
* **Programs** (:func:`random_programs`, :func:`contention_workload`) — sets of
  read/write transaction programs with controllable contention, used to drive
  the engines and measure blocking and abort behaviour (the Section 4.2/4.3
  performance discussion).
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Tuple, Union

from ..core.history import History
from ..core.operations import Operation, OperationKind
from ..engine.programs import Commit, ReadItem, TransactionProgram, WriteItem
from ..storage.database import Database

__all__ = [
    "as_rng",
    "random_history",
    "history_corpus",
    "random_programs",
    "contention_workload",
    "uniform_database",
]

#: Either a bare integer seed or an already-constructed ``random.Random``.
SeedLike = Union[int, random.Random]


def as_rng(seed: SeedLike) -> random.Random:
    """Normalize a seed-or-Random argument into a ``random.Random``.

    Every generator in this module (and in :mod:`repro.workloads.program_sets`)
    accepts either form, so callers can pass a plain int for one-shot
    determinism or share a ``Random`` instance across several calls.
    """
    if isinstance(seed, random.Random):
        return seed
    if isinstance(seed, bool) or not isinstance(seed, int):
        raise TypeError(
            "expected an int seed or a random.Random instance, got "
            f"{type(seed).__name__}: {seed!r}"
        )
    return random.Random(seed)


def random_history(rng: SeedLike, transactions: int = 3, items: int = 3,
                   operations_per_transaction: int = 3,
                   abort_probability: float = 0.1,
                   write_probability: float = 0.5) -> History:
    """One random complete single-version history.

    Each transaction performs a random sequence of reads and writes over a
    shared item space, then commits or aborts.  The per-transaction sequences
    are interleaved uniformly at random.  ``rng`` may be a ``random.Random``
    or a bare int seed.
    """
    rng = as_rng(rng)
    item_names = [chr(ord("x") + i) if i < 3 else f"v{i}" for i in range(items)]
    per_txn: Dict[int, List[Operation]] = {}
    for txn in range(1, transactions + 1):
        ops: List[Operation] = []
        for _ in range(operations_per_transaction):
            item = rng.choice(item_names)
            if rng.random() < write_probability:
                ops.append(Operation(OperationKind.WRITE, txn, item=item))
            else:
                ops.append(Operation(OperationKind.READ, txn, item=item))
        terminal = (OperationKind.ABORT if rng.random() < abort_probability
                    else OperationKind.COMMIT)
        ops.append(Operation(terminal, txn))
        per_txn[txn] = ops

    # Interleave: repeatedly pick a transaction that still has operations left.
    merged: List[Operation] = []
    remaining = {txn: list(ops) for txn, ops in per_txn.items()}
    while remaining:
        txn = rng.choice(sorted(remaining))
        merged.append(remaining[txn].pop(0))
        if not remaining[txn]:
            del remaining[txn]
    return History(merged)


def history_corpus(seed: SeedLike = 0, count: int = 200, transactions: int = 3,
                   items: int = 3, operations_per_transaction: int = 3,
                   abort_probability: float = 0.1,
                   write_probability: float = 0.5) -> List[History]:
    """A reproducible corpus of random histories (plus nothing else).

    ``seed`` may be a bare int or a ``random.Random``.  The analyses that use
    this corpus typically concatenate it with the catalogued paper histories
    so that the known distinguishing examples (H1, H2, H3, H4, H5) are always
    present.
    """
    rng = as_rng(seed)
    return [
        random_history(rng, transactions, items, operations_per_transaction,
                       abort_probability, write_probability)
        for _ in range(count)
    ]


def uniform_database(items: int = 10, initial_value: float = 100) -> Database:
    """A database of ``items`` accounts, each holding ``initial_value``."""
    database = Database()
    for index in range(items):
        database.set_item(f"a{index}", initial_value)
    return database


def random_programs(rng: SeedLike, transactions: int = 8, items: int = 10,
                    operations_per_transaction: int = 4,
                    read_only_fraction: float = 0.5,
                    hot_items: Optional[int] = None) -> List[TransactionProgram]:
    """Random read/write transaction programs over the :func:`uniform_database` items.

    ``rng`` may be a ``random.Random`` or a bare int seed.
    ``read_only_fraction`` of the transactions only read; the rest perform
    read-modify-write increments.  ``hot_items`` restricts the writers to the
    first N items, which is how the contention benchmarks dial contention up
    and down.
    """
    rng = as_rng(rng)
    item_names = [f"a{index}" for index in range(items)]
    hot = item_names[: hot_items or items]
    programs: List[TransactionProgram] = []
    for txn in range(1, transactions + 1):
        read_only = rng.random() < read_only_fraction
        steps = []
        pool = item_names if read_only else hot
        for _ in range(operations_per_transaction):
            item = rng.choice(pool)
            if read_only:
                steps.append(ReadItem(item, into=f"{item}_seen"))
            else:
                steps.append(ReadItem(item))
                steps.append(
                    WriteItem(item, (lambda name: (lambda ctx: ctx[name] + 1))(item))
                )
        steps.append(Commit())
        label = "reader" if read_only else "writer"
        programs.append(TransactionProgram(txn, steps, label=f"{label}-{txn}"))
    return programs


def contention_workload(seed: SeedLike, transactions: int, items: int,
                        hot_items: int, read_only_fraction: float,
                        operations_per_transaction: int = 3,
                        ) -> Tuple[Database, List[TransactionProgram], List[int]]:
    """Database + programs + a random interleaving for the contention benchmarks.

    ``seed`` may be a bare int or a ``random.Random``.
    """
    rng = as_rng(seed)
    database = uniform_database(items)
    programs = random_programs(
        rng,
        transactions=transactions,
        items=items,
        operations_per_transaction=operations_per_transaction,
        read_only_fraction=read_only_fraction,
        hot_items=hot_items,
    )
    slots: List[int] = []
    for program in programs:
        slots.extend([program.txn] * len(program.steps))
    rng.shuffle(slots)
    return database, programs, slots
