"""The paper's anomaly scenarios as executable workloads (Table 4's columns).

Each :class:`AnomalyScenario` corresponds to one column of Table 4 (P0, P1,
P4C, P4, P2, P3, A5A, A5B).  A scenario consists of one or more
:class:`ScenarioVariant` objects: a fresh initial database, a set of
transaction programs, the adversarial interleaving, and a ``manifests``
predicate that decides — from values observed, the realized history, and the
final database state — whether the anomaly actually produced a wrong result.

Variants are how the paper's "Sometimes Possible" cells arise: Cursor
Stability, for example, prevents the lost update when the read-modify-write
goes through a cursor but not when it uses plain reads, and Snapshot Isolation
prevents the ANSI-style phantom (rereading a predicate) but not the
constraint-violating disjoint-insert phantom of Section 4.2.

Evaluating a scenario against an engine factory yields a
:class:`~repro.core.isolation.Possibility`:

* every variant manifests  → ``POSSIBLE``
* no variant manifests     → ``NOT_POSSIBLE``
* some do, some don't      → ``SOMETIMES_POSSIBLE``
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from ..core.isolation import Possibility
from ..core.phenomena import P1_DIRTY_READ, P4C_CURSOR_LOST_UPDATE
from ..engine.interface import Engine
from ..engine.outcomes import ExecutionOutcome
from ..engine.programs import (
    Abort,
    Commit,
    Fetch,
    InsertRow,
    OpenCursor,
    ReadItem,
    SelectPredicate,
    TransactionProgram,
    WriteItem,
    CursorUpdate,
)
from ..engine.scheduler import ScheduleRunner
from ..storage.constraints import (
    items_equal,
    items_sum_at_least,
    items_sum_equals,
    predicate_count_matches_item,
    predicate_sum_at_most,
)
from ..storage.database import Database
from ..storage.predicates import attribute_equals, whole_table
from ..storage.rows import Row

__all__ = [
    "ScenarioVariant",
    "AnomalyScenario",
    "VariantResult",
    "EngineFactory",
    "ALL_SCENARIOS",
    "scenario_by_code",
    "run_variant",
    "evaluate_scenario",
]

EngineFactory = Callable[[Database], Engine]


@dataclass
class ScenarioVariant:
    """One concrete realization of an anomaly scenario."""

    name: str
    build_database: Callable[[], Database]
    build_programs: Callable[[], List[TransactionProgram]]
    interleaving: List[int]
    manifests: Callable[[ExecutionOutcome], bool]
    description: str = ""


@dataclass
class AnomalyScenario:
    """A Table 4 column: a phenomenon code plus its scenario variants."""

    code: str
    name: str
    description: str
    variants: List[ScenarioVariant]

    def variant(self, name: str) -> ScenarioVariant:
        """Look up a variant by name."""
        for variant in self.variants:
            if variant.name == name:
                return variant
        raise KeyError(f"scenario {self.code} has no variant named {name!r}")


@dataclass(frozen=True)
class VariantResult:
    """The outcome of running one variant against one engine.

    A *stalled* run (the schedule runner gave up: no progress, no deadlock to
    break) is a first-class non-manifesting result, not an error: under
    locking engines, arbitrary interleavings routinely block, and a workload
    that wedges an engine has certainly not produced the anomaly's wrong
    result.  ``manifests`` is never consulted on a stalled outcome — the
    half-run database state it would inspect is meaningless.
    """

    scenario_code: str
    variant_name: str
    engine_name: str
    manifested: bool
    outcome: ExecutionOutcome
    stalled: bool = False


def run_variant(variant: ScenarioVariant, engine_factory: EngineFactory,
                scenario_code: str = "",
                interleaving: Optional[Sequence[int]] = None) -> VariantResult:
    """Execute one variant under the engine built by ``engine_factory``.

    ``interleaving`` overrides the variant's curated interleaving — this is
    how the schedule-space explorer replays arbitrary schedules (and how a
    coverage witness can be re-verified).  Stalled and engine-aborted runs
    return normally: stalls are recorded on the result and count as
    non-manifesting, engine aborts flow through ``manifests`` exactly as
    before (every predicate guards on the commit states it needs).
    """
    database = variant.build_database()
    engine = engine_factory(database)
    schedule = variant.interleaving if interleaving is None else interleaving
    outcome = ScheduleRunner(engine, variant.build_programs(), schedule).run()
    return VariantResult(
        scenario_code=scenario_code,
        variant_name=variant.name,
        engine_name=engine.name,
        manifested=False if outcome.stalled else variant.manifests(outcome),
        outcome=outcome,
        stalled=outcome.stalled,
    )


def evaluate_scenario(scenario: AnomalyScenario,
                      engine_factory: EngineFactory) -> Possibility:
    """Aggregate a scenario's variants into a Table 4 cell value."""
    if not scenario.variants:
        raise ValueError(
            f"scenario {scenario.code} has no variants; refusing to call an "
            f"empty scenario POSSIBLE (all([]) is True)"
        )
    results = [
        run_variant(variant, engine_factory, scenario.code)
        for variant in scenario.variants
    ]
    manifested = [result.manifested for result in results]
    if all(manifested):
        return Possibility.POSSIBLE
    if not any(manifested):
        return Possibility.NOT_POSSIBLE
    return Possibility.SOMETIMES_POSSIBLE


# ---------------------------------------------------------------------------
# Database builders
# ---------------------------------------------------------------------------


def _bank_database(x: float = 50, y: float = 50, total: float = 100) -> Database:
    """Two bank balances whose sum must stay constant (histories H1/H2/A5A)."""
    database = Database()
    database.set_item("x", x)
    database.set_item("y", y)
    database.add_constraint(items_sum_equals(("x", "y"), total))
    return database


def _equal_items_database() -> Database:
    """Two items constrained to stay equal (the paper's P0 example)."""
    database = Database()
    database.set_item("x", 0)
    database.set_item("y", 0)
    database.add_constraint(items_equal("x", "y"))
    return database


def _single_account_database(balance: float = 100) -> Database:
    """One account, for the lost-update scenarios (history H4)."""
    database = Database()
    database.set_item("x", balance)
    return database


def _write_skew_database() -> Database:
    """Two balances allowed to go negative only jointly (history H5)."""
    database = Database()
    database.set_item("x", 50)
    database.set_item("y", 50)
    database.add_constraint(items_sum_at_least(("x", "y"), 0))
    return database


ACTIVE_EMPLOYEES = attribute_equals("ActiveEmployees", "employees", "active", True)
ALL_TASKS = whole_table("Tasks", "tasks")


def _employees_database() -> Database:
    """Employees plus a materialized count ``z`` (history H3)."""
    database = Database()
    database.create_table("employees", [
        Row("e1", {"name": "Ada", "active": True}),
        Row("e2", {"name": "Grace", "active": True}),
        Row("e3", {"name": "Edsger", "active": False}),
    ])
    database.set_item("z", 2)
    database.add_constraint(predicate_count_matches_item(ACTIVE_EMPLOYEES, "z"))
    return database


def _tasks_database() -> Database:
    """Job tasks whose total hours must not exceed 8 (Section 4.2)."""
    database = Database()
    database.create_table("tasks", [
        Row("t1", {"hours": 3}),
        Row("t2", {"hours": 4}),
    ])
    database.add_constraint(predicate_sum_at_most(ALL_TASKS, "hours", 8))
    return database


# ---------------------------------------------------------------------------
# P0 — Dirty Write
# ---------------------------------------------------------------------------


def _p0_programs() -> List[TransactionProgram]:
    return [
        TransactionProgram(1, [WriteItem("x", 1), WriteItem("y", 1), Commit()],
                           label="T1 writes 1 everywhere"),
        TransactionProgram(2, [WriteItem("x", 2), WriteItem("y", 2), Commit()],
                           label="T2 writes 2 everywhere"),
    ]


def _p0_manifests(outcome: ExecutionOutcome) -> bool:
    return outcome.database.get_item("x") != outcome.database.get_item("y")


P0_SCENARIO = AnomalyScenario(
    code="P0",
    name="Dirty Write",
    description="Two transactions interleave their writes to x and y; the "
                "constraint x == y is violated if the writes interleave "
                "(the paper's Section 3 example).",
    variants=[
        ScenarioVariant(
            name="interleaved-writes",
            build_database=_equal_items_database,
            build_programs=_p0_programs,
            interleaving=[1, 2, 2, 2, 1, 1],
            manifests=_p0_manifests,
            description="w1[x] w2[x] w2[y] c2 w1[y] c1",
        ),
    ],
)


# ---------------------------------------------------------------------------
# P1 — Dirty Read
# ---------------------------------------------------------------------------


def _p1_abort_programs() -> List[TransactionProgram]:
    return [
        TransactionProgram(1, [WriteItem("x", 10), Abort()],
                           label="T1 writes then rolls back"),
        TransactionProgram(2, [ReadItem("x", into="seen_x"), Commit()],
                           label="T2 reads x"),
    ]


def _p1_abort_manifests(outcome: ExecutionOutcome) -> bool:
    # T2 saw the value that was never committed.
    return outcome.observed(2, "seen_x") == 10


def _p1_transfer_programs() -> List[TransactionProgram]:
    return [
        TransactionProgram(1, [
            ReadItem("x"),
            WriteItem("x", lambda ctx: ctx["x"] - 40),
            ReadItem("y"),
            WriteItem("y", lambda ctx: ctx["y"] + 40),
            Commit(),
        ], label="T1 transfers 40 from x to y"),
        TransactionProgram(2, [
            ReadItem("x", into="seen_x"),
            ReadItem("y", into="seen_y"),
            Commit(),
        ], label="T2 audits the total"),
    ]


def _p1_transfer_manifests(outcome: ExecutionOutcome) -> bool:
    # The audit total is wrong *because of a dirty read*.  A wrong total alone
    # is not enough: interleavings where the audit straddles the committed
    # transfer (read x before, y after) also break the total, but that is read
    # skew (A5A) — possible at READ COMMITTED, where P1 must not be — so the
    # realized history must actually contain the P1 pattern.
    if not outcome.committed(2):
        return False
    seen_x = outcome.observed(2, "seen_x")
    seen_y = outcome.observed(2, "seen_y")
    if seen_x is None or seen_y is None or seen_x + seen_y == 100:
        return False
    if outcome.history.is_multiversion():
        # The MV engines (Snapshot Isolation, Read Consistency) only ever hand
        # out committed versions; a wrong total there is read skew, and the
        # raw-history P1 pattern would spuriously match the old-version read.
        return False
    return P1_DIRTY_READ.occurs_in(outcome.history)


P1_SCENARIO = AnomalyScenario(
    code="P1",
    name="Dirty Read",
    description="Reading data written by an uncommitted transaction — either "
                "data that is later rolled back (the strict A1 flavour) or a "
                "mid-transfer state (history H1, the broad flavour).",
    variants=[
        ScenarioVariant(
            name="read-of-rolled-back-write",
            build_database=lambda: _single_account_database(50),
            build_programs=_p1_abort_programs,
            interleaving=[1, 2, 2, 1],
            manifests=_p1_abort_manifests,
            description="w1[x=10] r2[x] c2 a1 — the strict A1 anomaly.",
        ),
        ScenarioVariant(
            name="inconsistent-analysis-H1",
            build_database=_bank_database,
            build_programs=_p1_transfer_programs,
            interleaving=[1, 1, 2, 2, 2, 1, 1, 1],
            manifests=_p1_transfer_manifests,
            description="History H1: the audit sees a total of 60 instead of 100.",
        ),
    ],
)


# ---------------------------------------------------------------------------
# P2 — Fuzzy (non-repeatable) Read
# ---------------------------------------------------------------------------


def _p2_plain_programs() -> List[TransactionProgram]:
    return [
        TransactionProgram(1, [
            ReadItem("x", into="first"),
            ReadItem("x", into="second"),
            Commit(),
        ], label="T1 reads x twice"),
        TransactionProgram(2, [
            ReadItem("x"),
            WriteItem("x", lambda ctx: ctx["x"] + 10),
            Commit(),
        ], label="T2 bumps x"),
    ]


def _p2_manifests(outcome: ExecutionOutcome) -> bool:
    if not outcome.committed(1):
        return False
    return outcome.observed(1, "first") != outcome.observed(1, "second")


def _p2_cursor_programs() -> List[TransactionProgram]:
    return [
        TransactionProgram(1, [
            OpenCursor("c", ["x"]),
            Fetch("c", into="first"),
            ReadItem("x", into="second"),
            Commit(),
        ], label="T1 stabilizes x with a cursor"),
        TransactionProgram(2, [
            ReadItem("x"),
            WriteItem("x", lambda ctx: ctx["x"] + 10),
            Commit(),
        ], label="T2 bumps x"),
    ]


P2_SCENARIO = AnomalyScenario(
    code="P2",
    name="Fuzzy Read",
    description="A transaction rereads a data item and sees a different value "
                "because another transaction updated it in between.",
    variants=[
        ScenarioVariant(
            name="plain-reread",
            build_database=lambda: _single_account_database(100),
            build_programs=_p2_plain_programs,
            interleaving=[1, 2, 2, 2, 1, 1],
            manifests=_p2_manifests,
            description="r1[x] r2[x] w2[x] c2 r1[x] c1 — the A2 anomaly.",
        ),
        ScenarioVariant(
            name="cursor-stabilized-reread",
            build_database=lambda: _single_account_database(100),
            build_programs=_p2_cursor_programs,
            interleaving=[1, 1, 2, 2, 2, 1, 1],
            manifests=_p2_manifests,
            description="The first read holds the item as current of cursor, so "
                        "Cursor Stability keeps it stable.",
        ),
    ],
)


# ---------------------------------------------------------------------------
# P3 — Phantom
# ---------------------------------------------------------------------------


def _p3_count_programs() -> List[TransactionProgram]:
    return [
        TransactionProgram(1, [
            SelectPredicate(ACTIVE_EMPLOYEES, into="employees"),
            ReadItem("z", into="count"),
            Commit(),
        ], label="T1 lists active employees and checks the count"),
        TransactionProgram(2, [
            InsertRow("employees", Row("e4", {"name": "Barbara", "active": True})),
            ReadItem("z"),
            WriteItem("z", lambda ctx: ctx["z"] + 1),
            Commit(),
        ], label="T2 hires an employee and bumps the count"),
    ]


def _p3_count_manifests(outcome: ExecutionOutcome) -> bool:
    if not outcome.committed(1):
        return False
    employees = outcome.observed(1, "employees")
    count = outcome.observed(1, "count")
    if employees is None or count is None:
        return False
    return len(employees) != count


def _guarded_task(key: str) -> Callable[[Dict], Row]:
    """A task row whose hours respect the 8-hour budget the program just read.

    Section 4.2's program checks the predicate total *before* inserting; a
    transaction that sees the budget already full inserts a zero-hour task
    (a no-op against the constraint).  This keeps every program consistency-
    preserving in isolation — serial executions never violate the budget, so
    only genuinely phantom-afflicted interleavings can.
    """
    def build(context: Dict) -> Row:
        total = sum(row.get("hours", 0) for row in context["tasks"])
        return Row(key, {"hours": 1 if total + 1 <= 8 else 0})
    return build


def _p3_tasks_programs() -> List[TransactionProgram]:
    return [
        TransactionProgram(1, [
            SelectPredicate(ALL_TASKS, into="tasks"),
            InsertRow("tasks", _guarded_task("t3")),
            Commit(),
        ], label="T1 adds a one-hour task after checking the total"),
        TransactionProgram(2, [
            SelectPredicate(ALL_TASKS, into="tasks"),
            InsertRow("tasks", _guarded_task("t4")),
            Commit(),
        ], label="T2 adds a one-hour task after checking the total"),
    ]


def _p3_tasks_manifests(outcome: ExecutionOutcome) -> bool:
    total = sum(row.get("hours", 0) for row in outcome.database.table("tasks"))
    return outcome.all_committed(1, 2) and total > 8


P3_SCENARIO = AnomalyScenario(
    code="P3",
    name="Phantom",
    description="A predicate's extent changes under a transaction that has "
                "already evaluated it (history H3 and the Section 4.2 "
                "task-hours example).",
    variants=[
        ScenarioVariant(
            name="employee-count-H3",
            build_database=_employees_database,
            build_programs=_p3_count_programs,
            interleaving=[1, 2, 2, 2, 2, 1, 1],
            manifests=_p3_count_manifests,
            description="History H3: the employee list disagrees with the count.",
        ),
        ScenarioVariant(
            name="disjoint-inserts-task-hours",
            build_database=_tasks_database,
            build_programs=_p3_tasks_programs,
            interleaving=[1, 2, 1, 2, 1, 2],
            manifests=_p3_tasks_manifests,
            description="Both transactions insert different rows into the "
                        "predicate; first-committer-wins never fires, so Snapshot "
                        "Isolation lets the 8-hour constraint break.",
        ),
    ],
)


# ---------------------------------------------------------------------------
# P4 — Lost Update
# ---------------------------------------------------------------------------


def _p4_plain_programs() -> List[TransactionProgram]:
    return [
        TransactionProgram(1, [
            ReadItem("x"),
            WriteItem("x", lambda ctx: ctx["x"] + 30),
            Commit(),
        ], label="T1 adds 30"),
        TransactionProgram(2, [
            ReadItem("x"),
            WriteItem("x", lambda ctx: ctx["x"] + 20),
            Commit(),
        ], label="T2 adds 20"),
    ]


def _p4_manifests(outcome: ExecutionOutcome) -> bool:
    if not outcome.all_committed(1, 2):
        return False
    return outcome.database.get_item("x") != 150


def _p4_cursor_programs() -> List[TransactionProgram]:
    return [
        TransactionProgram(1, [
            OpenCursor("c1", ["x"]),
            Fetch("c1", into="x"),
            CursorUpdate("c1", lambda ctx: ctx["x"] + 30),
            Commit(),
        ], label="T1 adds 30 through a cursor"),
        TransactionProgram(2, [
            OpenCursor("c2", ["x"]),
            Fetch("c2", into="x"),
            CursorUpdate("c2", lambda ctx: ctx["x"] + 20),
            Commit(),
        ], label="T2 adds 20 through a cursor"),
    ]


P4_SCENARIO = AnomalyScenario(
    code="P4",
    name="Lost Update",
    description="History H4: both transactions read x=100 and write back an "
                "increment; one increment vanishes.",
    variants=[
        ScenarioVariant(
            name="plain-read-modify-write",
            build_database=lambda: _single_account_database(100),
            build_programs=_p4_plain_programs,
            interleaving=[1, 2, 2, 2, 1, 1],
            manifests=_p4_manifests,
            description="r1[x] r2[x] w2[x] c2 w1[x] c1 (history H4).",
        ),
        ScenarioVariant(
            name="both-through-cursors",
            build_database=lambda: _single_account_database(100),
            build_programs=_p4_cursor_programs,
            interleaving=[1, 1, 2, 2, 2, 1, 1, 2],
            manifests=_p4_manifests,
            description="Both updates go through cursors, which Cursor Stability "
                        "protects.",
        ),
    ],
)


# ---------------------------------------------------------------------------
# P4C — Cursor Lost Update
# ---------------------------------------------------------------------------


def _p4c_programs() -> List[TransactionProgram]:
    return [
        TransactionProgram(1, [
            OpenCursor("c", ["x"]),
            Fetch("c", into="x"),
            CursorUpdate("c", lambda ctx: ctx["x"] + 30),
            Commit(),
        ], label="T1 adds 30 through a cursor"),
        TransactionProgram(2, [
            ReadItem("x"),
            WriteItem("x", lambda ctx: ctx["x"] + 20),
            Commit(),
        ], label="T2 adds 20 with plain reads"),
    ]


def _p4c_manifests(outcome: ExecutionOutcome) -> bool:
    # The anomaly is specifically T1 clobbering T2's update on the basis of a
    # stale cursor read: rc1[x] ... w2[x] ... w1[x] ... c1 in the realized
    # history, with both transactions committing.
    if not outcome.all_committed(1, 2):
        return False
    return P4C_CURSOR_LOST_UPDATE.occurs_in(outcome.history)


P4C_SCENARIO = AnomalyScenario(
    code="P4C",
    name="Cursor Lost Update",
    description="The cursor form of the lost update: a transaction updates the "
                "row its cursor is on, based on a fetch that predates another "
                "transaction's committed update.",
    variants=[
        ScenarioVariant(
            name="cursor-vs-plain-writer",
            build_database=lambda: _single_account_database(100),
            build_programs=_p4c_programs,
            interleaving=[1, 1, 2, 2, 2, 1, 1],
            manifests=_p4c_manifests,
            description="rc1[x] r2[x] w2[x] c2 wc1[x] c1.",
        ),
    ],
)


# ---------------------------------------------------------------------------
# A5A — Read Skew
# ---------------------------------------------------------------------------


def _a5a_programs() -> List[TransactionProgram]:
    return [
        TransactionProgram(1, [
            ReadItem("x", into="seen_x"),
            ReadItem("y", into="seen_y"),
            Commit(),
        ], label="T1 audits x then y"),
        TransactionProgram(2, [
            ReadItem("x"),
            ReadItem("y"),
            WriteItem("x", lambda ctx: ctx["x"] - 40),
            WriteItem("y", lambda ctx: ctx["y"] + 40),
            Commit(),
        ], label="T2 transfers 40 from x to y"),
    ]


def _a5a_manifests(outcome: ExecutionOutcome) -> bool:
    if not outcome.committed(1):
        return False
    seen_x = outcome.observed(1, "seen_x")
    seen_y = outcome.observed(1, "seen_y")
    return seen_x is not None and seen_y is not None and seen_x + seen_y != 100


A5A_SCENARIO = AnomalyScenario(
    code="A5A",
    name="Read Skew",
    description="T1 reads x before, and y after, T2's committed transfer "
                "between them (history H2's inconsistent analysis).",
    variants=[
        ScenarioVariant(
            name="audit-across-transfer",
            build_database=_bank_database,
            build_programs=_a5a_programs,
            interleaving=[1, 2, 2, 2, 2, 2, 1, 1],
            manifests=_a5a_manifests,
            description="r1[x] then T2 commits a transfer, then r1[y].",
        ),
    ],
)


# ---------------------------------------------------------------------------
# A5B — Write Skew
# ---------------------------------------------------------------------------


def _a5b_withdraw(target: str) -> Callable[[Dict], float]:
    """Withdraw 90 from ``target`` only when the joint balance covers it.

    The paper's premise is that each transaction *alone* preserves
    ``x + y >= 0``: it reads both balances and only withdraws when the total
    is sufficient.  (An unconditional withdrawal would violate the constraint
    even serially, turning every serial schedule into a false witness.)  From
    the initial 50/50 the curated interleaving still realizes the familiar
    ``y = -40`` / ``x = -40`` write-skew values.
    """
    return lambda ctx: ctx[target] - 90 if ctx["x"] + ctx["y"] >= 90 else ctx[target]


def _a5b_plain_programs() -> List[TransactionProgram]:
    return [
        TransactionProgram(1, [
            ReadItem("x"),
            ReadItem("y"),
            WriteItem("y", _a5b_withdraw("y")),
            Commit(),
        ], label="T1 withdraws from y"),
        TransactionProgram(2, [
            ReadItem("x"),
            ReadItem("y"),
            WriteItem("x", _a5b_withdraw("x")),
            Commit(),
        ], label="T2 withdraws from x"),
    ]


def _a5b_manifests(outcome: ExecutionOutcome) -> bool:
    if not outcome.all_committed(1, 2):
        return False
    return (outcome.database.get_item("x") + outcome.database.get_item("y")) < 0


def _a5b_cursor_programs() -> List[TransactionProgram]:
    return [
        TransactionProgram(1, [
            OpenCursor("cx", ["x"]),
            OpenCursor("cy", ["y"]),
            Fetch("cx", into="x"),
            Fetch("cy", into="y"),
            CursorUpdate("cy", _a5b_withdraw("y")),
            Commit(),
        ], label="T1 withdraws from y holding cursors on both"),
        TransactionProgram(2, [
            OpenCursor("cx", ["x"]),
            OpenCursor("cy", ["y"]),
            Fetch("cx", into="x"),
            Fetch("cy", into="y"),
            CursorUpdate("cx", _a5b_withdraw("x")),
            Commit(),
        ], label="T2 withdraws from x holding cursors on both"),
    ]


A5B_SCENARIO = AnomalyScenario(
    code="A5B",
    name="Write Skew",
    description="History H5: each transaction reads both balances and drives "
                "one negative; each preserves x + y >= 0 alone, together they "
                "do not.",
    variants=[
        ScenarioVariant(
            name="plain-reads",
            build_database=_write_skew_database,
            build_programs=_a5b_plain_programs,
            interleaving=[1, 1, 2, 2, 2, 1, 2, 1],
            manifests=_a5b_manifests,
            description="History H5 with plain reads.",
        ),
        ScenarioVariant(
            name="cursors-on-both-items",
            build_database=_write_skew_database,
            build_programs=_a5b_cursor_programs,
            interleaving=[1, 1, 1, 1, 2, 2, 2, 2, 1, 2, 1, 2],
            manifests=_a5b_manifests,
            description="Both transactions parlay multiple cursors into "
                        "repeatable-read-like protection (Section 4.1).",
        ),
    ],
)


#: Every Table 4 column, in the paper's column order.
ALL_SCENARIOS: Tuple[AnomalyScenario, ...] = (
    P0_SCENARIO,
    P1_SCENARIO,
    P4C_SCENARIO,
    P4_SCENARIO,
    P2_SCENARIO,
    P3_SCENARIO,
    A5A_SCENARIO,
    A5B_SCENARIO,
)


def scenario_by_code(code: str) -> AnomalyScenario:
    """Look up a scenario by its phenomenon code."""
    for scenario in ALL_SCENARIOS:
        if scenario.code == code.upper():
            return scenario
    raise KeyError(f"no scenario for phenomenon {code!r}")
