"""Named, picklable program-set specifications for the schedule-space explorer.

The explorer fans schedule execution out across worker processes, so the
description of *what* to run must cross a process boundary.  Transaction
programs themselves cannot (their steps close over lambdas), so the explorer
ships a :class:`ProgramSetSpec` — a registered builder name plus keyword
parameters — and each worker rebuilds the database and programs locally,
fresh for every schedule.

Builders registered here are explorer-oriented workloads: small contended
program sets whose interleaving spaces contain the paper's anomalies (lost
update, read skew, write skew, dirty read), plus a parameterized contention
workload for throughput studies.  Register project-specific sets with
:func:`register_program_set`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Tuple

from ..engine.programs import Abort, Commit, ReadItem, TransactionProgram, WriteItem
from ..storage.database import Database
from .generators import random_programs, uniform_database

__all__ = [
    "ProgramSet",
    "ProgramSetSpec",
    "register_program_set",
    "resolve_program_set",
    "build_program_set",
    "available_program_sets",
]

#: What a builder returns: a fresh database plus fresh transaction programs.
ProgramSet = Tuple[Database, List[TransactionProgram]]

_REGISTRY: Dict[str, Callable[..., ProgramSet]] = {}


@dataclass(frozen=True)
class ProgramSetSpec:
    """A picklable reference to a registered program-set builder.

    ``params`` is stored as a sorted tuple of ``(key, value)`` pairs so specs
    are hashable and compare by value; use :meth:`ProgramSetSpec.make` (or the
    keyword constructor) rather than building the tuple by hand.
    """

    name: str
    params: Tuple[Tuple[str, Any], ...] = field(default=())

    @classmethod
    def make(cls, name: str, **params: Any) -> "ProgramSetSpec":
        """Build a spec from keyword parameters."""
        return cls(name, tuple(sorted(params.items())))

    def kwargs(self) -> Dict[str, Any]:
        """The parameters as a plain keyword dict."""
        return dict(self.params)

    def describe(self) -> str:
        """``name(key=value, ...)`` for report headers."""
        inner = ", ".join(f"{key}={value!r}" for key, value in self.params)
        return f"{self.name}({inner})"


def register_program_set(name: str) -> Callable[[Callable[..., ProgramSet]], Callable[..., ProgramSet]]:
    """Decorator: register a builder under ``name`` for use in explorer specs."""
    def decorate(builder: Callable[..., ProgramSet]) -> Callable[..., ProgramSet]:
        if name in _REGISTRY:
            raise ValueError(f"program set {name!r} is already registered")
        _REGISTRY[name] = builder
        return builder
    return decorate


def resolve_program_set(spec: ProgramSetSpec) -> Callable[..., ProgramSet]:
    """The registered builder a spec names (raises KeyError with the known names)."""
    try:
        return _REGISTRY[spec.name]
    except KeyError:
        known = ", ".join(sorted(_REGISTRY)) or "<none>"
        raise KeyError(f"unknown program set {spec.name!r}; registered: {known}")


def build_program_set(spec: ProgramSetSpec) -> ProgramSet:
    """Instantiate a spec: a fresh database and fresh programs, every call."""
    return resolve_program_set(spec)(**spec.kwargs())


def available_program_sets() -> List[str]:
    """The names of every registered builder."""
    return sorted(_REGISTRY)


# -- built-in explorer workloads ----------------------------------------------------


@register_program_set("increments")
def increments(transactions: int = 2, initial: int = 100,
               amount: int = 10) -> ProgramSet:
    """N transactions each read-modify-write the same counter (P4 territory).

    Under a serial execution the counter ends at ``initial + N * amount``;
    any interleaving that loses an update ends lower.
    """
    database = Database()
    database.set_item("x", initial)
    programs = [
        TransactionProgram(txn, [
            ReadItem("x"),
            WriteItem("x", lambda ctx: ctx["x"] + amount),
            Commit(),
        ], label=f"incr-{txn}")
        for txn in range(1, transactions + 1)
    ]
    return database, programs


@register_program_set("bank-transfer")
def bank_transfer(balance: int = 50, amount: int = 40) -> ProgramSet:
    """Two transfers between accounts x and y (sum invariant = 2 * balance)."""
    database = Database()
    database.set_item("x", balance)
    database.set_item("y", balance)

    def transfer(txn: int, source: str, target: str) -> TransactionProgram:
        return TransactionProgram(txn, [
            ReadItem(source),
            WriteItem(source, lambda ctx: ctx[source] - amount),
            ReadItem(target),
            WriteItem(target, lambda ctx: ctx[target] + amount),
            Commit(),
        ], label=f"transfer-{source}-{target}")

    return database, [transfer(1, "x", "y"), transfer(2, "y", "x")]


@register_program_set("write-skew")
def write_skew(initial: int = 50) -> ProgramSet:
    """The A5B pattern: each transaction reads x and y, then writes the other's item."""
    database = Database()
    database.set_item("x", initial)
    database.set_item("y", initial)
    t1 = TransactionProgram(1, [
        ReadItem("x"),
        ReadItem("y"),
        WriteItem("y", lambda ctx: ctx["x"] + ctx["y"]),
        Commit(),
    ], label="skew-writes-y")
    t2 = TransactionProgram(2, [
        ReadItem("x"),
        ReadItem("y"),
        WriteItem("x", lambda ctx: ctx["x"] + ctx["y"]),
        Commit(),
    ], label="skew-writes-x")
    return database, [t1, t2]


@register_program_set("read-skew")
def read_skew(initial: int = 50, amount: int = 40) -> ProgramSet:
    """The A5A pattern: a reader scans x then y while a writer moves value between them."""
    database = Database()
    database.set_item("x", initial)
    database.set_item("y", initial)
    reader = TransactionProgram(1, [
        ReadItem("x", into="x_seen"),
        ReadItem("y", into="y_seen"),
        Commit(),
    ], label="auditor")
    writer = TransactionProgram(2, [
        ReadItem("x"),
        WriteItem("x", lambda ctx: ctx["x"] - amount),
        ReadItem("y"),
        WriteItem("y", lambda ctx: ctx["y"] + amount),
        Commit(),
    ], label="mover")
    return database, [reader, writer]


@register_program_set("dirty-abort")
def dirty_abort(initial: int = 50, amount: int = 10) -> ProgramSet:
    """A writer that aborts after writing, plus a reader (P1 / A1 territory)."""
    database = Database()
    database.set_item("x", initial)
    writer = TransactionProgram(1, [
        ReadItem("x"),
        WriteItem("x", lambda ctx: ctx["x"] + amount),
        Abort(),
    ], label="doomed-writer")
    reader = TransactionProgram(2, [
        ReadItem("x", into="x_seen"),
        Commit(),
    ], label="reader")
    return database, [writer, reader]


@register_program_set("sharded-increments")
def sharded_increments(shards: int = 2, transactions_per_shard: int = 1,
                       initial: int = 100, amount: int = 10) -> ProgramSet:
    """Independent increment groups: shard s's transactions RMW only ``x<s>``.

    Transactions in different shards have disjoint footprints, so most
    interleavings differ only by commuting cross-shard steps — the workload
    partial-order reduction collapses by orders of magnitude while plain
    enumeration pays the full multinomial.
    """
    database = Database()
    for shard in range(shards):
        database.set_item(f"x{shard}", initial)
    programs = []
    txn = 0
    for shard in range(shards):
        item = f"x{shard}"
        for _ in range(transactions_per_shard):
            txn += 1
            programs.append(TransactionProgram(txn, [
                ReadItem(item),
                WriteItem(item, lambda ctx, item=item: ctx[item] + amount),
                Commit(),
            ], label=f"incr-s{shard}-{txn}"))
    return database, programs


@register_program_set("contention")
def contention(seed: int = 0, transactions: int = 4, items: int = 6,
               hot_items: int = 2, read_only_fraction: float = 0.25,
               operations_per_transaction: int = 2) -> ProgramSet:
    """The generators.py contention workload, sized for schedule exploration."""
    database = uniform_database(items)
    programs = random_programs(
        seed,
        transactions=transactions,
        items=items,
        operations_per_transaction=operations_per_transaction,
        read_only_fraction=read_only_fraction,
        hot_items=hot_items,
    )
    return database, programs
