"""Workloads: the paper's anomaly scenarios and randomized generators."""

from .scenarios import (
    ALL_SCENARIOS,
    AnomalyScenario,
    ScenarioVariant,
    VariantResult,
    evaluate_scenario,
    run_variant,
    scenario_by_code,
)
from .generators import (
    contention_workload,
    history_corpus,
    random_history,
    random_programs,
    uniform_database,
)

__all__ = [
    "ALL_SCENARIOS", "AnomalyScenario", "ScenarioVariant", "VariantResult",
    "evaluate_scenario", "run_variant", "scenario_by_code",
    "contention_workload", "history_corpus", "random_history",
    "random_programs", "uniform_database",
]
