"""The lock manager: granted-lock table, conflict detection, upgrades.

"If a transaction holds a lock, and another transaction requests a conflicting
lock, then the new lock request is not granted until the former transaction's
conflicting lock has been released." (Section 2.3.)

The manager is deliberately *non-queueing*: a conflicting request returns a
:class:`LockRequestResult` naming the blocking transactions, and the schedule
runner is responsible for retrying the operation later and for feeding the
waits-for graph used by deadlock detection.  This keeps the manager a pure
state machine over the granted-lock table, which makes it easy to test.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from .modes import (
    ItemTarget,
    LockDuration,
    LockMode,
    LockTarget,
    modes_conflict,
)

__all__ = ["HeldLock", "LockRequestResult", "LockManager"]


@dataclass
class HeldLock:
    """One granted lock."""

    txn: int
    target: LockTarget
    mode: LockMode
    duration: LockDuration
    #: For CURSOR-duration locks, the cursor that holds the lock.
    cursor: Optional[str] = None

    def describe(self) -> str:
        """Human-readable rendering for diagnostics."""
        extra = f" via cursor {self.cursor}" if self.cursor else ""
        return f"T{self.txn} {self.mode}-{self.duration} on {self.target}{extra}"


@dataclass(frozen=True)
class LockRequestResult:
    """Outcome of a lock request."""

    granted: bool
    #: Transactions holding conflicting locks (empty when granted).
    blockers: FrozenSet[int] = frozenset()

    @classmethod
    def ok(cls) -> "LockRequestResult":
        return cls(granted=True)

    @classmethod
    def blocked(cls, blockers: Iterable[int]) -> "LockRequestResult":
        return cls(granted=False, blockers=frozenset(blockers))


#: The shared granted result — immutable, so one instance serves every grant.
_GRANTED = LockRequestResult(granted=True)


class LockManager:
    """Tracks granted locks and answers (non-blocking) lock requests."""

    #: The ItemTarget interning cache stays out of the checkpoint token: one
    #: immutable target per item name, a pure function of the name.
    _checkpoint_stable = ("_item_targets",)

    def __init__(self) -> None:
        self._locks: List[HeldLock] = []
        #: Cumulative count of requests that came back blocked (for benchmarks).
        self.blocked_requests = 0
        #: Monotonic counter bumped on every change to the granted-lock table.
        #: A blocked request's outcome is a pure function of the table, so the
        #: schedule runner memoizes blocked results keyed on this version and
        #: skips re-submitting a retry the table cannot have changed.
        self.version = 0
        #: Interned ItemTargets for the compiled-kernel fast path: one
        #: immutable target instance per item name serves every request.
        self._item_targets: Dict[str, ItemTarget] = {}
        #: Per-item-name version counters, bumped alongside ``version``
        #: whenever a table change touches a lock on that :class:`ItemTarget`.
        #: An item lock request can only be blocked by locks on the same item
        #: name (ItemTargets never overlap row or predicate targets), so a
        #: blocked item request's outcome is a pure function of the item's
        #: counter — the schedule runner keys its parked blocked-result memos
        #: on :meth:`version_for` and parked attempts survive unrelated lock
        #: traffic.  Missing names read as 0.
        self._item_versions: Dict[str, int] = {}
        #: The (version, lock) of a just-granted NEW short-duration lock, used
        #: by release_short to recognise a transient grant/release pair within
        #: one engine action and roll the version back to its pre-grant value.
        #: A short lock is invisible to every other transaction (it exists
        #: only inside one cooperative action), so a grant+release that leaves
        #: the table unchanged cannot change any blocked outcome — keeping the
        #: version unchanged lets the schedule runner's blocked-result memos
        #: survive transient actions instead of re-submitting provable no-ops.
        self._short_grant: Optional[Tuple[int, HeldLock]] = None

    # -- queries ----------------------------------------------------------------

    def locks_of(self, txn: int) -> List[HeldLock]:
        """All locks currently held by a transaction."""
        return [lock for lock in self._locks if lock.txn == txn]

    def holders(self, target: LockTarget, mode: LockMode = LockMode.SHARED) -> Set[int]:
        """Transactions holding locks that would conflict with (target, mode)."""
        return {
            lock.txn
            for lock in self._locks
            if lock.target.overlaps(target) and modes_conflict(lock.mode, mode)
        }

    def held_by(self, txn: int, target: LockTarget,
                minimum: LockMode = LockMode.SHARED) -> bool:
        """True when the transaction already holds a sufficient lock on the target."""
        for lock in self._locks:
            if lock.txn != txn or lock.target.key() != target.key():
                continue
            if minimum is LockMode.SHARED or lock.mode is LockMode.EXCLUSIVE:
                return True
        return False

    def all_locks(self) -> List[HeldLock]:
        """Every granted lock (a copy)."""
        return list(self._locks)

    def version_for(self, name: str) -> int:
        """The per-item version counter of one item name (0 until first touched).

        Bumped exactly when a table change adds, removes, or strengthens a
        lock on ``ItemTarget(name)`` — the only state a blocked item request
        on that name can depend on.
        """
        return self._item_versions.get(name, 0)

    def _bump_item(self, name: str) -> None:
        versions = self._item_versions
        versions[name] = versions.get(name, 0) + 1

    # -- checkpoints -----------------------------------------------------------------

    def checkpoint(self) -> Tuple:
        """A value token of the granted-lock table (for :meth:`restore`).

        Entries are flattened to field tuples because live ``HeldLock``
        objects are mutated in place on upgrades — the token must survive
        that.  The version counter is part of the token: the schedule
        runner's blocked-result memos are keyed on it, so rolling the table
        back must roll the version back to the exact value it had at the
        checkpoint (sound because a version value identifies a unique table
        state along any execution path through the checkpoint).
        """
        return (
            tuple((lock.txn, lock.target, lock.mode, lock.duration, lock.cursor)
                  for lock in self._locks),
            self.blocked_requests,
            self.version,
            dict(self._item_versions),
        )

    def restore(self, token: Tuple) -> None:
        """Reset the granted-lock table to a :meth:`checkpoint` token (reusable)."""
        entries, blocked, version, item_versions = token
        self._locks = [HeldLock(*entry) for entry in entries]
        self.blocked_requests = blocked
        self.version = version
        self._item_versions = dict(item_versions)
        self._short_grant = None

    # -- acquisition ---------------------------------------------------------------

    def request(self, txn: int, target: LockTarget, mode: LockMode,
                duration: LockDuration, cursor: Optional[str] = None) -> LockRequestResult:
        """Request a lock.

        Grants immediately when no *other* transaction holds a conflicting
        lock; otherwise reports the blockers.  A transaction's own locks never
        block it — re-requests and Share→Exclusive upgrades are handled by
        strengthening the existing entry.
        """
        self._short_grant = None
        blockers = None
        for lock in self._locks:
            if (lock.txn != txn
                    and lock.target.overlaps(target)
                    and modes_conflict(lock.mode, mode)):
                if blockers is None:
                    blockers = {lock.txn}
                else:
                    blockers.add(lock.txn)
        if blockers:
            self.blocked_requests += 1
            return LockRequestResult.blocked(blockers)

        self.version += 1
        if type(target) is ItemTarget:
            self._bump_item(target.name)
        existing = self._find(txn, target)
        if existing is not None:
            # Upgrade mode and extend duration rather than duplicating.
            if mode is LockMode.EXCLUSIVE:
                existing.mode = LockMode.EXCLUSIVE
            existing.duration = _stronger_duration(existing.duration, duration)
            if cursor is not None:
                existing.cursor = cursor
            return _GRANTED

        granted = HeldLock(txn, target, mode, duration, cursor)
        self._locks.append(granted)
        if duration is LockDuration.SHORT:
            self._short_grant = (self.version, granted)
        return _GRANTED

    def item_target(self, name: str) -> ItemTarget:
        """The interned :class:`ItemTarget` for a name (one instance per item)."""
        target = self._item_targets.get(name)
        if target is None:
            target = self._item_targets[name] = ItemTarget(name)
        return target

    def request_item(self, txn: int, name: str, mode: LockMode,
                     duration: LockDuration) -> LockRequestResult:
        """:meth:`request` specialized for plain item targets (the hot path).

        Behaviour-identical to ``request(txn, ItemTarget(name), mode,
        duration)`` — same blockers, same ``blocked_requests`` and ``version``
        accounting, same upgrade rules — with the target-overlap and
        mode-conflict calls inlined: an :class:`ItemTarget` only ever overlaps
        an :class:`ItemTarget` of the same name, and two modes conflict
        exactly when either is Exclusive.
        """
        self._short_grant = None
        exclusive = LockMode.EXCLUSIVE
        blockers = None
        own = None
        for lock in self._locks:
            target = lock.target
            if type(target) is not ItemTarget or target.name != name:
                continue
            if lock.txn == txn:
                own = lock
            elif lock.mode is exclusive or mode is exclusive:
                if blockers is None:
                    blockers = {lock.txn}
                else:
                    blockers.add(lock.txn)
        if blockers:
            self.blocked_requests += 1
            return LockRequestResult.blocked(blockers)

        self.version += 1
        self._bump_item(name)
        if own is not None:
            if mode is exclusive:
                own.mode = exclusive
            own.duration = _stronger_duration(own.duration, duration)
            return _GRANTED
        granted = HeldLock(txn, self.item_target(name), mode, duration, None)
        self._locks.append(granted)
        if duration is LockDuration.SHORT:
            self._short_grant = (self.version, granted)
        return _GRANTED

    def grant_transient_item(self, txn: int, name: str,
                             mode: LockMode) -> Optional[LockRequestResult]:
        """Fused ``request_item(..., SHORT) + release_short`` for one action.

        The locking engines take a SHORT-duration lock at the start of an
        action and release it as soon as the action completes; between the two
        calls nothing else observes the table (the runner is cooperative), so
        the pair can be applied as one step.  It relies on the engines'
        standing invariant that a transaction holds no SHORT lock when an
        action starts (every action drops its short locks before returning,
        and blocked actions never acquire), under which the net table effect
        is:

        * no lock held on the item → a new SHORT entry would be appended and
          immediately dropped again: table unchanged, ``version`` unchanged
          (the release rolls the grant's bump back — see
          :meth:`release_short`);
        * a (LONG/CURSOR) lock already held → the grant strengthens its mode
          for an Exclusive request and leaves its duration at the stronger
          value, and the release then finds no SHORT lock: ``version`` +1.

        Returns a blocked result, or None when granted — with ``version`` and
        ``blocked_requests`` accounting identical to the unfused pair.
        """
        self._short_grant = None
        exclusive = LockMode.EXCLUSIVE
        blockers = None
        own = None
        for lock in self._locks:
            target = lock.target
            if type(target) is not ItemTarget or target.name != name:
                continue
            if lock.txn == txn:
                own = lock
            elif lock.mode is exclusive or mode is exclusive:
                if blockers is None:
                    blockers = {lock.txn}
                else:
                    blockers.add(lock.txn)
        if blockers:
            self.blocked_requests += 1
            return LockRequestResult.blocked(blockers)
        if own is not None:
            self.version += 1
            self._bump_item(name)
            if mode is exclusive:
                own.mode = exclusive
        # No lock already held: the unfused pair appends a new SHORT entry
        # (version +1, transient-grant marker set) and release_short removes
        # it again, rolling the version back — net zero, no table change.
        return None

    def _find(self, txn: int, target: LockTarget) -> Optional[HeldLock]:
        for lock in self._locks:
            if lock.txn == txn and lock.target.key() == target.key():
                return lock
        return None

    # -- release -------------------------------------------------------------------------

    def release(self, txn: int, target: LockTarget) -> None:
        """Release one transaction's lock on a specific target (if held)."""
        self._short_grant = None
        kept = [
            lock for lock in self._locks
            if not (lock.txn == txn and lock.target.key() == target.key())
        ]
        if len(kept) != len(self._locks):
            self.version += 1
            if type(target) is ItemTarget:
                self._bump_item(target.name)
            self._locks = kept

    def release_short(self, txn: int) -> None:
        """Release every SHORT-duration lock held by a transaction.

        The engines call this after each action completes, which is what
        "short duration" means in Table 2.  Levels whose rules take no short
        locks still call it on every action, so the no-op case avoids the
        list rebuild.

        A grant/release pair that leaves the table exactly as it was — the
        common transient case: the action appended one new short lock and
        removes it again — rolls the version back to its pre-grant value
        instead of bumping it.  Sound because a short lock lives entirely
        inside one cooperative action: no other transaction can ever observe
        it, so a net-unchanged table yields bit-identical blocked outcomes
        and the runner's parked blocked-result memos may keep their version.
        (A transaction holds no short locks when an action *starts* — every
        action drops its short locks before returning and blocked actions
        never acquire — so the marker lock is the only short lock in play.)
        """
        marker = self._short_grant
        self._short_grant = None
        if (marker is not None and marker[0] == self.version
                and marker[1].txn == txn
                and marker[1].duration is LockDuration.SHORT):
            self._locks.remove(marker[1])
            self.version -= 1
            target = marker[1].target
            if type(target) is ItemTarget:
                # Roll the per-item counter back too: the transient pair left
                # that item's lock population exactly as it was.
                self._item_versions[target.name] -= 1
            return
        if not any(lock.txn == txn and lock.duration is LockDuration.SHORT
                   for lock in self._locks):
            return
        self.version += 1
        kept = []
        for lock in self._locks:
            if lock.txn == txn and lock.duration is LockDuration.SHORT:
                target = lock.target
                if type(target) is ItemTarget:
                    self._bump_item(target.name)
            else:
                kept.append(lock)
        self._locks = kept

    def release_cursor(self, txn: int, cursor: str) -> None:
        """Release CURSOR-duration locks held through a specific cursor.

        Called when the cursor moves to another row or closes.  Locks that
        were upgraded to LONG (e.g. because the fetched row was updated) are
        not affected.
        """
        self._short_grant = None
        kept = []
        removed = False
        for lock in self._locks:
            if (lock.txn == txn
                    and lock.duration is LockDuration.CURSOR
                    and lock.cursor == cursor):
                removed = True
                target = lock.target
                if type(target) is ItemTarget:
                    self._bump_item(target.name)
            else:
                kept.append(lock)
        if removed:
            self.version += 1
            self._locks = kept

    def release_all(self, txn: int) -> None:
        """Release every lock of a transaction (at commit or abort)."""
        self._short_grant = None
        kept = []
        removed = False
        for lock in self._locks:
            if lock.txn == txn:
                removed = True
                target = lock.target
                if type(target) is ItemTarget:
                    self._bump_item(target.name)
            else:
                kept.append(lock)
        if removed:
            self.version += 1
            self._locks = kept

    def __len__(self) -> int:
        return len(self._locks)


#: Duration strength order, hoisted out of _stronger_duration (hot path).
_DURATION_ORDER = {LockDuration.SHORT: 0, LockDuration.CURSOR: 1, LockDuration.LONG: 2}


def _stronger_duration(current: LockDuration, requested: LockDuration) -> LockDuration:
    """Keep the longer of two durations when re-requesting a held lock."""
    if current is requested:
        return current
    return current if _DURATION_ORDER[current] >= _DURATION_ORDER[requested] else requested
