"""The lock manager: granted-lock table, conflict detection, upgrades.

"If a transaction holds a lock, and another transaction requests a conflicting
lock, then the new lock request is not granted until the former transaction's
conflicting lock has been released." (Section 2.3.)

The manager is deliberately *non-queueing*: a conflicting request returns a
:class:`LockRequestResult` naming the blocking transactions, and the schedule
runner is responsible for retrying the operation later and for feeding the
waits-for graph used by deadlock detection.  This keeps the manager a pure
state machine over the granted-lock table, which makes it easy to test.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Optional, Set, Tuple

from .modes import (
    ItemTarget,
    LockDuration,
    LockMode,
    LockTarget,
    PredicateTarget,
    RowTarget,
    modes_conflict,
)

__all__ = ["HeldLock", "LockRequestResult", "LockManager"]


@dataclass
class HeldLock:
    """One granted lock."""

    txn: int
    target: LockTarget
    mode: LockMode
    duration: LockDuration
    #: For CURSOR-duration locks, the cursor that holds the lock.
    cursor: Optional[str] = None

    def describe(self) -> str:
        """Human-readable rendering for diagnostics."""
        extra = f" via cursor {self.cursor}" if self.cursor else ""
        return f"T{self.txn} {self.mode}-{self.duration} on {self.target}{extra}"


@dataclass(frozen=True)
class LockRequestResult:
    """Outcome of a lock request."""

    granted: bool
    #: Transactions holding conflicting locks (empty when granted).
    blockers: FrozenSet[int] = frozenset()

    @classmethod
    def ok(cls) -> "LockRequestResult":
        return cls(granted=True)

    @classmethod
    def blocked(cls, blockers: Iterable[int]) -> "LockRequestResult":
        return cls(granted=False, blockers=frozenset(blockers))


class LockManager:
    """Tracks granted locks and answers (non-blocking) lock requests."""

    def __init__(self) -> None:
        self._locks: List[HeldLock] = []
        #: Cumulative count of requests that came back blocked (for benchmarks).
        self.blocked_requests = 0
        #: Monotonic counter bumped on every change to the granted-lock table.
        #: A blocked request's outcome is a pure function of the table, so the
        #: schedule runner memoizes blocked results keyed on this version and
        #: skips re-submitting a retry the table cannot have changed.
        self.version = 0

    # -- queries ----------------------------------------------------------------

    def locks_of(self, txn: int) -> List[HeldLock]:
        """All locks currently held by a transaction."""
        return [lock for lock in self._locks if lock.txn == txn]

    def holders(self, target: LockTarget, mode: LockMode = LockMode.SHARED) -> Set[int]:
        """Transactions holding locks that would conflict with (target, mode)."""
        return {
            lock.txn
            for lock in self._locks
            if lock.target.overlaps(target) and modes_conflict(lock.mode, mode)
        }

    def held_by(self, txn: int, target: LockTarget,
                minimum: LockMode = LockMode.SHARED) -> bool:
        """True when the transaction already holds a sufficient lock on the target."""
        for lock in self._locks:
            if lock.txn != txn or lock.target.key() != target.key():
                continue
            if minimum is LockMode.SHARED or lock.mode is LockMode.EXCLUSIVE:
                return True
        return False

    def all_locks(self) -> List[HeldLock]:
        """Every granted lock (a copy)."""
        return list(self._locks)

    # -- checkpoints -----------------------------------------------------------------

    def checkpoint(self) -> Tuple:
        """A value token of the granted-lock table (for :meth:`restore`).

        Entries are flattened to field tuples because live ``HeldLock``
        objects are mutated in place on upgrades — the token must survive
        that.  The version counter is part of the token: the schedule
        runner's blocked-result memos are keyed on it, so rolling the table
        back must roll the version back to the exact value it had at the
        checkpoint (sound because a version value identifies a unique table
        state along any execution path through the checkpoint).
        """
        return (
            tuple((lock.txn, lock.target, lock.mode, lock.duration, lock.cursor)
                  for lock in self._locks),
            self.blocked_requests,
            self.version,
        )

    def restore(self, token: Tuple) -> None:
        """Reset the granted-lock table to a :meth:`checkpoint` token (reusable)."""
        entries, blocked, version = token
        self._locks = [HeldLock(*entry) for entry in entries]
        self.blocked_requests = blocked
        self.version = version

    # -- acquisition ---------------------------------------------------------------

    def request(self, txn: int, target: LockTarget, mode: LockMode,
                duration: LockDuration, cursor: Optional[str] = None) -> LockRequestResult:
        """Request a lock.

        Grants immediately when no *other* transaction holds a conflicting
        lock; otherwise reports the blockers.  A transaction's own locks never
        block it — re-requests and Share→Exclusive upgrades are handled by
        strengthening the existing entry.
        """
        blockers = None
        for lock in self._locks:
            if (lock.txn != txn
                    and lock.target.overlaps(target)
                    and modes_conflict(lock.mode, mode)):
                if blockers is None:
                    blockers = {lock.txn}
                else:
                    blockers.add(lock.txn)
        if blockers:
            self.blocked_requests += 1
            return LockRequestResult.blocked(blockers)

        self.version += 1
        existing = self._find(txn, target)
        if existing is not None:
            # Upgrade mode and extend duration rather than duplicating.
            if mode is LockMode.EXCLUSIVE:
                existing.mode = LockMode.EXCLUSIVE
            existing.duration = _stronger_duration(existing.duration, duration)
            if cursor is not None:
                existing.cursor = cursor
            return LockRequestResult.ok()

        self._locks.append(HeldLock(txn, target, mode, duration, cursor))
        return LockRequestResult.ok()

    def _find(self, txn: int, target: LockTarget) -> Optional[HeldLock]:
        for lock in self._locks:
            if lock.txn == txn and lock.target.key() == target.key():
                return lock
        return None

    # -- release -------------------------------------------------------------------------

    def release(self, txn: int, target: LockTarget) -> None:
        """Release one transaction's lock on a specific target (if held)."""
        kept = [
            lock for lock in self._locks
            if not (lock.txn == txn and lock.target.key() == target.key())
        ]
        if len(kept) != len(self._locks):
            self.version += 1
            self._locks = kept

    def release_short(self, txn: int) -> None:
        """Release every SHORT-duration lock held by a transaction.

        The engines call this after each action completes, which is what
        "short duration" means in Table 2.  Levels whose rules take no short
        locks still call it on every action, so the no-op case avoids the
        list rebuild.
        """
        if not any(lock.txn == txn and lock.duration is LockDuration.SHORT
                   for lock in self._locks):
            return
        self.version += 1
        self._locks = [
            lock for lock in self._locks
            if not (lock.txn == txn and lock.duration is LockDuration.SHORT)
        ]

    def release_cursor(self, txn: int, cursor: str) -> None:
        """Release CURSOR-duration locks held through a specific cursor.

        Called when the cursor moves to another row or closes.  Locks that
        were upgraded to LONG (e.g. because the fetched row was updated) are
        not affected.
        """
        kept = [
            lock for lock in self._locks
            if not (
                lock.txn == txn
                and lock.duration is LockDuration.CURSOR
                and lock.cursor == cursor
            )
        ]
        if len(kept) != len(self._locks):
            self.version += 1
            self._locks = kept

    def release_all(self, txn: int) -> None:
        """Release every lock of a transaction (at commit or abort)."""
        kept = [lock for lock in self._locks if lock.txn != txn]
        if len(kept) != len(self._locks):
            self.version += 1
            self._locks = kept

    def __len__(self) -> int:
        return len(self._locks)


def _stronger_duration(current: LockDuration, requested: LockDuration) -> LockDuration:
    """Keep the longer of two durations when re-requesting a held lock."""
    order = {LockDuration.SHORT: 0, LockDuration.CURSOR: 1, LockDuration.LONG: 2}
    return current if order[current] >= order[requested] else requested
