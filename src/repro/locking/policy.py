"""Locking policies: Table 2 of the paper, one policy per isolation level.

Table 2 defines the locking isolation levels by the scope, mode, and duration
of the locks a well-formed transaction must take:

========================  =============================  =========================
Level                     Read locks                     Write locks
========================  =============================  =========================
Degree 0                  none                           well-formed, short
Degree 1 = Locking RU     none                           well-formed, long
Degree 2 = Locking RC     well-formed, short (both)      well-formed, long
Cursor Stability          short; held on current of      well-formed, long
                          cursor; short predicate locks
Locking REPEATABLE READ   long item locks, short         well-formed, long
                          predicate locks
Degree 3 = Locking SER    long (both)                    well-formed, long
========================  =============================  =========================

A :class:`LockingPolicy` answers, for each kind of action, what lock the
engine must request (mode + duration), or ``None`` for "no lock required".
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from ..core.isolation import IsolationLevelName
from .modes import LockDuration, LockMode

__all__ = ["LockRule", "LockingPolicy", "POLICIES", "policy_for"]


@dataclass(frozen=True)
class LockRule:
    """The lock a policy requires for one kind of action."""

    mode: LockMode
    duration: LockDuration


@dataclass(frozen=True)
class LockingPolicy:
    """What locks each action must take under one locking isolation level."""

    level: IsolationLevelName
    #: Lock for an item / row read, or None when reads take no locks.
    item_read: Optional[LockRule]
    #: Lock for a predicate read, or None.
    predicate_read: Optional[LockRule]
    #: Lock for any write (item, row, insert, update, delete).
    write: LockRule
    #: Lock for a read through a cursor (FETCH).  Cursor Stability holds this
    #: until the cursor moves or closes.
    cursor_read: Optional[LockRule]

    @property
    def name(self) -> str:
        """The level's display name."""
        return self.level.value

    def describe(self) -> Dict[str, str]:
        """A rendering of the policy used by the Table 2 benchmark."""
        def render(rule: Optional[LockRule]) -> str:
            if rule is None:
                return "none required"
            return f"{rule.mode.value} {rule.duration.value}"

        return {
            "item read": render(self.item_read),
            "predicate read": render(self.predicate_read),
            "cursor read": render(self.cursor_read),
            "write": render(self.write),
        }


POLICIES: Dict[IsolationLevelName, LockingPolicy] = {
    IsolationLevelName.DEGREE_0: LockingPolicy(
        level=IsolationLevelName.DEGREE_0,
        item_read=None,
        predicate_read=None,
        write=LockRule(LockMode.EXCLUSIVE, LockDuration.SHORT),
        cursor_read=None,
    ),
    IsolationLevelName.READ_UNCOMMITTED: LockingPolicy(
        level=IsolationLevelName.READ_UNCOMMITTED,
        item_read=None,
        predicate_read=None,
        write=LockRule(LockMode.EXCLUSIVE, LockDuration.LONG),
        cursor_read=None,
    ),
    IsolationLevelName.READ_COMMITTED: LockingPolicy(
        level=IsolationLevelName.READ_COMMITTED,
        item_read=LockRule(LockMode.SHARED, LockDuration.SHORT),
        predicate_read=LockRule(LockMode.SHARED, LockDuration.SHORT),
        write=LockRule(LockMode.EXCLUSIVE, LockDuration.LONG),
        cursor_read=LockRule(LockMode.SHARED, LockDuration.SHORT),
    ),
    IsolationLevelName.CURSOR_STABILITY: LockingPolicy(
        level=IsolationLevelName.CURSOR_STABILITY,
        item_read=LockRule(LockMode.SHARED, LockDuration.SHORT),
        predicate_read=LockRule(LockMode.SHARED, LockDuration.SHORT),
        write=LockRule(LockMode.EXCLUSIVE, LockDuration.LONG),
        cursor_read=LockRule(LockMode.SHARED, LockDuration.CURSOR),
    ),
    IsolationLevelName.REPEATABLE_READ: LockingPolicy(
        level=IsolationLevelName.REPEATABLE_READ,
        item_read=LockRule(LockMode.SHARED, LockDuration.LONG),
        predicate_read=LockRule(LockMode.SHARED, LockDuration.SHORT),
        write=LockRule(LockMode.EXCLUSIVE, LockDuration.LONG),
        cursor_read=LockRule(LockMode.SHARED, LockDuration.LONG),
    ),
    IsolationLevelName.SERIALIZABLE: LockingPolicy(
        level=IsolationLevelName.SERIALIZABLE,
        item_read=LockRule(LockMode.SHARED, LockDuration.LONG),
        predicate_read=LockRule(LockMode.SHARED, LockDuration.LONG),
        write=LockRule(LockMode.EXCLUSIVE, LockDuration.LONG),
        cursor_read=LockRule(LockMode.SHARED, LockDuration.LONG),
    ),
}


def policy_for(level: IsolationLevelName) -> LockingPolicy:
    """The Table 2 locking policy for an isolation level."""
    try:
        return POLICIES[level]
    except KeyError:
        raise KeyError(
            f"{level.value} is not a locking isolation level (see Table 2)"
        ) from None
