"""Deadlock detection over the waits-for graph, with victim selection.

Lock-based isolation levels above READ UNCOMMITTED can deadlock: the classic
case in this reproduction is the lost-update scenario under Locking
REPEATABLE READ, where both transactions hold Share locks on ``x`` and each
waits for the other to release it before upgrading to Exclusive.  The paper
does not prescribe a deadlock policy (it is orthogonal to the isolation
definitions), so we use the standard approach: maintain a waits-for graph,
detect cycles, and abort a victim (by default the youngest transaction in the
cycle) so that the remaining transactions can proceed.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Optional, Set, Tuple

__all__ = ["WaitsForGraph", "Deadlock"]


@dataclass(frozen=True)
class Deadlock:
    """A detected deadlock: the cycle of transactions and the chosen victim."""

    cycle: Tuple[int, ...]
    victim: int


class WaitsForGraph:
    """Directed graph: an edge ``waiter -> holder`` means waiter is blocked on holder."""

    def __init__(self) -> None:
        self._edges: Dict[int, Set[int]] = {}

    # -- maintenance -------------------------------------------------------------

    def set_waits(self, waiter: int, holders: Iterable[int]) -> None:
        """Record that ``waiter`` is currently blocked on ``holders``.

        Replaces any previous wait edges of the same waiter (a transaction
        waits for exactly one lock request at a time).
        """
        current = self._edges.get(waiter)
        if current is not None and current == holders and waiter not in current:
            # Replayed blocked attempts re-report identical blockers; the
            # edge set is already exactly this (the stored set never contains
            # the waiter, so equality implies the filtered set matches too).
            return
        targets = {holder for holder in holders if holder != waiter}
        if targets:
            self._edges[waiter] = targets
        else:
            self._edges.pop(waiter, None)

    def clear_waits(self, waiter: int) -> None:
        """Remove the waiter's outgoing edges (its request was granted or it died)."""
        self._edges.pop(waiter, None)

    def remove_transaction(self, txn: int) -> None:
        """Remove a transaction entirely (it committed or aborted)."""
        self._edges.pop(txn, None)
        for waiter in list(self._edges):
            self._edges[waiter].discard(txn)
            if not self._edges[waiter]:
                del self._edges[waiter]

    def waiting(self) -> Set[int]:
        """The transactions currently blocked on someone."""
        return set(self._edges)

    def is_waiting(self, txn: int) -> bool:
        """True when this transaction is currently blocked on someone."""
        return txn in self._edges

    def any_waiting(self, txns: Iterable[int]) -> bool:
        """True when any of the given transactions is itself waiting."""
        edges = self._edges
        if not edges:
            return False
        for txn in txns:
            if txn in edges:
                return True
        return False

    # -- checkpoints -----------------------------------------------------------------

    def checkpoint(self) -> Tuple[Tuple[int, Tuple[int, ...]], ...]:
        """A value token of the edge set (for :meth:`restore`)."""
        return tuple((waiter, tuple(holders))
                     for waiter, holders in self._edges.items())

    def restore(self, token: Tuple[Tuple[int, Tuple[int, ...]], ...]) -> None:
        """Reset the edge set to a :meth:`checkpoint` token (reusable)."""
        self._edges = {waiter: set(holders) for waiter, holders in token}

    def waits_on(self, waiter: int) -> Set[int]:
        """The transactions a waiter is blocked on."""
        return set(self._edges.get(waiter, set()))

    # -- detection ------------------------------------------------------------------

    def find_cycle(self) -> Optional[List[int]]:
        """Some cycle in the waits-for graph, or None."""
        edges = self._edges
        # Every edge on a cycle targets a node that itself waits; when no
        # edge does, the DFS cannot find anything — skip it.
        for holders in edges.values():
            if not holders.isdisjoint(edges.keys()):
                break
        else:
            return None
        visiting: Set[int] = set()
        visited: Set[int] = set()
        stack: List[int] = []

        def visit(node: int) -> Optional[List[int]]:
            visiting.add(node)
            stack.append(node)
            for neighbour in sorted(self._edges.get(node, set())):
                if neighbour in visiting:
                    start = stack.index(neighbour)
                    return stack[start:]
                if neighbour not in visited:
                    found = visit(neighbour)
                    if found is not None:
                        return found
            visiting.discard(node)
            visited.add(node)
            stack.pop()
            return None

        for node in sorted(self._edges):
            if node not in visited:
                found = visit(node)
                if found is not None:
                    return found
        return None

    def detect(self, victim_chooser: Optional[Callable[[List[int]], int]] = None
               ) -> Optional[Deadlock]:
        """Detect a deadlock and choose a victim.

        The default victim policy aborts the youngest transaction in the cycle
        (the one with the largest identifier), which matches the common
        "least work lost" heuristic in our scenarios where identifiers are
        assigned in start order.
        """
        cycle = self.find_cycle()
        if cycle is None:
            return None
        chooser = victim_chooser or max
        return Deadlock(cycle=tuple(cycle), victim=chooser(cycle))
