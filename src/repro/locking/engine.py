"""The locking scheduler: one engine implementing every Table 2 isolation level.

The engine updates the shared database *in place* (the classical single-
version architecture the paper's Section 2.3 describes): a write first records
a before-image in the undo log, then applies; an abort restores the before-
images in reverse.  Which locks each action must take — and for how long —
comes from the :class:`~repro.locking.policy.LockingPolicy` chosen at
construction, so the same code realizes Degree 0 through Locking
SERIALIZABLE, plus Cursor Stability.

Blocking is cooperative: a conflicting lock request returns a BLOCKED result
naming the holders, and the schedule runner retries later (and detects
deadlocks on the resulting waits-for graph).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Optional, Tuple

from ..core.isolation import IsolationLevelName
from ..engine.interface import (
    OP_ABORT,
    OP_COMMIT,
    OP_READ,
    OP_WRITE,
    Engine,
    EngineError,
    OpResult,
    TransactionState,
)
from ..storage.database import Database
from ..storage.predicates import Predicate
from ..storage.recovery import UndoLog
from ..storage.rows import Row
from .lock_manager import LockManager
from .modes import ItemTarget, LockDuration, LockMode, PredicateTarget, RowTarget
from .policy import LockingPolicy, LockRule, policy_for

__all__ = ["LockingEngine", "CursorState"]


@dataclass
class CursorState:
    """An open cursor: the items it ranges over and its current position."""

    items: List[str]
    position: int = -1

    @property
    def current_item(self) -> Optional[str]:
        """The item the cursor is positioned on, or None before the first fetch."""
        if 0 <= self.position < len(self.items):
            return self.items[self.position]
        return None

    @property
    def exhausted(self) -> bool:
        """True when every item has been fetched."""
        return self.position + 1 >= len(self.items)


class LockingEngine(Engine):
    """Lock-based concurrency control parameterized by a Table 2 policy."""

    supports_checkpoints = True

    #: Outside the checkpoint token by design: the policy (and the names and
    #: lock plans derived from it) is immutable per-engine configuration, and
    #: the blocked-result cache interns immutable values of a pure function
    #: of its key — restoring around either cannot change any outcome.
    _checkpoint_stable = ("policy", "level", "name", "_read_plan",
                          "_write_plan", "_blocked_results")

    def __init__(self, database: Database,
                 level: IsolationLevelName = IsolationLevelName.SERIALIZABLE,
                 policy: Optional[LockingPolicy] = None):
        super().__init__(database)
        self.policy = policy or policy_for(level)
        self.level = self.policy.level
        self.name = f"Locking {self.policy.name}"
        self.locks = LockManager()
        self.undo = UndoLog()
        self._cursors: Dict[Tuple[int, str], CursorState] = {}
        #: Precomputed (mode, is_short, duration) plans of the policy's item
        #: read and write rules, for the compiled-kernel fast path.
        read_rule = self.policy.item_read
        self._read_plan = (None if read_rule is None else
                           (read_rule.mode,
                            read_rule.duration is LockDuration.SHORT,
                            read_rule.duration))
        write_rule = self.policy.write
        self._write_plan = (None if write_rule is None else
                            (write_rule.mode,
                             write_rule.duration is LockDuration.SHORT,
                             write_rule.duration))
        #: Interned blocked results, keyed by (item, mode value, blockers):
        #: the schedule explorer retries blocked steps constantly, and the
        #: result (an immutable value) is fully determined by the key.
        self._blocked_results: Dict[Tuple[str, str, Any], OpResult] = {}

    def _blocked_result(self, item: str, mode: LockMode, blockers: Any) -> OpResult:
        key = (item, mode.value, blockers)
        cached = self._blocked_results.get(key)
        if cached is None:
            cached = OpResult.blocked(
                blockers, reason=f"waiting for {mode.value} lock on {item}")
            if len(self._blocked_results) < 100_000:
                self._blocked_results[key] = cached
        return cached

    def _item_target(self, item: str) -> ItemTarget:
        # One interning cache for both the stepwise and compiled paths: the
        # lock manager's (request_item uses it too).
        return self.locks.item_target(item)

    def blocking_version(self) -> int:
        # Blocked results depend only on the granted-lock table: the engine
        # mutates the database exclusively alongside granted lock operations,
        # so the table version also covers the pre-lock row reads of
        # update_row/delete_row.
        return self.locks.version

    def blocking_version_for(self, item: Optional[str]) -> int:
        # An item step can only be blocked by locks on that item; non-item
        # steps (rows, predicates, cursors) fall back to the table version.
        locks = self.locks
        return locks.version_for(item) if item is not None else locks.version

    # -- small helpers ----------------------------------------------------------------

    def _acquire(self, txn: int, target, rule: Optional[LockRule],
                 cursor: Optional[str] = None,
                 override_mode: Optional[LockMode] = None) -> Optional[OpResult]:
        """Request the lock a rule demands.  Returns a BLOCKED result or None."""
        if rule is None:
            return None
        mode = override_mode or rule.mode
        result = self.locks.request(txn, target, mode, rule.duration, cursor=cursor)
        if not result.granted:
            return OpResult.blocked(result.blockers,
                                    reason=f"waiting for {mode.value} lock on {target}")
        return None

    def _after_action(self, txn: int, rule: Optional[LockRule]) -> None:
        """Release short-duration locks once the action has completed."""
        if rule is not None and rule.duration is LockDuration.SHORT:
            self.locks.release_short(txn)

    # -- compiled-kernel entry point ---------------------------------------------------

    def apply_step(self, opcode: int, txn: int, item: Optional[str] = None,
                   value: Any = None) -> OpResult:
        """Fused fast path of the compiled step kernel.

        One monomorphic dispatch replaces the ``Step.perform`` → engine-method
        double dispatch of the stepwise path, with the policy-rule lookup,
        lock request, and short-lock release flattened inline.  Behaviour is
        byte-equal to :meth:`read` / :meth:`write` / :meth:`commit` /
        :meth:`abort`, including the lock table's ``version`` accounting the
        schedule runner's blocked-result memo is keyed on (see
        :meth:`LockManager.grant_transient_item` for the fused
        short-lock arithmetic).
        """
        if opcode == OP_ABORT:
            # abort() tolerates already-terminated transactions (returns OK);
            # route it before the active guard to keep that behaviour.
            return self.abort(txn, reason="program abort")
        if self._states.get(txn) is not TransactionState.ACTIVE:
            guard = self._require_active(txn)
            if guard is not None:
                return guard
        if opcode == OP_READ:
            plan = self._read_plan
            if plan is not None:
                mode, is_short, duration = plan
                if is_short:
                    blocked = self.locks.grant_transient_item(txn, item, mode)
                else:
                    result = self.locks.request_item(txn, item, mode, duration)
                    blocked = None if result.granted else result
                if blocked is not None:
                    return self._blocked_result(item, mode, blocked.blockers)
            return OpResult.ok(self.database.get_item(item))
        if opcode == OP_WRITE:
            plan = self._write_plan
            if plan is not None:
                mode, is_short, duration = plan
                if is_short:
                    blocked = self.locks.grant_transient_item(txn, item, mode)
                else:
                    result = self.locks.request_item(txn, item, mode, duration)
                    blocked = None if result.granted else result
                if blocked is not None:
                    return self._blocked_result(item, mode, blocked.blockers)
            self.undo.record_item(txn, self.database, item)
            self.database.set_item(item, value)
            return OpResult.ok(value)
        if opcode == OP_COMMIT:
            self.undo.forget(txn)
            self.locks.release_all(txn)
            self._drop_cursors(txn)
            self._mark_committed(txn)
            return OpResult.ok()
        return super().apply_step(opcode, txn, item, value)

    # -- item reads and writes ----------------------------------------------------------

    def read(self, txn: int, item: str) -> OpResult:
        guard = self._require_active(txn)
        if guard is not None:
            return guard
        rule = self.policy.item_read
        blocked = self._acquire(txn, self._item_target(item), rule)
        if blocked is not None:
            return blocked
        value = self.database.get_item(item)
        self._after_action(txn, rule)
        return OpResult.ok(value)

    def write(self, txn: int, item: str, value: Any) -> OpResult:
        guard = self._require_active(txn)
        if guard is not None:
            return guard
        rule = self.policy.write
        blocked = self._acquire(txn, self._item_target(item), rule)
        if blocked is not None:
            return blocked
        self.undo.record_item(txn, self.database, item)
        self.database.set_item(item, value)
        self._after_action(txn, rule)
        return OpResult.ok(value)

    # -- predicate reads and row writes ---------------------------------------------------

    def select(self, txn: int, predicate: Predicate) -> OpResult:
        guard = self._require_active(txn)
        if guard is not None:
            return guard
        rule = self.policy.predicate_read
        blocked = self._acquire(txn, PredicateTarget(predicate), rule)
        if blocked is not None:
            return blocked
        rows = [row.copy() for row in self.database.select(predicate)]
        self._after_action(txn, rule)
        return OpResult.ok(rows)

    def insert(self, txn: int, table: str, row: Row) -> OpResult:
        guard = self._require_active(txn)
        if guard is not None:
            return guard
        rule = self.policy.write
        target = RowTarget(table, row.key, before=None, after=row)
        blocked = self._acquire(txn, target, rule)
        if blocked is not None:
            return blocked
        self.undo.record_row_insert(txn, table, row.key)
        self.database.table(table).insert(row.copy())
        self._after_action(txn, rule)
        return OpResult.ok(value=row.copy(), item=f"{table}/{row.key}")

    def update_row(self, txn: int, table: str, key: str, changes: Dict[str, Any]) -> OpResult:
        guard = self._require_active(txn)
        if guard is not None:
            return guard
        current = self.database.table(table).get(key)
        if current is None:
            return OpResult.aborted(f"no row {key!r} in table {table!r}")
        after = current.updated(**changes)
        rule = self.policy.write
        target = RowTarget(table, key, before=current.copy(), after=after)
        blocked = self._acquire(txn, target, rule)
        if blocked is not None:
            return blocked
        self.undo.record_row_update(txn, table, current)
        self.database.table(table).update(key, **changes)
        self._after_action(txn, rule)
        return OpResult.ok(value=after, item=f"{table}/{key}")

    def delete_row(self, txn: int, table: str, key: str) -> OpResult:
        guard = self._require_active(txn)
        if guard is not None:
            return guard
        current = self.database.table(table).get(key)
        if current is None:
            return OpResult.aborted(f"no row {key!r} in table {table!r}")
        rule = self.policy.write
        target = RowTarget(table, key, before=current.copy(), after=None)
        blocked = self._acquire(txn, target, rule)
        if blocked is not None:
            return blocked
        self.undo.record_row_delete(txn, table, current)
        self.database.table(table).delete(key)
        self._after_action(txn, rule)
        return OpResult.ok(item=f"{table}/{key}")

    # -- cursors (Section 4.1) ---------------------------------------------------------------

    def open_cursor(self, txn: int, cursor: str, items: List[str]) -> OpResult:
        guard = self._require_active(txn)
        if guard is not None:
            return guard
        if not items:
            return OpResult.aborted("cannot open a cursor over no items")
        self._cursors[(txn, cursor)] = CursorState(list(items))
        return OpResult.ok()

    def fetch(self, txn: int, cursor: str) -> OpResult:
        guard = self._require_active(txn)
        if guard is not None:
            return guard
        state = self._cursor_state(txn, cursor)
        if state.exhausted:
            return OpResult.aborted(f"cursor {cursor!r} has no more items")
        next_item = state.items[state.position + 1]
        rule = self.policy.cursor_read
        # Moving the cursor releases the lock held on the previous current row.
        if rule is not None and rule.duration is LockDuration.CURSOR:
            self.locks.release_cursor(txn, cursor)
        blocked = self._acquire(txn, self._item_target(next_item), rule, cursor=cursor)
        if blocked is not None:
            return blocked
        state.position += 1
        value = self.database.get_item(next_item)
        self._after_action(txn, rule)
        return OpResult.ok(value=value, item=next_item)

    def cursor_update(self, txn: int, cursor: str, value: Any) -> OpResult:
        guard = self._require_active(txn)
        if guard is not None:
            return guard
        state = self._cursor_state(txn, cursor)
        item = state.current_item
        if item is None:
            return OpResult.aborted(f"cursor {cursor!r} is not positioned on a row")
        rule = self.policy.write
        blocked = self._acquire(txn, self._item_target(item), rule)
        if blocked is not None:
            return blocked
        self.undo.record_item(txn, self.database, item)
        self.database.set_item(item, value)
        self._after_action(txn, rule)
        return OpResult.ok(value=value, item=item)

    def close_cursor(self, txn: int, cursor: str) -> OpResult:
        guard = self._require_active(txn)
        if guard is not None:
            return guard
        self.locks.release_cursor(txn, cursor)
        self._cursors.pop((txn, cursor), None)
        return OpResult.ok()

    def _cursor_state(self, txn: int, cursor: str) -> CursorState:
        try:
            return self._cursors[(txn, cursor)]
        except KeyError:
            raise EngineError(f"T{txn} has no open cursor named {cursor!r}") from None

    # -- termination -----------------------------------------------------------------------------

    def commit(self, txn: int) -> OpResult:
        guard = self._require_active(txn)
        if guard is not None:
            return guard
        self.undo.forget(txn)
        self.locks.release_all(txn)
        self._drop_cursors(txn)
        self._mark_committed(txn)
        return OpResult.ok()

    def abort(self, txn: int, reason: str = "voluntary abort") -> OpResult:
        if not self.is_active(txn):
            # Aborting an already-terminated transaction is a no-op for the
            # runner (it may race a deadlock-victim abort with a program step).
            return OpResult.ok()
        self.undo.undo(txn, self.database)
        self.locks.release_all(txn)
        self._drop_cursors(txn)
        self._mark_aborted(txn, reason)
        return OpResult.ok()

    def _drop_cursors(self, txn: int) -> None:
        for key in [key for key in self._cursors if key[0] == txn]:
            del self._cursors[key]

    # -- checkpoint / restore --------------------------------------------------------------------

    def checkpoint(self):
        return (
            self._base_checkpoint(),
            self.database.checkpoint(),
            self.locks.checkpoint(),
            self.undo.checkpoint(),
            {key: (tuple(state.items), state.position)
             for key, state in self._cursors.items()},
        )

    def restore(self, token) -> None:
        base, database, locks, undo, cursors = token
        self._base_restore(base)
        self.database.restore_checkpoint(database)
        self.locks.restore(locks)
        self.undo.restore(undo)
        self._cursors = {
            key: CursorState(list(items), position)
            for key, (items, position) in cursors.items()
        }
